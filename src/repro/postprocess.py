"""Post-processing decoded context logs into classic profile reports.

Encodings are great to *collect*; humans want trees. This module
aggregates decoded contexts into a calling context tree with counts and
renders it the way profilers print hot paths::

    report = ContextTreeReport()
    for node, snapshot, count in histogram:
        report.add(decoder.decode(node, *snapshot), count)
    print(report.render())

Gap markers from hazardous UCPs become explicit ``<?>`` tree nodes, so
dynamically loaded detours show up as their own subtrees instead of
polluting known paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.decoder import DecodedContext

__all__ = ["TreeNode", "ContextTreeReport"]

GAP = "<?>"


@dataclass
class TreeNode:
    """One aggregated frame in the report tree."""

    name: str
    count: int = 0
    children: Dict[str, "TreeNode"] = field(default_factory=dict)

    def child(self, name: str) -> "TreeNode":
        node = self.children.get(name)
        if node is None:
            node = TreeNode(name)
            self.children[name] = node
        return node

    @property
    def total(self) -> int:
        """This node's count plus all descendants'."""
        return self.count + sum(c.total for c in self.children.values())


class ContextTreeReport:
    """Aggregates decoded contexts; renders an indented hot-path tree."""

    def __init__(self):
        self.root = TreeNode("<root>")
        self.contexts_added = 0

    # ------------------------------------------------------------------
    def add(self, decoded: DecodedContext, count: int = 1) -> None:
        """Merge one decoded context into the tree, ``count`` times."""
        names = decoded.nodes(gap_marker=GAP)
        self.add_path(names, count)

    def add_path(self, names: Sequence[str], count: int = 1) -> None:
        node = self.root
        for name in names:
            node = node.child(name)
        node.count += count
        self.contexts_added += 1

    # ------------------------------------------------------------------
    def render(
        self,
        min_total: int = 1,
        max_depth: Optional[int] = None,
        indent: str = "  ",
    ) -> str:
        """Indented tree, heaviest subtrees first.

        ``min_total`` hides cold subtrees; ``max_depth`` truncates deep
        ones (a line notes how much was hidden).
        """
        lines: List[str] = []
        grand_total = max(self.root.total, 1)

        def walk(node: TreeNode, depth: int) -> None:
            ordered = sorted(
                node.children.values(), key=lambda c: -c.total
            )
            hidden = 0
            for child in ordered:
                if child.total < min_total:
                    hidden += child.total
                    continue
                if max_depth is not None and depth >= max_depth:
                    hidden += child.total
                    continue
                share = child.total / grand_total
                marker = " [dynamic gap]" if child.name == GAP else ""
                lines.append(
                    f"{indent * depth}{child.total:>8}  {share:>5.1%}  "
                    f"{child.name}{marker}"
                )
                walk(child, depth + 1)
            if hidden:
                lines.append(
                    f"{indent * depth}{hidden:>8}         (hidden)"
                )

        walk(self.root, 0)
        header = (
            f"{'count':>8}  {'share':>5}  calling context tree "
            f"({self.contexts_added} contexts aggregated)"
        )
        return "\n".join([header] + lines)

    # ------------------------------------------------------------------
    def hottest_paths(self, n: int = 5) -> List[tuple]:
        """The ``n`` heaviest leaf-to-root paths as (count, names)."""
        results: List[tuple] = []

        def walk(node: TreeNode, prefix: List[str]) -> None:
            path = prefix + [node.name]
            if node.count:
                results.append((node.count, tuple(path)))
            for child in node.children.values():
                walk(child, path)

        for child in self.root.children.values():
            walk(child, [])
        results.sort(key=lambda item: -item[0])
        return results[:n]
