"""Predicting unexpected call paths before running anything.

Call path tracking (Section 4.1) *reacts* to UCPs at runtime. When the
dynamic classes are known in advance (packaged plugins, test fixtures),
the same information supports a *static* prediction: diff the call graph
the encoder saw against the runtime-complete graph (built with
``include_dynamic=True``) and classify what the dynamic world adds:

* **new dispatch edges** — statically known sites gaining dynamic
  targets (the paper's B→X);
* **detour entry points** — instrumented functions callable from
  dynamic code, split into *hazardous* (their SID differs from what the
  last instrumented site will have written — the check will fire) and
  *benign* (SIDs coincide — the check passes and decoding silently
  omits the dynamic frames, the paper's B→X→D).

Tests validate the prediction against actual runtime detections on the
paper's Figure 6 program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.analysis.callgraph_builder import Policy, build_callgraph
from repro.core.sid import compute_sids
from repro.graph.callgraph import CallEdge, CallGraph, CallSite
from repro.lang.model import Program

__all__ = ["UcpPrediction", "predict_ucps"]


@dataclass
class UcpPrediction:
    """Static prediction of runtime UCP behaviour."""

    #: Edges only the runtime-complete graph has (caller, callee, label).
    new_edges: List[CallEdge]
    #: Dynamic functions reachable at runtime (absent statically).
    dynamic_nodes: List[str]
    #: (dynamic caller site, instrumented callee) pairs where the SID
    #: check is predicted to fire (hazardous UCP).
    hazardous: List[Tuple[CallEdge, str]]
    #: Same shape, but the stale SID will coincide: benign UCP — the
    #: encoding stays decodable with the dynamic frames omitted.
    benign: List[Tuple[CallEdge, str]]

    @property
    def hazardous_entry_points(self) -> Set[str]:
        """Instrumented functions where detections are predicted."""
        return {callee for _edge, callee in self.hazardous}

    @property
    def benign_entry_points(self) -> Set[str]:
        return {callee for _edge, callee in self.benign}


def predict_ucps(
    program: Program, policy: Policy = Policy.ZERO_CFA
) -> UcpPrediction:
    """Diff static vs runtime-complete graphs and classify detours.

    The benign/hazardous split approximates the runtime check: a call
    from dynamic code into instrumented function ``f`` is benign when
    the *expected SID* in force can match ``f``'s — which happens when
    the dynamic entry was reached via a statically-known virtual site
    whose target set shares f's SID. We conservatively test each dynamic
    incursion against the SID of the site that leads into the dynamic
    region; multi-hop dynamic chains inherit that site's expectation
    (the register is only rewritten by instrumented sites).
    """
    static = build_callgraph(program, policy=policy, include_dynamic=False)
    complete = build_callgraph(program, policy=policy, include_dynamic=True)
    sids = compute_sids(static)

    static_edges = {
        (e.caller, e.callee, e.label) for e in static.edges
    }
    new_edges = [
        e
        for e in complete.edges
        if (e.caller, e.callee, e.label) not in static_edges
    ]
    static_nodes = set(static.nodes)
    dynamic_nodes = [n for n in complete.nodes if n not in static_nodes]
    dynamic_set = set(dynamic_nodes)

    # Expected SID carried into each dynamic node: from the static sites
    # that can dispatch into it (the last instrumented write before the
    # detour). Propagate through dynamic-only chains.
    expectation: Dict[str, Set[int]] = {}
    changed = True
    while changed:
        changed = False
        for edge in new_edges:
            if edge.callee not in dynamic_set:
                continue
            carried: Set[int] = set()
            if edge.caller in static_nodes:
                site = CallSite(edge.caller, edge.label)
                if site in sids.sid_of_site:
                    # The site exists statically: its write is in force.
                    carried.add(sids.sid_of_site[site])
                else:
                    # A brand-new site in instrumented code cannot occur
                    # (sites come from method bodies known statically
                    # for static classes); treat defensively as unknown.
                    carried.add(-1)
            else:
                carried |= expectation.get(edge.caller, set())
            known = expectation.setdefault(edge.callee, set())
            if not carried <= known:
                known |= carried
                changed = True

    hazardous: List[Tuple[CallEdge, str]] = []
    benign: List[Tuple[CallEdge, str]] = []
    for edge in new_edges:
        if edge.caller not in dynamic_set:
            continue  # only dynamic -> static incursions detect
        if edge.callee not in static_nodes:
            continue
        callee_sid = sids.sid_of_node.get(edge.callee)
        expected = expectation.get(edge.caller, {-1})
        if expected and expected <= {callee_sid}:
            benign.append((edge, edge.callee))
        else:
            hazardous.append((edge, edge.callee))

    return UcpPrediction(
        new_edges=new_edges,
        dynamic_nodes=dynamic_nodes,
        hazardous=hazardous,
        benign=benign,
    )
