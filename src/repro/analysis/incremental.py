"""Incremental call-graph maintenance under dynamic class loading.

The paper's answer to dynamic class loading is detection-only: call path
tracking flags unexpected call paths (Section 4.1), and the only recovery
is rebuilding the whole plan from scratch. This module provides the
missing first half of *repair*: describing what changed as a
:class:`GraphDelta` and applying it to an existing :class:`CallGraph`
without re-running the static analysis over the entire program.

Three entry points:

* :func:`apply_delta` — apply added/removed nodes and edges to a graph;
* :func:`diff_graphs` — exact delta between two graphs (the testing
  oracle: ``apply_delta(old, diff_graphs(old, new))`` equals ``new``);
* :func:`delta_for_loaded_classes` — the dynamic-loading case: compute
  the delta a set of newly loaded dynamic classes contributes, by a
  *scoped* re-analysis that only revisits call sites whose dispatch sets
  can change (virtual sites whose base type admits a loaded subtype,
  static calls into loaded classes) plus the loaded methods' own bodies.

The second half of repair — re-encoding only the dirty territories — is
:mod:`repro.core.reencode`; plan- and probe-level hot-swap live in
:mod:`repro.runtime.plan` and :mod:`repro.runtime.agent`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro import obs
from repro.analysis.callgraph_builder import Policy, call_sites_of
from repro.errors import GraphError
from repro.graph.callgraph import CallEdge, CallGraph
from repro.lang.model import (
    MethodRef,
    New,
    Program,
    StaticCall,
    VirtualCall,
    iter_stmts,
)

__all__ = [
    "GraphDelta",
    "apply_delta",
    "diff_graphs",
    "delta_for_loaded_classes",
]


@dataclass
class GraphDelta:
    """A batch of structural changes to a call graph.

    ``added_nodes`` maps new node names to their attribute dicts (empty
    dict for attribute-less nodes). ``removed_nodes`` implies removal of
    every incident edge, whether or not those edges are also listed in
    ``removed_edges``.
    """

    added_nodes: Dict[str, dict] = field(default_factory=dict)
    removed_nodes: Tuple[str, ...] = ()
    added_edges: Tuple[CallEdge, ...] = ()
    removed_edges: Tuple[CallEdge, ...] = ()

    @property
    def is_empty(self) -> bool:
        return not (
            self.added_nodes
            or self.removed_nodes
            or self.added_edges
            or self.removed_edges
        )

    @property
    def is_additive(self) -> bool:
        """True when the delta only grows the graph (the class-loading
        case); additive deltas admit cheaper downstream maintenance
        (e.g. incremental SID union instead of a union-find rebuild)."""
        return not (self.removed_nodes or self.removed_edges)

    def touched_nodes(
        self, graph: Optional[CallGraph] = None
    ) -> Set[str]:
        """Every node whose incident edge set (or existence) changes.

        This is the seed of the dirty region for incremental
        re-encoding: a node is *touched* when it is added or removed, or
        when one of its incoming/outgoing edges is.

        Removing a node implicitly removes its incident edges, which
        touches the *neighbors* too even though those edges never appear
        in ``removed_edges``. The delta alone cannot name them, so pass
        the pre-delta ``graph`` whenever ``removed_nodes`` is non-empty
        — an under-approximated touched set makes incremental
        re-encoding unsound (stale territory tables survive).
        """
        touched: Set[str] = set(self.added_nodes)
        touched.update(self.removed_nodes)
        for edge in self.added_edges:
            touched.add(edge.caller)
            touched.add(edge.callee)
        for edge in self.removed_edges:
            touched.add(edge.caller)
            touched.add(edge.callee)
        if graph is not None:
            for node in self.removed_nodes:
                if node not in graph:
                    continue
                for edge in graph.in_edges(node):
                    touched.add(edge.caller)
                for edge in graph.out_edges(node):
                    touched.add(edge.callee)
        return touched

    def compose(self, later: "GraphDelta") -> "GraphDelta":
        """The delta equivalent to applying ``self`` then ``later``.

        Nodes and edges that ``self`` adds and ``later`` removes cancel
        out. This assumes ``added_nodes`` lists genuinely new nodes; an
        attribute-merge re-add of a pre-existing node that ``later``
        then removes composes to a delta that leaves the node in place.
        """
        added_nodes = dict(self.added_nodes)
        added_nodes.update(later.added_nodes)
        for name in later.removed_nodes:
            added_nodes.pop(name, None)
        removed_nodes = tuple(
            dict.fromkeys(
                [n for n in self.removed_nodes if n not in later.added_nodes]
                + [
                    n
                    for n in later.removed_nodes
                    if n not in self.added_nodes
                ]
            )
        )
        later_removed = set(later.removed_edges)
        dead_nodes = set(later.removed_nodes)
        added_edges = tuple(
            e
            for e in list(self.added_edges) + list(later.added_edges)
            if e not in later_removed
            and e.caller not in dead_nodes
            and e.callee not in dead_nodes
        )
        earlier_added = set(self.added_edges)
        removed_edges = tuple(
            dict.fromkeys(
                list(self.removed_edges)
                + [e for e in later.removed_edges if e not in earlier_added]
            )
        )
        return GraphDelta(
            added_nodes=added_nodes,
            removed_nodes=removed_nodes,
            added_edges=added_edges,
            removed_edges=removed_edges,
        )

    def summary(self) -> str:
        return (
            f"+{len(self.added_nodes)}n/+{len(self.added_edges)}e "
            f"-{len(self.removed_nodes)}n/-{len(self.removed_edges)}e"
        )


def apply_delta(
    graph: CallGraph, delta: GraphDelta, in_place: bool = False
) -> CallGraph:
    """Apply ``delta`` to ``graph`` and return the updated graph.

    By default the input graph is left untouched and an updated copy is
    returned (the copy is a plain linear scan — the expensive work the
    incremental pipeline avoids is the *re-encoding*, not the graph
    update). ``in_place=True`` mutates ``graph`` directly and returns it,
    for callers that own the graph and want zero-copy updates.

    Validation: removed edges/nodes must exist, added edges must not,
    and the entry node cannot be removed.
    """
    with obs.span("delta.apply", delta=delta.summary()):
        target = graph if in_place else graph.copy()
        for edge in delta.removed_edges:
            target.remove_edge(edge)
        for name in delta.removed_nodes:
            target.remove_node(name)
        for name, attrs in delta.added_nodes.items():
            target.add_node(name, **attrs)
        for edge in delta.added_edges:
            if edge.callee == target.entry:
                raise GraphError(
                    f"delta edge {edge} would give the entry an incoming "
                    f"edge"
                )
            target.add_edge(edge.caller, edge.callee, edge.label)
    registry = obs.get_registry()
    registry.counter("delta.applied").inc()
    registry.gauge("delta.last_touched_nodes").set(len(delta.touched_nodes()))
    return target


def diff_graphs(old: CallGraph, new: CallGraph) -> GraphDelta:
    """Exact structural delta from ``old`` to ``new``.

    ``apply_delta(old, diff_graphs(old, new))`` reproduces ``new`` up to
    iteration order. Node attribute *changes* on surviving nodes are
    carried in ``added_nodes`` (re-adding merges attributes).
    """
    old_nodes = set(old.nodes)
    new_nodes = set(new.nodes)
    added_nodes = {
        name: dict(new.node_attrs(name)) for name in new.nodes
        if name not in old_nodes
    }
    for name in new.nodes:
        if name in old_nodes and new.node_attrs(name) != old.node_attrs(name):
            added_nodes[name] = dict(new.node_attrs(name))
    old_edges = set(old.edges)
    new_edges = set(new.edges)
    return GraphDelta(
        added_nodes=added_nodes,
        removed_nodes=tuple(n for n in old.nodes if n not in new_nodes),
        added_edges=tuple(e for e in new.edges if e not in old_edges),
        removed_edges=tuple(e for e in old.edges if e not in new_edges),
    )


def delta_for_loaded_classes(
    program: Program,
    graph: CallGraph,
    loaded: Iterable[str],
    policy: Policy = Policy.ZERO_CFA,
) -> GraphDelta:
    """Delta contributed by newly loaded dynamic classes.

    ``graph`` is the current static call graph (typically
    ``plan.graph``); ``loaded`` names dynamic classes that have joined
    the world since it was built (e.g. from
    ``Interpreter.loaded_classes``). Non-dynamic and already-known
    classes in ``loaded`` are ignored, so passing the interpreter's full
    loaded-class list is safe.

    The analysis is scoped: only call sites whose dispatch sets can gain
    targets are re-resolved —

    * virtual sites (in methods already in the graph) whose base type
      has a loaded class among its subtypes;
    * static calls into loaded classes;

    then the loaded methods' own bodies are processed by worklist,
    transitively pulling in further dynamic classes named in ``loaded``.
    Under RTA/0-CFA a loaded class counts as instantiated — dynamic
    loading happens at first instantiation or static invocation, so by
    the time a delta is built the class has been instantiated or is
    about to be invoked.
    """
    with obs.span("delta.loaded_classes") as sp:
        delta = _delta_for_loaded_classes(program, graph, loaded, policy)
        sp.set("summary", delta.summary())
    obs.counter("delta.loaded_scans").inc()
    return delta


def _delta_for_loaded_classes(
    program: Program,
    graph: CallGraph,
    loaded: Iterable[str],
    policy: Policy = Policy.ZERO_CFA,
) -> GraphDelta:
    program.validate()
    known_classes = _graph_world(program, graph)
    loaded_new = [
        k for k in dict.fromkeys(loaded)
        if program.has_class(k)
        and k not in known_classes
        and program.klass(k).dynamic
    ]
    if not loaded_new:
        return GraphDelta()
    world = known_classes | set(loaded_new)

    if policy is Policy.CHA:
        instantiated: Optional[Set[str]] = None
    else:
        instantiated = _world_instantiated(program, world)

    existing_edges = set(graph.edges)
    existing_nodes = set(graph.nodes)
    added_nodes: Dict[str, dict] = {}
    added_edges: List[CallEdge] = []
    added_edge_set: Set[CallEdge] = set()

    def note_node(ref: MethodRef) -> None:
        name = str(ref)
        if name in existing_nodes or name in added_nodes:
            return
        klass = program.klass(ref.klass)
        added_nodes[name] = {
            "klass": ref.klass,
            "method": ref.method,
            "library": klass.library,
            "dynamic": klass.dynamic,
        }

    def note_edge(caller: MethodRef, label: str, target: MethodRef) -> bool:
        edge = CallEdge(str(caller), str(target), label)
        if edge in existing_edges or edge in added_edge_set:
            return False
        note_node(target)
        added_edges.append(edge)
        added_edge_set.add(edge)
        return True

    worklist: List[MethodRef] = []
    queued: Set[str] = set()

    def queue(ref: MethodRef) -> None:
        name = str(ref)
        if name not in existing_nodes and name not in queued:
            queued.add(name)
            worklist.append(ref)

    # Phase 1: re-resolve the existing sites whose targets can change.
    loaded_set = set(loaded_new)
    affected_bases = {
        base
        for klass in loaded_new
        for base in program.supertypes(klass)
    }
    for name in graph.nodes:
        attrs = graph.node_attrs(name)
        if "klass" not in attrs or "method" not in attrs:
            continue  # synthetic node (not a program method)
        ref = MethodRef(attrs["klass"], attrs["method"])
        for site in call_sites_of(program.method(ref), ref):
            stmt = site.stmt
            if isinstance(stmt, VirtualCall):
                if stmt.base not in affected_bases:
                    continue
            else:
                assert isinstance(stmt, StaticCall)
                if stmt.target.klass not in loaded_set:
                    continue
            for target in _world_targets(program, stmt, instantiated, world):
                if note_edge(ref, site.label, target):
                    queue(target)

    # Phase 2: worklist over the newly added methods' own call sites.
    while worklist:
        ref = worklist.pop(0)
        note_node(ref)
        for site in call_sites_of(program.method(ref), ref):
            for target in _world_targets(
                program, site.stmt, instantiated, world
            ):
                note_edge(ref, site.label, target)
                queue(target)

    return GraphDelta(
        added_nodes=added_nodes, added_edges=tuple(added_edges)
    )


# ----------------------------------------------------------------------
# World computation helpers
# ----------------------------------------------------------------------
def _graph_world(program: Program, graph: CallGraph) -> Set[str]:
    """Classes visible to the analysis that produced ``graph``: every
    non-dynamic class, plus dynamic classes already present as nodes
    (from previously applied deltas)."""
    world = {k.name for k in program.classes if not k.dynamic}
    for name in graph.nodes:
        attrs = graph.node_attrs(name)
        if attrs.get("dynamic") and "klass" in attrs:
            world.add(attrs["klass"])
    return world


def _world_targets(
    program: Program,
    stmt,
    instantiated: Optional[Set[str]],
    world: Set[str],
) -> List[MethodRef]:
    """Dispatch targets of a call statement with ``world`` visible.

    Mirrors the batch builder's target resolution, except visibility is
    an explicit class set instead of the static/include-dynamic split.
    """
    if isinstance(stmt, StaticCall):
        if stmt.target.klass not in world:
            return []
        return [stmt.target]
    assert isinstance(stmt, VirtualCall)
    targets: List[MethodRef] = []
    seen: Set[MethodRef] = set()
    for subtype in program.subtypes(stmt.base, include_dynamic=True):
        if subtype not in world:
            continue
        if instantiated is not None and subtype not in instantiated:
            continue
        try:
            resolved = program.resolve(subtype, stmt.method)
        except Exception:
            continue  # abstract-like subtype without the method
        if resolved.klass not in world:
            continue
        if resolved not in seen:
            seen.add(resolved)
            targets.append(resolved)
    return targets


def _world_instantiated(program: Program, world: Set[str]) -> Set[str]:
    """RTA fixpoint with ``world`` visible; loaded dynamic classes count
    as instantiated (loading happens at first instantiation)."""
    instantiated: Set[str] = {
        k.name for k in program.classes if k.dynamic and k.name in world
    }
    reachable: Set[MethodRef] = {program.entry}
    changed = True
    while changed:
        changed = False
        for ref in list(reachable):
            method = program.method(ref)
            for site in call_sites_of(method, ref):
                for target in _world_targets(
                    program, site.stmt, instantiated, world
                ):
                    if target not in reachable:
                        reachable.add(target)
                        changed = True
            for stmt in iter_stmts(method.body):
                if (
                    isinstance(stmt, New)
                    and stmt.klass in world
                    and stmt.klass not in instantiated
                ):
                    instantiated.add(stmt.klass)
                    changed = True
    return instantiated
