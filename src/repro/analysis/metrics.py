"""Call-graph shape metrics.

Used to compare generated benchmark graphs against the paper's Table 1
programs and to sanity-check workload generators: degree distributions,
depth profile, virtual-dispatch share, and the context-count growth rate
(the quantity that decides whether anchors will be needed).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.graph.callgraph import CallGraph
from repro.graph.contexts import context_counts
from repro.graph.scc import remove_recursion
from repro.graph.topo import topological_order

__all__ = ["GraphMetrics", "compute_metrics"]


@dataclass
class GraphMetrics:
    """Shape summary of one call graph."""

    nodes: int
    edges: int
    call_sites: int
    virtual_sites: int
    virtual_fraction: float
    max_out_degree: int
    max_in_degree: int
    avg_out_degree: float
    #: Longest entry->node distance (in edges) over reachable nodes.
    depth: int
    #: Per-depth node counts (index = distance from the entry).
    depth_histogram: List[int]
    #: log10 of the total calling-context count (acyclic view).
    log10_contexts: float
    #: log10 of the maximum per-node context count — Table 1's "max ID"
    #: for virtual-free graphs, a lower bound otherwise.
    log10_max_node_contexts: float
    back_edges: int

    def summary(self) -> str:
        return (
            f"{self.nodes} nodes, {self.edges} edges, "
            f"{self.call_sites} sites ({self.virtual_fraction:.0%} virtual), "
            f"depth {self.depth}, contexts ~1e{self.log10_contexts:.1f}"
        )


def compute_metrics(graph: CallGraph) -> GraphMetrics:
    """Compute :class:`GraphMetrics` for ``graph`` (cycles allowed)."""
    acyclic, removed = remove_recursion(graph)
    reachable = acyclic.reachable_from(acyclic.entry)

    # Longest path from the entry (DAG longest-path DP).
    depth_of: Dict[str, int] = {acyclic.entry: 0}
    for node in topological_order(acyclic):
        if node not in reachable or node not in depth_of:
            continue
        for edge in acyclic.out_edges(node):
            candidate = depth_of[node] + 1
            if candidate > depth_of.get(edge.callee, -1):
                depth_of[edge.callee] = candidate
    depth = max(depth_of.values(), default=0)
    histogram = [0] * (depth + 1)
    for value in depth_of.values():
        histogram[value] += 1

    counts = context_counts(acyclic)
    total = sum(counts.values())
    biggest = max(counts.values(), default=1)

    out_degrees = [len(graph.out_edges(n)) for n in graph.nodes]
    in_degrees = [len(graph.in_edges(n)) for n in graph.nodes]
    sites = len(graph.call_sites)
    virtual = len(graph.virtual_sites)

    return GraphMetrics(
        nodes=len(graph),
        edges=graph.num_edges,
        call_sites=sites,
        virtual_sites=virtual,
        virtual_fraction=virtual / sites if sites else 0.0,
        max_out_degree=max(out_degrees, default=0),
        max_in_degree=max(in_degrees, default=0),
        avg_out_degree=(
            sum(out_degrees) / len(out_degrees) if out_degrees else 0.0
        ),
        depth=depth,
        depth_histogram=histogram,
        log10_contexts=math.log10(total) if total else 0.0,
        log10_max_node_contexts=math.log10(biggest) if biggest else 0.0,
        back_edges=len(removed),
    )
