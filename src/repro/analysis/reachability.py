"""Reachability-based graph pruning and interest projections.

Helpers shared by selective encoding (Section 4.2) and pruned encoding
(Section 8, "Pruned and Relative Encoding").
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Set

from repro.graph.callgraph import CallGraph

__all__ = [
    "prune_unreachable",
    "application_nodes",
    "library_nodes",
    "nodes_leading_to",
]


def prune_unreachable(graph: CallGraph) -> CallGraph:
    """Subgraph of nodes reachable from the entry."""
    return graph.subgraph(graph.reachable_from(graph.entry))


def application_nodes(graph: CallGraph) -> List[str]:
    """Nodes not flagged ``library`` (the encoding-application universe)."""
    return [
        n for n in graph.nodes if not graph.node_attrs(n).get("library", False)
    ]


def library_nodes(graph: CallGraph) -> List[str]:
    return [
        n for n in graph.nodes if graph.node_attrs(n).get("library", False)
    ]


def nodes_leading_to(graph: CallGraph, targets: Iterable[str]) -> Set[str]:
    """Nodes that can reach any of ``targets`` (directly or transitively),
    plus the targets themselves.

    This is the static analysis of the paper's pruned encoding: functions
    that never lead to a target function need no encoding operations.
    """
    result: Set[str] = set()
    for target in targets:
        result |= graph.reaching(target)
    return result
