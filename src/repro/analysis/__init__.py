"""Static analysis substrate (the paper's WALA/0-CFA stand-in)."""

from repro.analysis.callgraph_builder import (
    CallSiteInfo,
    Policy,
    build_callgraph,
    call_sites_of,
)
from repro.analysis.metrics import GraphMetrics, compute_metrics
from repro.analysis.ucp_prediction import UcpPrediction, predict_ucps
from repro.analysis.reachability import (
    application_nodes,
    library_nodes,
    nodes_leading_to,
    prune_unreachable,
)

__all__ = [
    "CallSiteInfo",
    "GraphMetrics",
    "compute_metrics",
    "Policy",
    "UcpPrediction",
    "predict_ucps",
    "application_nodes",
    "build_callgraph",
    "call_sites_of",
    "library_nodes",
    "nodes_leading_to",
    "prune_unreachable",
]
