"""Call-graph construction from JIP programs (the WALA stand-in).

The paper uses WALA's context-insensitive 0-CFA to build call graphs from
Java bytecode. Our mini language has no local dataflow — virtual-call
receivers are drawn from per-base-type pools of instantiated classes — so
0-CFA's per-site receiver sets degenerate to exactly what Rapid Type
Analysis computes. Three policies are provided:

* **CHA** (class hierarchy analysis): a virtual site targets the resolved
  method of *every* statically known subtype of its base class.
* **RTA** (rapid type analysis): subtypes are restricted to classes
  actually instantiated in reachable code (computed by a fixpoint).
* **ZERO_CFA**: alias of RTA with the degeneracy documented — on JIP they
  coincide; it exists so call sites in experiment configs can say what
  the paper said.

Dynamic classes (``Klass.dynamic``) are invisible to all policies; they
only exist at runtime, which is precisely what creates the unexpected
call paths of Section 4.1.

Call-site labels are stable statement paths, e.g. ``"2"`` (third
top-level statement) or ``"2.0.1"`` (inside nested blocks), so graphs are
reproducible and sites can be matched back to statements.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.graph.callgraph import CallGraph
from repro.lang.model import (
    Branch,
    Loop,
    Method,
    MethodRef,
    New,
    Program,
    StaticCall,
    Stmt,
    VirtualCall,
)

__all__ = ["Policy", "CallSiteInfo", "build_callgraph", "call_sites_of"]


class Policy(enum.Enum):
    """Dispatch-set approximation used for virtual call sites."""

    CHA = "cha"
    RTA = "rta"
    ZERO_CFA = "0-cfa"


@dataclass(frozen=True)
class CallSiteInfo:
    """A call statement located inside a method body."""

    owner: MethodRef
    label: str
    stmt: Stmt  # StaticCall or VirtualCall

    @property
    def is_virtual(self) -> bool:
        return isinstance(self.stmt, VirtualCall)


def call_sites_of(method: Method, owner: MethodRef) -> List[CallSiteInfo]:
    """All call statements of a method with their stable labels."""
    sites: List[CallSiteInfo] = []

    def walk(body: Sequence[Stmt], prefix: str) -> None:
        for index, stmt in enumerate(body):
            label = f"{prefix}{index}"
            if isinstance(stmt, (StaticCall, VirtualCall)):
                sites.append(CallSiteInfo(owner, label, stmt))
            elif isinstance(stmt, Loop):
                walk(stmt.body, f"{label}.")
            elif isinstance(stmt, Branch):
                walk(stmt.then, f"{label}.t")
                walk(stmt.orelse, f"{label}.e")

    walk(method.body, "")
    return sites


def build_callgraph(
    program: Program,
    policy: Policy = Policy.ZERO_CFA,
    include_dynamic: bool = False,
) -> CallGraph:
    """Build the static call graph of ``program`` under ``policy``.

    ``include_dynamic=True`` builds the *runtime-complete* graph (as if
    every dynamic class had been loaded) — useful as a ground-truth
    comparison in tests, never available to real static analysis.
    """
    program.validate()
    if policy is Policy.CHA:
        instantiated = None
    else:
        instantiated = _instantiated_classes(program, include_dynamic)

    entry_name = str(program.entry)
    graph = CallGraph(entry=entry_name)
    _annotate_node(graph, program, program.entry)

    worklist: List[MethodRef] = [program.entry]
    seen: Set[MethodRef] = {program.entry}
    while worklist:
        ref = worklist.pop(0)
        method = program.method(ref)
        for site in call_sites_of(method, ref):
            targets = _dispatch_targets(
                program, site.stmt, instantiated, include_dynamic
            )
            for target in targets:
                graph.add_node(str(target))
                _annotate_node(graph, program, target)
                graph.add_edge(str(ref), str(target), site.label)
                if target not in seen:
                    seen.add(target)
                    worklist.append(target)
    return graph


def _annotate_node(graph: CallGraph, program: Program, ref: MethodRef) -> None:
    klass = program.klass(ref.klass)
    graph.add_node(
        str(ref),
        klass=ref.klass,
        method=ref.method,
        library=klass.library,
        dynamic=klass.dynamic,
    )


def _dispatch_targets(
    program: Program,
    stmt: Stmt,
    instantiated: Optional[Set[str]],
    include_dynamic: bool,
) -> List[MethodRef]:
    """Resolved targets of a call statement under the active policy."""
    if isinstance(stmt, StaticCall):
        target_klass = program.klass(stmt.target.klass)
        if target_klass.dynamic and not include_dynamic:
            return []  # statically invisible
        return [stmt.target]

    assert isinstance(stmt, VirtualCall)
    targets: List[MethodRef] = []
    seen: Set[MethodRef] = set()
    for subtype in program.subtypes(stmt.base, include_dynamic=include_dynamic):
        if instantiated is not None and subtype not in instantiated:
            continue
        try:
            resolved = program.resolve(subtype, stmt.method)
        except Exception:
            continue  # abstract-like subtype without the method
        if not include_dynamic and program.klass(resolved.klass).dynamic:
            continue
        if resolved not in seen:
            seen.add(resolved)
            targets.append(resolved)
    return targets


def _instantiated_classes(
    program: Program, include_dynamic: bool
) -> Set[str]:
    """RTA fixpoint: classes instantiated in methods reachable from the
    entry, where reachability itself depends on the instantiated set."""
    instantiated: Set[str] = set()
    reachable: Set[MethodRef] = {program.entry}
    changed = True
    while changed:
        changed = False
        for ref in list(reachable):
            method = program.method(ref)
            for stmt in _walk(method.body):
                if isinstance(stmt, New):
                    klass = program.klass(stmt.klass)
                    if klass.dynamic and not include_dynamic:
                        continue
                    if stmt.klass not in instantiated:
                        instantiated.add(stmt.klass)
                        changed = True
                elif isinstance(stmt, (StaticCall, VirtualCall)):
                    for target in _dispatch_targets(
                        program, stmt, instantiated, include_dynamic
                    ):
                        if target not in reachable:
                            reachable.add(target)
                            changed = True
    return instantiated


def _walk(body: Sequence[Stmt]) -> Iterator[Stmt]:
    for stmt in body:
        yield stmt
        if isinstance(stmt, Loop):
            yield from _walk(stmt.body)
        elif isinstance(stmt, Branch):
            yield from _walk(stmt.then)
            yield from _walk(stmt.orelse)
