"""The ``seg-NNNNNNNN.dpqs`` segment file: one immutable window of counts.

A segment is the durable form of one flush of the aggregation tree —
the *delta* of ``(path, count, gap_count, epoch)`` rows accumulated
over a wall-clock window ``[t_lo, t_hi)``. Segments are append-only:
once written they are never modified, so any query answer computed
over a set of segments is reproducible forever (the property the
chaos harness asserts across crash/recovery).

File format — line-oriented checksummed records, one per line, exactly
the PR 5 checkpoint discipline (the helpers are imported from
:mod:`repro.resilience.checkpoint` so the formats cannot drift):

    ``<crc32 of payload, 8 hex chars> <payload JSON>``

Record kinds, in file order:

* ``header`` — format version, the window (``t_lo``/``t_hi``), the
  SHA-256 plan fingerprint the counts were decoded under, and the row
  count;
* ``names`` — distinct function names (zlib+base64 packed section with
  an inner CRC32);
* ``nodes`` — the prefix-trie topology as a flat
  ``[parent, name_id, ...]`` list (a path is the id of its trie leaf,
  mirroring the in-memory :class:`~repro.service.store.ContextStore`);
* ``index`` — the inverted index: ``[[name_id, [row, ...]], ...]``
  sorted posting lists mapping each function to the rows whose context
  contains it. The index is *verified on load* by rebuilding it from
  the rows — a segment whose postings lie is invalid, full stop;
* ``spans`` (format v2) — the list of ``[t_lo, t_hi]`` sub-windows the
  rows are attributed to. A freshly flushed delta segment has exactly
  one span (its own window); a *compacted* segment carries one span
  per merged input so that windowed queries keep answering
  byte-identically: each row belongs to the span of the delta it came
  from, never to the merged envelope;
* ``rows`` — batches of compact ``[pid, count, gap_count, epoch,
  span]`` rows (format v1 files carry 4-column rows and load as a
  single implicit span covering the whole window);
* ``footer`` — the record/row/sample totals actually written.

A file is valid only if every line's checksum matches, the header
parses, every section unpacks and passes its inner CRC, every pid
resolves, the index matches the rows, and the footer agrees with the
observed totals. A torn write (crash mid-file), bit rot, or a tampered
index disqualifies the file — readers skip it (counted in
``query.segments_rejected``) rather than serving garbage.

Durability on write: serialize to ``.tmp-seg-*`` in the same
directory, fsync, ``os.replace`` onto the final name, fsync the
directory. The ``fault`` hook (chaos) abandons the temp file
un-renamed, modelling a crash mid-flush.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.errors import QueryError
from repro.resilience.checkpoint import (
    delta_decode_path,
    delta_encode_rows,
    fsync_dir,
    pack_section,
    parse_record_line,
    record_line,
    unpack_section,
)

__all__ = [
    "FORMAT_VERSION",
    "Segment",
    "SegmentState",
    "load_segment",
    "segment_name",
    "sequence_of",
    "span_overlaps",
    "write_segment",
]

FORMAT_VERSION = 2
_READABLE_VERSIONS = (1, 2)
_PREFIX = "seg-"
_SUFFIX = ".dpqs"
_TMP_PREFIX = ".tmp-seg-"
_ROWS_PER_RECORD = 512


def segment_name(seq: int) -> str:
    """The canonical file name of segment ``seq``."""
    return f"{_PREFIX}{seq:08d}{_SUFFIX}"


def sequence_of(name: str) -> Optional[int]:
    """The sequence number behind a segment file name, or None."""
    if not (name.startswith(_PREFIX) and name.endswith(_SUFFIX)):
        return None
    try:
        return int(name[len(_PREFIX):-len(_SUFFIX)])
    except ValueError:
        return None


@dataclass(frozen=True)
class SegmentState:
    """The logical content of one segment (what gets written/read).

    ``rows`` normalize on construction to the canonical 4-tuple
    ``(path, count, gap_count, epoch)``; counts are the *delta* over
    the segment's window, not cumulative totals.

    ``spans`` are the sub-windows the rows are attributed to and
    ``row_spans[i]`` is the index into ``spans`` for ``rows[i]``. Both
    default to the trivial single-span form (every row in the
    ``[t_lo, t_hi)`` envelope) so delta flushes and format-v1 files
    need not mention them; the compactor sets one span per merged
    input segment so windowed answers stay byte-identical.
    """

    #: Wall-clock window covered, half-open ``[t_lo, t_hi)``.
    t_lo: float
    t_hi: float
    #: SHA-256 fingerprint of the newest plan the rows decoded under.
    fingerprint: str
    rows: Tuple[Tuple[Tuple[str, ...], int, int, int], ...]
    spans: Tuple[Tuple[float, float], ...] = ()
    row_spans: Tuple[int, ...] = ()

    def __post_init__(self):
        if self.t_hi < self.t_lo:
            raise QueryError(
                f"segment window is inverted: t_lo={self.t_lo} > "
                f"t_hi={self.t_hi}"
            )
        normalized = []
        for row in self.rows:
            path, count, gaps, epoch = (
                tuple(row[0]), int(row[1]), int(row[2]), int(row[3])
            )
            if count < 0 or gaps < 0:
                raise QueryError(f"segment row has negative counts: {row!r}")
            normalized.append((path, count, gaps, epoch))
        object.__setattr__(self, "rows", tuple(normalized))
        spans = tuple(
            (float(lo), float(hi)) for lo, hi in self.spans
        ) or ((float(self.t_lo), float(self.t_hi)),)
        row_spans = tuple(int(s) for s in self.row_spans)
        if not row_spans:
            row_spans = (0,) * len(normalized)
        if len(row_spans) != len(normalized):
            raise QueryError(
                f"segment has {len(normalized)} rows but "
                f"{len(row_spans)} span assignments"
            )
        for lo, hi in spans:
            if hi < lo:
                raise QueryError(f"segment span is inverted: [{lo}, {hi})")
            if lo < self.t_lo or hi > self.t_hi:
                raise QueryError(
                    f"segment span [{lo}, {hi}) escapes the envelope "
                    f"[{self.t_lo}, {self.t_hi})"
                )
        if spans:
            if min(lo for lo, _ in spans) != self.t_lo or max(
                hi for _, hi in spans
            ) != self.t_hi:
                raise QueryError(
                    "segment spans do not cover the window envelope"
                )
        for span_id in row_spans:
            if not 0 <= span_id < len(spans):
                raise QueryError(f"segment row cites unknown span {span_id}")
        object.__setattr__(self, "spans", spans)
        object.__setattr__(self, "row_spans", row_spans)

    @property
    def total_samples(self) -> int:
        return sum(row[1] for row in self.rows)

    @property
    def epochs(self) -> Tuple[int, ...]:
        return tuple(sorted({row[3] for row in self.rows}))

    @property
    def multi_span(self) -> bool:
        return len(self.spans) > 1


def span_overlaps(s_lo: float, s_hi: float, t_lo: float, t_hi: float) -> bool:
    """Half-open intersection of span ``[s_lo, s_hi)`` with a window.

    A zero-width span (flush with no time elapsed) still counts as
    inside any window containing its instant — the same rule
    :meth:`Segment.overlaps` applies to whole segments, so compacting
    N segments into N spans cannot change any windowed answer.
    """
    if s_lo == s_hi:
        return t_lo <= s_lo < t_hi
    return s_lo < t_hi and s_hi > t_lo


def _build_postings(
    nodes_flat: List[int], pids: List[int]
) -> List[List[object]]:
    """``[[name_id, [row, ...]], ...]`` — function → rows containing it.

    Built from the delta-encoded form (walking the trie from each leaf)
    so the index and the rows derive from the same bytes.
    """
    postings: Dict[int, List[int]] = {}
    for row_idx, pid in enumerate(pids):
        seen: set = set()
        node = pid
        while node != -1:
            name_id = nodes_flat[2 * node + 1]
            if name_id not in seen:
                seen.add(name_id)
                postings.setdefault(name_id, []).append(row_idx)
            node = nodes_flat[2 * node]
    return [[name_id, postings[name_id]] for name_id in sorted(postings)]


class Segment:
    """One loaded, validated segment plus its inverted index."""

    __slots__ = ("path", "seq", "state", "_postings", "_name_ids", "_names")

    def __init__(
        self,
        path: str,
        seq: int,
        state: SegmentState,
        names: List[str],
        postings: Dict[int, Tuple[int, ...]],
    ):
        self.path = path
        self.seq = seq
        self.state = state
        self._names = names
        self._name_ids = {name: i for i, name in enumerate(names)}
        self._postings = postings

    # -- window ---------------------------------------------------------
    @property
    def t_lo(self) -> float:
        return self.state.t_lo

    @property
    def t_hi(self) -> float:
        return self.state.t_hi

    def overlaps(self, t_lo: float, t_hi: float) -> bool:
        """Half-open window intersection: ``[t_lo, t_hi)`` vs this one.

        A zero-width segment (flush with no time elapsed) still counts
        as inside any window containing its instant.
        """
        return span_overlaps(self.t_lo, self.t_hi, t_lo, t_hi)

    @property
    def spans(self) -> Tuple[Tuple[float, float], ...]:
        return self.state.spans

    def row_window(self, row_idx: int) -> Tuple[float, float]:
        """The sub-window ``rows[row_idx]`` is attributed to."""
        return self.state.spans[self.state.row_spans[row_idx]]

    def row_overlaps(self, row_idx: int, t_lo: float, t_hi: float) -> bool:
        """Whether ``rows[row_idx]``'s own span intersects the window.

        For single-span (delta) segments this is exactly
        :meth:`overlaps`; for compacted segments it scopes the row to
        the delta it was merged from.
        """
        lo, hi = self.row_window(row_idx)
        return span_overlaps(lo, hi, t_lo, t_hi)

    # -- content --------------------------------------------------------
    @property
    def rows(self) -> Tuple[Tuple[Tuple[str, ...], int, int, int], ...]:
        return self.state.rows

    @property
    def samples(self) -> int:
        return self.state.total_samples

    @property
    def fingerprint(self) -> str:
        return self.state.fingerprint

    def functions(self) -> List[str]:
        """Every function appearing in this segment (indexed order)."""
        return [self._names[name_id] for name_id in sorted(self._postings)]

    def rows_through(self, function: str) -> Tuple[int, ...]:
        """Row indices whose context contains ``function`` (via index)."""
        name_id = self._name_ids.get(function)
        if name_id is None:
            return ()
        return self._postings.get(name_id, ())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Segment(seq={self.seq}, window=[{self.t_lo:.3f}, "
            f"{self.t_hi:.3f}), rows={len(self.rows)})"
        )


# ----------------------------------------------------------------------
# Write path
# ----------------------------------------------------------------------
def write_segment(
    directory: str,
    seq: int,
    state: SegmentState,
    fault: Optional[Callable[[int], None]] = None,
) -> str:
    """Durably write ``state`` as segment ``seq``; returns the path.

    ``fault`` (chaos) is called with the running record count after
    each record; raising from it abandons the temp file un-renamed, so
    readers only ever see previous, complete segments.
    """
    start = time.perf_counter()
    final = os.path.join(directory, segment_name(seq))
    tmp = os.path.join(directory, f"{_TMP_PREFIX}{seq:08d}-{os.getpid()}")
    records = 0
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(record_line({
                "kind": "header",
                "version": FORMAT_VERSION,
                "t_lo": state.t_lo,
                "t_hi": state.t_hi,
                "fingerprint": state.fingerprint,
                "rows": len(state.rows),
                "spans": len(state.spans),
            }))
            records += 1
            if fault is not None:
                fault(records)
            rows = list(state.rows)
            names, nodes_flat, pids = delta_encode_rows(rows)
            index = _build_postings(nodes_flat, pids)
            spans = [[lo, hi] for lo, hi in state.spans]
            for kind, section in (
                ("names", names),
                ("nodes", nodes_flat),
                ("index", index),
                ("spans", spans),
            ):
                payload = {"kind": kind}
                payload.update(pack_section(section))
                fh.write(record_line(payload))
                records += 1
                if fault is not None:
                    fault(records)
            for lo in range(0, len(rows), _ROWS_PER_RECORD):
                chunk = rows[lo:lo + _ROWS_PER_RECORD]
                fh.write(record_line({
                    "kind": "rows",
                    "rows": [
                        [
                            pids[lo + i],
                            row[1],
                            row[2],
                            row[3],
                            state.row_spans[lo + i],
                        ]
                        for i, row in enumerate(chunk)
                    ],
                }))
                records += 1
                if fault is not None:
                    fault(records)
            fh.write(record_line({
                "kind": "footer",
                "records": records + 1,
                "rows": len(rows),
                "samples": state.total_samples,
            }))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)
    except BaseException:
        obs.counter("query.segment_write_failures").inc()
        raise
    fsync_dir(directory)
    obs.counter("query.segments_written").inc()
    obs.histogram("query.segment_write_us").observe_us(
        (time.perf_counter() - start) * 1e6
    )
    return final


# ----------------------------------------------------------------------
# Read path
# ----------------------------------------------------------------------
def load_segment(path: str, seq: Optional[int] = None) -> Optional[Segment]:
    """Parse and validate one segment file; None when invalid.

    Validation is total: line checksums, header shape, section CRCs,
    pid resolution, index-vs-rows equivalence, and footer totals must
    all hold — anything less and the file is treated as absent.
    """
    if seq is None:
        seq = sequence_of(os.path.basename(path))
        if seq is None:
            return None
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
    except (OSError, UnicodeDecodeError):
        return None
    if not lines:
        return None
    header = parse_record_line(lines[0])
    if header is None or header.get("kind") != "header":
        return None
    version = header.get("version")
    if version not in _READABLE_VERSIONS:
        return None
    t_lo, t_hi = header.get("t_lo"), header.get("t_hi")
    if not isinstance(t_lo, (int, float)) or not isinstance(t_hi, (int, float)):
        return None
    if t_hi < t_lo:
        return None
    names: Optional[list] = None
    nodes_flat: Optional[list] = None
    index: Optional[list] = None
    spans: Optional[list] = None
    compact_rows: List[Tuple[object, int, int, int, int]] = []
    footer = None
    for line in lines[1:]:
        payload = parse_record_line(line)
        if payload is None:
            return None
        if footer is not None:
            return None  # records after the footer: corrupt
        kind = payload.get("kind")
        if kind == "rows":
            try:
                for row in payload["rows"]:
                    if version >= 2:
                        pid, count, gaps, epoch, span = row
                    else:
                        pid, count, gaps, epoch = row
                        span = 0
                    compact_rows.append(
                        (pid, int(count), int(gaps), int(epoch), int(span))
                    )
            except (KeyError, TypeError, ValueError):
                return None
        elif kind == "spans":
            if version < 2:
                return None  # a v1 file has no spans section
            spans = unpack_section(payload)
            if not isinstance(spans, list) or not all(
                isinstance(s, list)
                and len(s) == 2
                and all(isinstance(v, (int, float)) for v in s)
                for s in spans
            ):
                return None
        elif kind == "names":
            names = unpack_section(payload)
            if not isinstance(names, list) or not all(
                isinstance(n, str) for n in names
            ):
                return None
        elif kind == "nodes":
            nodes_flat = unpack_section(payload)
            if (
                not isinstance(nodes_flat, list)
                or len(nodes_flat) % 2
                or not all(isinstance(v, int) for v in nodes_flat)
            ):
                return None
        elif kind == "index":
            index = unpack_section(payload)
            if not isinstance(index, list):
                return None
        elif kind == "footer":
            footer = payload
        else:
            return None
    if footer is None or names is None or nodes_flat is None or index is None:
        return None  # torn write: a section or the footer never landed
    if version >= 2:
        if spans is None:
            return None  # torn write: the spans section never landed
        span_windows = [(float(lo), float(hi)) for lo, hi in spans]
        if header.get("spans") != len(span_windows):
            return None
    else:
        span_windows = [(float(t_lo), float(t_hi))]
    rows: List[tuple] = []
    pids: List[int] = []
    row_spans: List[int] = []
    for pid, count, gaps, epoch, span in compact_rows:
        decoded = delta_decode_path(pid, nodes_flat, names)
        if decoded is None:
            return None  # dangling pid: corrupt sections
        if count < 0 or gaps < 0:
            return None
        if not 0 <= span < len(span_windows):
            return None  # dangling span id: corrupt sections
        rows.append((decoded, count, gaps, epoch))
        pids.append(pid)
        row_spans.append(span)
    if (
        footer.get("records") != len(lines)
        or footer.get("rows") != len(rows)
        or header.get("rows") != len(rows)
    ):
        return None
    # The index must be exactly what the rows imply — rebuilt here from
    # the same decoded form, then compared. A segment whose postings
    # disagree with its rows is corrupt, not "best effort".
    expected = _build_postings(nodes_flat, pids)
    if index != expected:
        return None
    postings: Dict[int, Tuple[int, ...]] = {
        entry[0]: tuple(entry[1]) for entry in expected
    }
    try:
        state = SegmentState(
            t_lo=float(t_lo),
            t_hi=float(t_hi),
            fingerprint=str(header.get("fingerprint", "")),
            rows=tuple(rows),
            spans=tuple(span_windows),
            row_spans=tuple(row_spans),
        )
    except QueryError:
        return None  # inverted/escaping spans: corrupt sections
    if footer.get("samples") != state.total_samples:
        return None
    return Segment(path, seq, state, list(names), postings)
