""":class:`SegmentWriter` — turns aggregation-tree snapshots into segments.

The sharded tree holds *cumulative* counts; segments hold *deltas*, so
that summing every overlapping segment over a time window reconstructs
exactly what happened in that window. The writer keeps the baseline
(the cumulative rows as of the last successful flush) and each
``flush()`` emits only what changed since, stamped with the half-open
wall-clock window ``[last_flush, now)``. A flush that would write an
empty segment writes nothing.

Crash discipline mirrors the checkpoint daemon: a failed flush leaves
baseline and window untouched, so the next attempt re-covers the same
delta — segments never lose samples, at worst a window widens. After
recovery the service calls :meth:`rebase` with the recovered rows so
samples already persisted in pre-crash segments are not re-emitted.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro import obs
from repro.query.manifest import SegmentStore
from repro.query.segment import SegmentState

__all__ = ["SegmentWriter"]

_Key = Tuple[Tuple[str, ...], int]  # (path, epoch)


def _cumulative(rows: Iterable[tuple]) -> Dict[_Key, Tuple[int, int]]:
    out: Dict[_Key, Tuple[int, int]] = {}
    for path, count, gaps, epoch in rows:
        key = (tuple(path), epoch)
        prev = out.get(key)
        if prev is None:
            out[key] = (count, gaps)
        else:  # same (path, epoch) from multiple shards
            out[key] = (prev[0] + count, prev[1] + gaps)
    return out


class SegmentWriter:
    """Flushes count deltas from ``tree`` into ``directory`` segments."""

    def __init__(
        self,
        tree,
        directory: str,
        *,
        fingerprint: str = "",
        clock: Callable[[], float] = time.time,
    ):
        self.tree = tree
        self.store = SegmentStore(directory)
        self.fingerprint = fingerprint
        self._clock = clock
        self._lock = threading.Lock()
        self._baseline: Dict[_Key, Tuple[int, int]] = {}
        self._window_start = clock()
        self.flushes = 0
        self.empty_flushes = 0

    def set_fingerprint(self, fingerprint: str) -> None:
        self.fingerprint = fingerprint

    # ------------------------------------------------------------------
    def flush(self, fault: Optional[Callable[[int], None]] = None) -> Optional[str]:
        """Write one segment of deltas since the last flush.

        Returns the new segment's path, or None when nothing changed.
        On any exception the baseline/window are left as they were, so
        retrying covers the same samples.
        """
        with self._lock:
            cumulative = _cumulative(self.tree.rows())
            rows = []
            for key, (count, gaps) in cumulative.items():
                base_count, base_gaps = self._baseline.get(key, (0, 0))
                d_count = count - base_count
                d_gaps = gaps - base_gaps
                if d_count or d_gaps:
                    rows.append((key[0], d_count, d_gaps, key[1]))
            now = self._clock()
            if not rows:
                self.empty_flushes += 1
                self._window_start = now
                return None
            rows.sort(key=lambda r: (r[0], r[3]))
            state = SegmentState(
                t_lo=self._window_start,
                t_hi=max(now, self._window_start),
                fingerprint=self.fingerprint,
                rows=tuple(rows),
            )
            with obs.span("query.flush", rows=len(rows)):
                path = self.store.append(state, fault=fault)
            self._baseline = cumulative
            self._window_start = state.t_hi
            self.flushes += 1
            return path

    def rebase(self, rows: Iterable[tuple]) -> None:
        """Reset the baseline to ``rows`` (post-recovery tree contents).

        Counts restored from a checkpoint were already flushed to
        segments before the crash (or lost with the process — either
        way they are not *new*), so they must not be emitted again.
        """
        with self._lock:
            self._baseline = _cumulative(rows)
            self._window_start = self._clock()

    def stats(self) -> dict:
        with self._lock:
            out = {
                "flushes": self.flushes,
                "empty_flushes": self.empty_flushes,
                "baseline_rows": len(self._baseline),
                "window_start": self._window_start,
            }
        out.update(self.store.stats())
        return out
