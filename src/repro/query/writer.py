""":class:`SegmentWriter` — turns aggregation-tree snapshots into segments.

The sharded tree holds *cumulative* counts; segments hold *deltas*, so
that summing every overlapping segment over a time window reconstructs
exactly what happened in that window. The writer keeps the baseline
(the cumulative rows as of the last successful flush) and each
``flush()`` emits only what changed since, stamped with the half-open
wall-clock window ``[last_flush, now)``. A flush that would write an
empty segment writes nothing.

Crash discipline mirrors the checkpoint daemon: a failed flush leaves
baseline and window untouched, so the next attempt re-covers the same
delta — segments never lose samples, at worst a window widens. After
recovery the service calls :meth:`rebase` with the recovered rows so
samples already persisted in pre-crash segments are not re-emitted.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro import obs
from repro.errors import QueryError
from repro.query.manifest import SegmentStore
from repro.query.segment import SegmentState

__all__ = ["SegmentWriter"]

_Key = Tuple[Tuple[str, ...], int]  # (path, epoch)


def _cumulative(rows: Iterable[tuple]) -> Dict[_Key, Tuple[int, int]]:
    out: Dict[_Key, Tuple[int, int]] = {}
    for path, count, gaps, epoch in rows:
        key = (tuple(path), epoch)
        prev = out.get(key)
        if prev is None:
            out[key] = (count, gaps)
        else:  # same (path, epoch) from multiple shards
            out[key] = (prev[0] + count, prev[1] + gaps)
    return out


class SegmentWriter:
    """Flushes count deltas from ``tree`` into ``directory`` segments."""

    def __init__(
        self,
        tree,
        directory: str,
        *,
        fingerprint: str = "",
        clock: Callable[[], float] = time.time,
    ):
        self.tree = tree
        self.store = SegmentStore(directory)
        self.fingerprint = fingerprint
        self._clock = clock
        self._lock = threading.Lock()
        self._baseline: Dict[_Key, Tuple[int, int]] = {}
        self._window_start = clock()
        self.flushes = 0
        self.empty_flushes = 0
        self.salvaged_flushes = 0

    def set_fingerprint(self, fingerprint: str) -> None:
        self.fingerprint = fingerprint

    # ------------------------------------------------------------------
    def flush(self, fault: Optional[Callable[[int], None]] = None) -> Optional[str]:
        """Write one segment of deltas since the last flush.

        Returns the new segment's path, or None when nothing changed.
        On an exception the baseline/window are left as they were, so
        retrying covers the same samples — with one exception: when the
        failed ``append`` turns out to have landed its segment durably
        (the rename happened, then loading or the manifest rewrite
        blew up — a crash window a dying worker process hits), the
        flush is *salvaged*: the baseline advances, the landed path is
        returned, and ``query.flush_salvaged`` counts it.  Without the
        salvage a retry would re-emit the same delta on top of the
        durable segment and every sample in it would be counted twice.

        Deltas clamp at zero per component: a reconciled baseline (see
        :meth:`rebase`) can sit *ahead* of a recovered tree for keys
        whose flushed counts outlived the checkpoint; those keys emit
        nothing until the tree catches back up, instead of handing
        :class:`SegmentState` a negative row.
        """
        with self._lock:
            cumulative = _cumulative(self.tree.rows())
            rows = []
            for key, (count, gaps) in cumulative.items():
                base_count, base_gaps = self._baseline.get(key, (0, 0))
                d_count = max(0, count - base_count)
                d_gaps = max(0, gaps - base_gaps)
                if d_count or d_gaps:
                    rows.append((key[0], d_count, d_gaps, key[1]))
            now = self._clock()
            if not rows:
                self.empty_flushes += 1
                self._window_start = now
                return None
            rows.sort(key=lambda r: (r[0], r[3]))
            state = SegmentState(
                t_lo=self._window_start,
                t_hi=max(now, self._window_start),
                fingerprint=self.fingerprint,
                rows=tuple(rows),
            )
            with obs.span("query.flush", rows=len(rows)):
                try:
                    path = self.store.append(state, fault=fault)
                except Exception:
                    path = self._salvage(state)
                    if path is None:
                        raise
                    self.salvaged_flushes += 1
                    obs.counter("query.flush_salvaged").inc()
            self._advance_baseline(cumulative)
            self._window_start = state.t_hi
            self.flushes += 1
            return path

    def _advance_baseline(self, cumulative: Dict[_Key, Tuple[int, int]]) -> None:
        """Move the baseline forward, never backward, per key.

        For keys where the baseline ran ahead of the tree (durable
        segments outliving a checkpoint), adopting the smaller tree
        value would let a later flush re-emit counts the store already
        holds; the component-wise max keeps the baseline equal to what
        the segments durably contain.
        """
        merged = dict(self._baseline)
        for key, (count, gaps) in cumulative.items():
            base_count, base_gaps = merged.get(key, (0, 0))
            merged[key] = (max(base_count, count), max(base_gaps, gaps))
        self._baseline = merged

    def _salvage(self, state: SegmentState) -> Optional[str]:
        """After a failed append: did the segment land durably anyway?

        Scans the refreshed store (which adopts orphan segments the
        manifest never recorded) for a segment whose content is exactly
        the attempted state.  Returns its path, or None when the write
        genuinely never made it.
        """
        try:
            self.store.refresh()
            for seg in self.store.segments():
                if (
                    seg.rows == state.rows
                    and seg.fingerprint == state.fingerprint
                    and abs(seg.t_lo - state.t_lo) < 1e-9
                    and abs(seg.t_hi - state.t_hi) < 1e-9
                ):
                    return seg.path
        except Exception:  # noqa: BLE001 - salvage is best-effort
            return None
        return None

    def rebase(
        self,
        rows: Iterable[tuple],
        *,
        reconcile_store: bool = False,
        expected_generation: Optional[int] = None,
    ) -> None:
        """Reset the baseline after recovery.

        Plain ``rebase(rows)`` adopts the recovered tree contents as
        the baseline: counts restored from a checkpoint are not *new*
        and must not be emitted again.

        ``reconcile_store=True`` goes further and rebuilds the baseline
        from the **durable segments themselves** — the correct baseline
        after a process crash, where checkpoint cadence and segment
        cadence disagree in either direction.  Per key: counts the
        store holds beyond the checkpoint are never re-emitted (no
        double count), and counts the checkpoint restored that never
        reached a segment are emitted by the next flush (not dropped).
        ``rows`` is only the fallback when the store cannot be read.
        The reconciliation includes the directory's **retired totals**
        (rows retention deliberately deleted), so aged-out history is
        not mistaken for un-flushed samples and re-emitted.

        ``expected_generation`` guards recovery flows that captured
        ``rows`` against a specific manifest generation: if the store
        has since been compacted past it, the captured rows describe a
        world that no longer exists and the rebase is rejected with
        :class:`QueryError` — reconcile against the live store instead
        of silently adopting a pre-compaction baseline.
        """
        with self._lock:
            if expected_generation is not None:
                self.store.refresh()
                current = self.store.generation
                if int(expected_generation) < current:
                    raise QueryError(
                        f"rebase rejected: rows were captured at "
                        f"generation {expected_generation} but the store "
                        f"was compacted to generation {current}; "
                        f"reconcile against the store instead"
                    )
            if reconcile_store:
                baseline = self._store_cumulative()
                if baseline is None:
                    baseline = _cumulative(rows)
            else:
                baseline = _cumulative(rows)
            self._baseline = baseline
            self._window_start = self._clock()

    def _store_cumulative(self) -> Optional[Dict[_Key, Tuple[int, int]]]:
        """Sum every durable segment's delta rows — plus the retired
        totals retention deleted from the directory — or None on
        failure. Without the retired component a recovered writer
        whose tree outlived a retention sweep would see "the store
        holds less than the tree" and re-emit history that was
        deliberately aged out."""
        try:
            self.store.refresh()
            out: Dict[_Key, Tuple[int, int]] = {}
            for seg in self.store.segments():
                for path, count, gaps, epoch in seg.rows:
                    key = (tuple(path), epoch)
                    prev = out.get(key, (0, 0))
                    out[key] = (prev[0] + count, prev[1] + gaps)
            for key, (count, gaps) in self.store.retired_totals().items():
                prev = out.get(key, (0, 0))
                out[key] = (prev[0] + count, prev[1] + gaps)
            return out
        except Exception:  # noqa: BLE001 - recovery must not die here
            return None

    def stats(self) -> dict:
        with self._lock:
            out = {
                "flushes": self.flushes,
                "empty_flushes": self.empty_flushes,
                "salvaged_flushes": self.salvaged_flushes,
                "baseline_rows": len(self._baseline),
                "window_start": self._window_start,
            }
        out.update(self.store.stats())
        return out
