"""Folded-stack flame-graph export/import.

The folded format is the lingua franca of flame-graph tooling (one
line per calling context: frame names joined by ``;``, a space, then
the sample count), so a context store that speaks it can hand its
contents to any off-the-shelf renderer. Export is deterministic
(sorted lines) and loss-free for DeltaPath contexts: ``from_folded``
inverts ``to_folded`` exactly, which the chaos oracle relies on.

Frame names containing ``;`` or whitespace cannot be represented in
the folded format; exporting them raises :class:`QueryError` rather
than producing a file other tools would mis-parse. The empty context
``()`` (samples attributed to the root) is likewise unrepresentable
and rejected — the aggregation layer never produces it.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple

from repro.errors import QueryError

__all__ = ["from_folded", "to_folded"]


def _check_frame(name: str) -> str:
    if not name or ";" in name or any(ch.isspace() for ch in name):
        raise QueryError(
            f"frame name {name!r} cannot be represented in folded-stack "
            "format (empty, or contains ';' / whitespace)"
        )
    return name


def to_folded(counts: Mapping[Sequence[str], int]) -> str:
    """Render ``{path: count}`` as sorted folded-stack lines."""
    lines = []
    for path, count in counts.items():
        frames = tuple(path)
        if not frames:
            raise QueryError("empty context () has no folded representation")
        if count < 0:
            raise QueryError(f"negative count {count} for {frames!r}")
        if count == 0:
            continue
        lines.append(";".join(_check_frame(f) for f in frames) + f" {count}")
    lines.sort()
    return "\n".join(lines) + ("\n" if lines else "")


def from_folded(text: str) -> Dict[Tuple[str, ...], int]:
    """Parse folded-stack lines back into ``{path: count}``.

    Duplicate stacks are merged by summing (collapsers commonly emit
    duplicates); blank lines are ignored; anything else malformed
    raises :class:`QueryError`.
    """
    counts: Dict[Tuple[str, ...], int] = {}
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        stack, sep, tail = line.rpartition(" ")
        if not sep or not stack:
            raise QueryError(f"folded line {lineno} has no count: {raw!r}")
        try:
            count = int(tail)
        except ValueError:
            raise QueryError(
                f"folded line {lineno} count {tail!r} is not an integer"
            ) from None
        if count < 0:
            raise QueryError(f"folded line {lineno} has negative count")
        frames = tuple(stack.split(";"))
        if any(not f for f in frames):
            raise QueryError(f"folded line {lineno} has an empty frame")
        counts[frames] = counts.get(frames, 0) + count
    return counts
