"""Generation-based segment compaction and retention for one directory.

The append-only store grows one delta segment per checkpoint tick,
forever. This module folds that history back down without ever
changing an answer:

* **Compaction** merges N live segments into one cumulative segment.
  The merged file keeps *one span per input* (format v2, see
  :mod:`repro.query.segment`), so every windowed query — including the
  half-window and diff shapes the chaos oracle pins — sums exactly the
  same rows before and after: byte-identical answers, fewer files,
  names/trie deduplicated across spans.
* **Retention** ages history out under explicit caps
  (``max_segments`` / ``max_bytes`` / ``max_age_s``). Deletions are
  counted, never silent: every removed file leaves a manifest
  tombstone, and every removed *row* is added to the cumulative
  retired-totals sidecar (``retired-GGGGGGGG.dpqr``) so a recovered
  writer reconciling against the store does not re-emit history that
  was deliberately dropped.

Every mutation is one **generation swap** executed under the exclusive
:class:`~repro.query.locks.DirectoryLock` with the PR 5 durability
discipline, in this order:

1. write the new retired-totals file (if retention dropped rows);
2. write the CRC'd **intent journal** (``compact.dpqj``) durably —
   the declaration "generation G+1 = these inputs → this output";
3. write the merged output segment (temp/fsync/rename);
4. commit: rewrite the manifest with ``generation = G+1``, the output
   plus any segments appended mid-swap, and tombstones for the inputs
   — the manifest rename *is* the commit point;
5. delete the input files (skipping any a live reader pin still
   protects — deferred deletions stay tombstoned and are retried),
   then remove the journal.

A SIGKILL at **any byte** of that sequence leaves either the old
generation or the new one, never a blend: before the commit rename the
old manifest still rules and readers quarantine the journal's
uncommitted output; after it the inputs are tombstoned. The next
mutator (or :meth:`Compactor.recover`) rolls the journal forward when
its output validates completely, backward otherwise.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro import obs
from repro.errors import QueryError
from repro.query.locks import (
    DEFAULT_LEASE_S,
    DirectoryLock,
    LockHeldError,
    live_pins,
)
from repro.query.manifest import (
    SegmentStore,
    load_manifest_info,
    write_manifest,
)
from repro.query.segment import (
    Segment,
    SegmentState,
    load_segment,
    segment_name,
    write_segment,
)
from repro.resilience.checkpoint import (
    delta_decode_path,
    delta_encode_rows,
    fsync_dir,
    pack_section,
    parse_record_line,
    record_line,
    unpack_section,
)

__all__ = [
    "CompactionPolicy",
    "Compactor",
    "JOURNAL_NAME",
    "JOURNAL_VERSION",
    "RETIRED_VERSION",
    "RetentionPolicy",
    "journal_quarantine",
    "load_journal",
    "load_retired",
    "retired_name",
    "write_journal",
    "write_retired",
]

JOURNAL_NAME = "compact.dpqj"
JOURNAL_VERSION = 1
RETIRED_VERSION = 1
_RETIRED_PREFIX = "retired-"
_RETIRED_SUFFIX = ".dpqr"
_ROWS_PER_RECORD = 512
#: Manifest tombstones kept after their file is confirmed deleted.
_TOMBSTONE_KEEP = 64

_Key = Tuple[Tuple[str, ...], int]  # (path, epoch)


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetentionPolicy:
    """Caps on what the directory may keep. ``None`` = unbounded.

    * ``max_segments`` — cap on live segment *files*; exceeding it
      makes a compaction due (merging satisfies any cap >= 1).
    * ``max_bytes`` — cap on live on-disk bytes; the oldest spans are
      dropped (their rows retired) until the estimate fits.
    * ``max_age_s`` — spans whose whole window is older than
      ``now - max_age_s`` are dropped.
    * ``keep_spans`` — the newest N spans survive every cap, so a
      retention sweep can never empty the store entirely.
    """

    max_segments: Optional[int] = None
    max_bytes: Optional[int] = None
    max_age_s: Optional[float] = None
    keep_spans: int = 1

    def __post_init__(self):
        if self.max_segments is not None and self.max_segments < 1:
            raise QueryError("retention max_segments must be >= 1")
        if self.max_bytes is not None and self.max_bytes < 1:
            raise QueryError("retention max_bytes must be >= 1")
        if self.max_age_s is not None and self.max_age_s <= 0:
            raise QueryError("retention max_age_s must be positive")
        if self.keep_spans < 0:
            raise QueryError("retention keep_spans must be >= 0")

    @property
    def bounded(self) -> bool:
        return (
            self.max_segments is not None
            or self.max_bytes is not None
            or self.max_age_s is not None
        )


@dataclass(frozen=True)
class CompactionPolicy:
    """When to merge and what to retain."""

    #: Merge as soon as this many live segments have accumulated.
    min_inputs: int = 4
    retention: RetentionPolicy = field(default_factory=RetentionPolicy)
    #: Lease on the directory lock (and the staleness horizon at which
    #: contenders may break it).
    lease_s: float = DEFAULT_LEASE_S

    def __post_init__(self):
        if self.min_inputs < 2:
            raise QueryError("compaction min_inputs must be >= 2")


# ----------------------------------------------------------------------
# Intent journal
# ----------------------------------------------------------------------
def write_journal(
    directory: str,
    intent: dict,
    fault: Optional[Callable[[int], None]] = None,
) -> str:
    """Durably declare a generation swap before performing it.

    Same record discipline as everything else; the temp/fsync/rename
    means a crash mid-write leaves *no* journal (clean roll-back: the
    swap never started), never a torn one.
    """
    final = os.path.join(directory, JOURNAL_NAME)
    tmp = os.path.join(directory, f".tmp-journal-{os.getpid()}")
    header = {"kind": "compact-intent", "version": JOURNAL_VERSION}
    header.update(intent)
    records = 0
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(record_line(header))
        records += 1
        if fault is not None:
            fault(records)
        fh.write(record_line({"kind": "footer", "records": records + 1}))
        records += 1
        if fault is not None:
            fault(records)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, final)
    fsync_dir(directory)
    return final


def load_journal(directory: str) -> Optional[dict]:
    """The pending swap intent, or None when absent or untrustworthy.

    Validation is total, mirroring segments: any torn line, bad CRC,
    malformed header/footer, alien kind, or unknown version rejects
    the file (counted in ``query.journal_rejected`` by callers that
    then discard it).
    """
    path = os.path.join(directory, JOURNAL_NAME)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
    except (OSError, UnicodeDecodeError):
        return None
    if len(lines) != 2:
        return None
    header = parse_record_line(lines[0])
    footer = parse_record_line(lines[1])
    if header is None or footer is None:
        return None
    if header.get("kind") != "compact-intent":
        return None
    if header.get("version") != JOURNAL_VERSION:
        return None
    if footer.get("kind") != "footer" or footer.get("records") != 2:
        return None
    from_gen = header.get("from_generation")
    to_gen = header.get("to_generation")
    if not isinstance(from_gen, int) or not isinstance(to_gen, int):
        return None
    if from_gen < 0 or to_gen != from_gen + 1:
        return None
    inputs = header.get("inputs")
    if not isinstance(inputs, list):
        return None
    for entry in inputs:
        if (
            not isinstance(entry, list)
            or len(entry) != 3
            or not all(isinstance(v, int) and v >= 0 for v in entry)
        ):
            return None
    output_seq = header.get("output_seq")
    if output_seq is not None and not isinstance(output_seq, int):
        return None
    retired = header.get("retired")
    if retired is not None and not isinstance(retired, str):
        return None
    for key in ("drop_spans", "drop_rows", "drop_samples"):
        value = header.get(key)
        if not isinstance(value, int) or value < 0:
            return None
    return header


def journal_pending(directory: str) -> bool:
    return os.path.exists(os.path.join(directory, JOURNAL_NAME))


def journal_quarantine(
    directory: str, generation: Optional[int]
) -> Set[int]:
    """Which segment seqs a reader must skip to see *one* generation.

    ``generation`` is the manifest generation the reader loaded, or
    None when the manifest could not be trusted (fallback scan).

    * Intent newer than the manifest → the output is uncommitted:
      skip it, serve the inputs (the old generation still rules).
    * Intent at or behind the manifest → the swap committed; the
      inputs are tombstoned by the manifest itself, nothing to do.
    * No manifest at all → serve exactly one side: the output when it
      validates *and* the swap dropped nothing (the two sides answer
      identically), otherwise the inputs.
    """
    journal = load_journal(directory)
    if journal is None:
        return set()
    output_seq = journal.get("output_seq")
    if generation is not None:
        if journal["to_generation"] > generation and output_seq is not None:
            return {int(output_seq)}
        return set()
    input_seqs = {int(entry[0]) for entry in journal["inputs"]}
    if output_seq is not None and journal.get("drop_rows", 0) == 0:
        seg = load_segment(
            os.path.join(directory, segment_name(output_seq)), output_seq
        )
        if seg is not None:
            return input_seqs
    return {int(output_seq)} if output_seq is not None else set()


# ----------------------------------------------------------------------
# Retired totals sidecar
# ----------------------------------------------------------------------
def retired_name(generation: int) -> str:
    return f"{_RETIRED_PREFIX}{generation:08d}{_RETIRED_SUFFIX}"


def retired_generation_of(name: str) -> Optional[int]:
    if not (
        name.startswith(_RETIRED_PREFIX) and name.endswith(_RETIRED_SUFFIX)
    ):
        return None
    try:
        return int(name[len(_RETIRED_PREFIX):-len(_RETIRED_SUFFIX)])
    except ValueError:
        return None


def write_retired(
    directory: str,
    generation: int,
    totals: Dict[_Key, Tuple[int, int]],
    fault: Optional[Callable[[int], None]] = None,
) -> str:
    """Durably write the cumulative retired totals for ``generation``.

    Same trie encoding as segment rows so the formats cannot drift;
    not served by queries — only writer reconciliation reads it.
    """
    final = os.path.join(directory, retired_name(generation))
    tmp = os.path.join(directory, f".tmp-retired-{os.getpid()}")
    rows = sorted(
        (path, count, gaps, epoch)
        for (path, epoch), (count, gaps) in totals.items()
    )
    records = 0
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(record_line({
            "kind": "retired",
            "version": RETIRED_VERSION,
            "generation": int(generation),
            "rows": len(rows),
        }))
        records += 1
        if fault is not None:
            fault(records)
        names, nodes_flat, pids = delta_encode_rows(rows)
        for kind, section in (("names", names), ("nodes", nodes_flat)):
            payload = {"kind": kind}
            payload.update(pack_section(section))
            fh.write(record_line(payload))
            records += 1
            if fault is not None:
                fault(records)
        for lo in range(0, len(rows), _ROWS_PER_RECORD):
            chunk = rows[lo:lo + _ROWS_PER_RECORD]
            fh.write(record_line({
                "kind": "rows",
                "rows": [
                    [pids[lo + i], row[1], row[2], row[3]]
                    for i, row in enumerate(chunk)
                ],
            }))
            records += 1
            if fault is not None:
                fault(records)
        fh.write(record_line({
            "kind": "footer",
            "records": records + 1,
            "rows": len(rows),
            "samples": sum(r[1] for r in rows),
        }))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, final)
    fsync_dir(directory)
    return final


def load_retired(path: str) -> Optional[Dict[_Key, Tuple[int, int]]]:
    """Parse and fully validate a retired-totals file; None when bad."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
    except (OSError, UnicodeDecodeError):
        return None
    if not lines:
        return None
    header = parse_record_line(lines[0])
    if header is None or header.get("kind") != "retired":
        return None
    if header.get("version") != RETIRED_VERSION:
        return None
    names: Optional[list] = None
    nodes_flat: Optional[list] = None
    compact_rows: List[tuple] = []
    footer = None
    for line in lines[1:]:
        payload = parse_record_line(line)
        if payload is None:
            return None
        if footer is not None:
            return None
        kind = payload.get("kind")
        if kind == "rows":
            try:
                for pid, count, gaps, epoch in payload["rows"]:
                    compact_rows.append(
                        (pid, int(count), int(gaps), int(epoch))
                    )
            except (KeyError, TypeError, ValueError):
                return None
        elif kind == "names":
            names = unpack_section(payload)
            if not isinstance(names, list) or not all(
                isinstance(n, str) for n in names
            ):
                return None
        elif kind == "nodes":
            nodes_flat = unpack_section(payload)
            if (
                not isinstance(nodes_flat, list)
                or len(nodes_flat) % 2
                or not all(isinstance(v, int) for v in nodes_flat)
            ):
                return None
        elif kind == "footer":
            footer = payload
        else:
            return None
    if footer is None or names is None or nodes_flat is None:
        return None
    totals: Dict[_Key, Tuple[int, int]] = {}
    samples = 0
    for pid, count, gaps, epoch in compact_rows:
        decoded = delta_decode_path(pid, nodes_flat, names)
        if decoded is None or count < 0 or gaps < 0:
            return None
        totals[(decoded, epoch)] = (count, gaps)
        samples += count
    if (
        footer.get("records") != len(lines)
        or footer.get("rows") != len(compact_rows)
        or header.get("rows") != len(compact_rows)
        or footer.get("samples") != samples
        or len(totals) != len(compact_rows)
    ):
        return None
    return totals


# ----------------------------------------------------------------------
# The compactor
# ----------------------------------------------------------------------
@dataclass
class _Span:
    t_lo: float
    t_hi: float
    src_seq: int
    rows: tuple  # ((path, count, gaps, epoch), ...)

    @property
    def samples(self) -> int:
        return sum(r[1] for r in self.rows)


class Compactor:
    """Executes generation swaps over one :class:`SegmentStore`.

    One instance per store; safe to call from the checkpoint daemon
    thread while the ingest thread keeps appending (the commit runs
    under the store's own lock, so mid-swap appends survive into the
    new manifest).
    """

    def __init__(
        self,
        store: SegmentStore,
        policy: Optional[CompactionPolicy] = None,
        clock: Callable[[], float] = time.time,
    ):
        self.store = store
        self.policy = policy or CompactionPolicy()
        self._clock = clock
        self.compactions = 0
        self.failures = 0
        self.rolled_back = 0
        self.recovered_forward = 0
        self.skipped_not_due = 0
        self.deferred_deletes = 0
        self.deleted_files = 0
        self.dropped_spans = 0
        self.dropped_rows = 0
        self.dropped_samples = 0

    # ------------------------------------------------------------------
    @property
    def directory(self) -> str:
        return self.store.directory

    def stats(self) -> dict:
        return {
            "generation": self.store.generation,
            "compactions": self.compactions,
            "failures": self.failures,
            "rolled_back": self.rolled_back,
            "recovered_forward": self.recovered_forward,
            "skipped_not_due": self.skipped_not_due,
            "deferred_deletes": self.deferred_deletes,
            "deleted_files": self.deleted_files,
            "dropped_spans": self.dropped_spans,
            "dropped_rows": self.dropped_rows,
            "dropped_samples": self.dropped_samples,
        }

    # ------------------------------------------------------------------
    def recover(self, now: Optional[float] = None) -> Optional[str]:
        """Resolve a pending intent journal; returns the action taken.

        Takes the directory lock itself — this is what a freshly
        restarted process calls before its first swap.
        """
        if not journal_pending(self.directory):
            return None
        now = self._clock() if now is None else now
        lock = DirectoryLock(
            self.directory, lease_s=self.policy.lease_s, clock=self._clock
        )
        lock.acquire()
        try:
            return self._recover_locked(now, lock)
        finally:
            lock.release()

    def _require_lock(self, lock: DirectoryLock) -> None:
        """Refuse to mutate after the lock was broken by a contender."""
        if not lock.still_valid():
            raise LockHeldError(
                f"directory lock on {self.directory!r} was broken "
                "(lease expired?); abandoning recovery before mutating"
            )

    def _recover_locked(self, now: float, lock: DirectoryLock) -> Optional[str]:
        journal = load_journal(self.directory)
        journal_path = os.path.join(self.directory, JOURNAL_NAME)
        if journal is None:
            if os.path.exists(journal_path):
                # Present but untrustworthy: the swap never committed
                # (a committed journal was valid by construction), so
                # discarding it *is* the roll-back.
                self._require_lock(lock)
                os.unlink(journal_path)
                fsync_dir(self.directory)
                obs.counter("query.journal_rejected").inc()
                self.rolled_back += 1
                return "rolled-back"
            return None
        info = load_manifest_info(self.directory)
        current = info["generation"] if info is not None else 0
        if journal["to_generation"] <= current:
            # Crash after the commit rename: the swap is law, only the
            # input deletions may be unfinished — the sweep retries
            # them from the tombstones.
            self._require_lock(lock)
            os.unlink(journal_path)
            fsync_dir(self.directory)
            self.store.refresh()
            self._sweep_deletions(now)
            return "committed"
        output_seq = journal.get("output_seq")
        output_ok = True
        if output_seq is not None:
            seg = load_segment(
                os.path.join(self.directory, segment_name(output_seq)),
                output_seq,
            )
            output_ok = seg is not None
        retired = journal.get("retired")
        # A retired name whose generation is the journal's target was
        # *created* by the dead swap; anything older is the previous
        # sidecar carried forward unchanged — still referenced by the
        # live manifest, so it neither gates the roll-forward nor may
        # a roll-back delete it.
        retired_is_new = (
            retired is not None
            and retired_generation_of(retired) == journal["to_generation"]
        )
        if output_ok and retired_is_new:
            output_ok = (
                load_retired(os.path.join(self.directory, retired))
                is not None
            )
        if not output_ok:
            # The output never fully landed: roll back. The old
            # generation was never superseded, so only artifacts of
            # the dead swap are removed.
            self._require_lock(lock)
            for name in (
                segment_name(output_seq) if output_seq is not None else None,
                retired if retired_is_new else None,
            ):
                if name is None:
                    continue
                try:
                    os.unlink(os.path.join(self.directory, name))
                except OSError:
                    pass
            os.unlink(journal_path)
            fsync_dir(self.directory)
            obs.counter("query.compactions_rolled_back").inc()
            self.rolled_back += 1
            self.store.refresh()
            return "rolled-back"
        # Everything durable: roll forward by performing the commit the
        # dead process was about to.
        tombstones = self._merge_tombstones(
            info["tombstones"] if info is not None else [],
            journal["inputs"],
            journal["to_generation"],
        )
        output = []
        if output_seq is not None:
            seg = load_segment(
                os.path.join(self.directory, segment_name(output_seq)),
                output_seq,
            )
            output = [seg] if seg is not None else []
        self._require_lock(lock)
        self._commit(
            journal["to_generation"], output,
            {int(e[0]) for e in journal["inputs"]}, tombstones, retired,
        )
        os.unlink(journal_path)
        fsync_dir(self.directory)
        self._sweep_deletions(now)
        obs.counter("query.compactions_recovered").inc()
        self.recovered_forward += 1
        return "rolled-forward"

    # ------------------------------------------------------------------
    def compact(
        self,
        now: Optional[float] = None,
        fault: Optional[Callable[[int], None]] = None,
        force: bool = False,
    ) -> Optional[dict]:
        """Run one swap if due; returns a report dict or None.

        ``fault`` (chaos) is called with a monotonically increasing
        record count across every durable step of the swap — raising
        from it models a SIGKILL at that byte. ``force`` overrides the
        due-ness policy (the CLI's ``--compact``).

        Raises :class:`~repro.query.locks.LockHeldError` when another
        live mutator holds the directory lock.
        """
        now = self._clock() if now is None else now
        start = time.perf_counter()
        lock = DirectoryLock(
            self.directory, lease_s=self.policy.lease_s, clock=self._clock
        )
        lock.acquire()
        try:
            self._recover_locked(now, lock)
            self._sweep_deletions(now)
            live = self.store.refresh()
            plan = self._plan(live, now, force)
            if plan is None:
                self.skipped_not_due += 1
                return None
            report = self._execute(plan, lock, fault, now)
        except LockHeldError:
            raise
        except BaseException:
            self.failures += 1
            obs.counter("query.compaction_failures").inc()
            raise
        finally:
            lock.release()
        report["duration_us"] = (time.perf_counter() - start) * 1e6
        obs.counter("query.compactions").inc()
        obs.histogram("query.compaction_us").observe_us(
            report["duration_us"]
        )
        return report

    # ------------------------------------------------------------------
    def _plan(
        self, live: List[Segment], now: float, force: bool
    ) -> Optional[dict]:
        if not live:
            return None
        retention = self.policy.retention
        spans: List[_Span] = []
        for seg in live:
            per_span: Dict[int, List[tuple]] = {
                i: [] for i in range(len(seg.state.spans))
            }
            for row, span_id in zip(seg.state.rows, seg.state.row_spans):
                per_span[span_id].append(row)
            for span_id, (lo, hi) in enumerate(seg.state.spans):
                spans.append(_Span(
                    t_lo=lo, t_hi=hi, src_seq=seg.seq,
                    rows=tuple(per_span[span_id]),
                ))
        spans.sort(key=lambda s: (s.t_lo, s.t_hi, s.src_seq))
        total_bytes = 0
        for seg in live:
            try:
                total_bytes += os.path.getsize(seg.path)
            except OSError:
                pass
        total_rows = sum(len(s.rows) for s in spans)

        # -- retention: decide which (oldest-first) spans to drop ------
        keep_floor = max(0, retention.keep_spans)
        droppable = max(0, len(spans) - keep_floor)
        drop_n = 0
        if retention.max_age_s is not None:
            cutoff = now - retention.max_age_s
            while drop_n < droppable and spans[drop_n].t_hi <= cutoff:
                drop_n += 1
        if retention.max_bytes is not None and total_rows:
            per_row = max(1.0, total_bytes / max(1, total_rows))
            target_rows = retention.max_bytes / per_row
            kept_rows = total_rows - sum(
                len(spans[i].rows) for i in range(drop_n)
            )
            while drop_n < droppable and kept_rows > target_rows:
                kept_rows -= len(spans[drop_n].rows)
                drop_n += 1
        dropped, retained = spans[:drop_n], spans[drop_n:]

        over_files = (
            retention.max_segments is not None
            and len(live) > retention.max_segments
        )
        over_bytes = (
            retention.max_bytes is not None
            and total_bytes > retention.max_bytes
        )
        merge_worthy = len(live) >= self.policy.min_inputs
        due = (
            force or dropped or merge_worthy or over_files or over_bytes
        )
        if not due:
            return None
        if not dropped and len(live) <= 1:
            return None  # a single already-compacted segment: no-op
        return {
            "live": live,
            "retained": retained,
            "dropped": dropped,
            "now": now,
        }

    def _execute(
        self,
        plan: dict,
        lock: DirectoryLock,
        fault: Optional[Callable[[int], None]],
        now: float,
    ) -> dict:
        live: List[Segment] = plan["live"]
        retained: List[_Span] = plan["retained"]
        dropped: List[_Span] = plan["dropped"]
        from_gen = self.store.generation
        to_gen = from_gen + 1
        output_seq = self.store.next_seq() if retained else None

        # One monotonically increasing record count across every
        # durable step, so a crash-matrix test can sweep "kill after
        # record N" through the *whole* swap.
        progress = {"n": 0}

        def stepped():
            if fault is None:
                return None
            start = progress["n"]

            def _hook(n: int, _start=start):
                progress["n"] = max(progress["n"], _start + n)
                fault(_start + n)

            return _hook

        def point():
            progress["n"] += 1
            if fault is not None:
                fault(progress["n"])

        # 1. retired totals (cumulative: prior retirements + new drops)
        prev_retired: Optional[str] = self.store.retired_name
        retired: Optional[str] = prev_retired
        drop_rows = sum(len(s.rows) for s in dropped)
        drop_samples = sum(s.samples for s in dropped)
        if dropped and drop_rows:
            totals = dict(self.store.retired_totals())
            for span in dropped:
                for path, count, gaps, epoch in span.rows:
                    key = (tuple(path), epoch)
                    prev = totals.get(key, (0, 0))
                    totals[key] = (prev[0] + count, prev[1] + gaps)
            retired = retired_name(to_gen)
            write_retired(self.directory, to_gen, totals, fault=stepped())

        # 2. the intent journal: the swap is now declared
        intent = {
            "from_generation": from_gen,
            "to_generation": to_gen,
            "inputs": [
                [seg.seq, len(seg.rows), seg.samples] for seg in live
            ],
            "output_seq": output_seq,
            "retired": retired,
            "drop_spans": len(dropped),
            "drop_rows": drop_rows,
            "drop_samples": drop_samples,
        }
        write_journal(self.directory, intent, fault=stepped())

        # 3. the merged output segment (one span per retained input)
        output: List[Segment] = []
        if retained:
            t_lo = min(s.t_lo for s in retained)
            t_hi = max(s.t_hi for s in retained)
            newest = max(live, key=lambda s: s.seq)
            rows: List[tuple] = []
            row_spans: List[int] = []
            for span_id, span in enumerate(retained):
                for row in span.rows:
                    rows.append(row)
                    row_spans.append(span_id)
            state = SegmentState(
                t_lo=t_lo,
                t_hi=t_hi,
                fingerprint=newest.fingerprint,
                rows=tuple(rows),
                spans=tuple((s.t_lo, s.t_hi) for s in retained),
                row_spans=tuple(row_spans),
            )
            path = write_segment(
                self.directory, output_seq, state, fault=stepped()
            )
            seg = load_segment(path, output_seq)
            if seg is None:  # pragma: no cover - write+load invariant
                raise QueryError(
                    f"freshly compacted segment {path!r} failed validation"
                )
            output = [seg]

        # 4. commit — the manifest rename is the point of no return
        point()
        if not lock.still_valid():
            raise LockHeldError(
                f"directory lock on {self.directory!r} was broken "
                "mid-swap (lease expired?); aborting before commit"
            )
        input_seqs = {seg.seq for seg in live}
        tombstones = self._merge_tombstones(
            self.store.tombstones, intent["inputs"], to_gen
        )
        self._commit(to_gen, output, input_seqs, tombstones, retired)
        point()

        # 5. delete the superseded inputs (pin-aware), drop the journal
        deleted, deferred = self._sweep_deletions(now)
        try:
            os.unlink(os.path.join(self.directory, JOURNAL_NAME))
        except OSError:  # pragma: no cover - unlink raced recovery
            pass
        self._prune_retired(
            {name for name in (prev_retired, retired) if name is not None}
        )
        fsync_dir(self.directory)

        self.compactions += 1
        self.dropped_spans += len(dropped)
        self.dropped_rows += drop_rows
        self.dropped_samples += drop_samples
        if drop_rows:
            obs.counter("query.retention_dropped_rows").inc(drop_rows)
        return {
            "from_generation": from_gen,
            "to_generation": to_gen,
            "inputs": sorted(input_seqs),
            "output_seq": output_seq,
            "spans": len(retained),
            "rows": sum(len(s.rows) for s in retained),
            "dropped_spans": len(dropped),
            "dropped_rows": drop_rows,
            "dropped_samples": drop_samples,
            "deleted": deleted,
            "deferred": deferred,
        }

    # ------------------------------------------------------------------
    def _commit(
        self,
        generation: int,
        output: List[Segment],
        input_seqs: Set[int],
        tombstones: List[dict],
        retired: Optional[str],
    ) -> None:
        self.store.commit_generation(
            generation, output, input_seqs, tombstones, retired
        )

    def _merge_tombstones(
        self, existing: List[dict], inputs: List[list], generation: int
    ) -> List[dict]:
        """Old tombstones + one per merged input, pruned of ancient
        entries whose files are confirmed gone."""
        merged: List[dict] = []
        for tomb in existing:
            merged.append(dict(tomb))
        seen = {int(t["seq"]) for t in merged}
        for seq, rows, samples in inputs:
            if int(seq) in seen:
                continue
            merged.append({
                "seq": int(seq),
                "rows": int(rows),
                "samples": int(samples),
                "reason": "compacted",
                "generation": int(generation),
            })
        merged.sort(key=lambda t: int(t["seq"]))
        # Prune: only tombstones whose file is actually gone may age
        # out of the manifest; a lingering (deferred) file keeps its
        # tombstone forever so it can never be re-adopted.
        if len(merged) > _TOMBSTONE_KEEP:
            pruned: List[dict] = []
            excess = len(merged) - _TOMBSTONE_KEEP
            for tomb in merged:
                path = os.path.join(
                    self.directory, segment_name(int(tomb["seq"]))
                )
                if excess > 0 and not os.path.exists(path):
                    excess -= 1
                    continue
                pruned.append(tomb)
            merged = pruned
        return merged

    def _sweep_deletions(self, now: float) -> Tuple[int, int]:
        """Unlink tombstoned files no live reader pin still protects.

        Returns ``(deleted, deferred)`` counts; both are also pushed
        to the obs counters so deferred deletions are never silent.
        """
        tombstones = list(self.store.tombstones)
        current = self.store.generation
        if not tombstones:
            return (0, 0)
        pins = live_pins(self.directory, now=now)
        blocking = any(
            meta["generation"] < 0 or meta["generation"] < current
            for meta in pins
        )
        deleted = deferred = 0
        dirty = False
        for tomb in tombstones:
            path = os.path.join(
                self.directory, segment_name(int(tomb["seq"]))
            )
            if not os.path.exists(path):
                continue
            if blocking:
                deferred += 1
                continue
            try:
                os.unlink(path)
            except OSError:
                deferred += 1
                continue
            deleted += 1
            dirty = True
        if dirty:
            fsync_dir(self.directory)
        if deleted:
            self.deleted_files += deleted
            obs.counter("query.segments_deleted").inc(deleted)
        if deferred:
            self.deferred_deletes += deferred
            obs.counter("query.deletes_deferred").inc(deferred)
        return (deleted, deferred)

    def _prune_retired(self, keep: Set[str]) -> None:
        """Drop retired-totals files no manifest references.

        ``keep`` names what must survive: the file the just-committed
        manifest references plus the one the superseded manifest did
        (a reader refreshed just before the swap may still resolve
        that name). The referenced name is carried forward *unchanged*
        through no-drop swaps, so it can be generations older than the
        current one — pruning must go by the names themselves, never
        by generation arithmetic. Everything else, including
        uncommitted leftovers of rolled-back swaps, is deleted.
        """
        try:
            names = os.listdir(self.directory)
        except OSError:  # pragma: no cover - directory vanished
            return
        for name in names:
            if retired_generation_of(name) is None or name in keep:
                continue
            try:
                os.unlink(os.path.join(self.directory, name))
            except OSError:
                pass
