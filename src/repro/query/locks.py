"""Advisory file locks for the segment directory: writers and readers.

Two cooperating idioms, both built on POSIX ``fcntl.flock`` so the
kernel releases everything automatically when a process dies — a
SIGKILL'd compactor can never wedge the store:

* :class:`DirectoryLock` — the *exclusive* lock a mutator (compactor,
  retention sweep) must hold while it swaps generations. The lock file
  carries holder metadata (pid, acquire time, lease seconds); a
  contender that finds the lock held **and** the lease expired breaks
  it by unlinking the lock file and re-acquiring — the stale holder
  keeps its flock on an unlinked inode, which
  :meth:`DirectoryLock.still_valid` detects (the fd's inode no longer
  matches the directory entry), so a zombie that wakes up refuses to
  commit.
* :class:`SnapshotPin` — the *shared* presence marker a reader in
  another process plants before listing the directory. Each reader
  owns its own pin file (flock'd exclusively by its creator; nobody
  else ever locks it), recording the manifest generation it is
  serving. The compactor commits new generations regardless, but
  defers *deleting* superseded files while a live, unexpired pin still
  references them — deferred deletions stay tombstoned in the manifest
  (counted, never silent) and are retried on the next swap. A pin
  whose holder died is detected by a successful non-blocking flock on
  its file and reaped; a pin whose lease lapsed is broken the same way
  the directory lock is.

Locking is advisory: ``flock`` conflicts are between *open file
descriptions*, so even two handles in one process conflict — which is
what makes the semantics testable without subprocesses — while
``os.read``/``os.write`` remain unaffected. On platforms without
``fcntl`` (non-POSIX) the primitives degrade to no-ops: single-process
correctness is unchanged, only cross-process exclusion is lost.
"""

from __future__ import annotations

import errno
import json
import os
import time
from typing import List, Optional

from repro import obs
from repro.errors import QueryError

try:  # pragma: no cover - always present on the POSIX CI hosts
    import fcntl

    _HAVE_FCNTL = True
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]
    _HAVE_FCNTL = False

__all__ = [
    "DEFAULT_LEASE_S",
    "DirectoryLock",
    "LOCK_NAME",
    "LockHeldError",
    "PIN_DIR",
    "SnapshotPin",
    "live_pins",
    "pinned_generations",
]

LOCK_NAME = ".lock-compact"
PIN_DIR = ".pins"
#: Default lease: a holder that has not renewed within this many
#: seconds is presumed dead and its lock/pin may be broken.
DEFAULT_LEASE_S = 30.0

_ANY_GENERATION = -1


class LockHeldError(QueryError):
    """The directory lock is held by a live, unexpired owner."""


def _write_meta(fd: int, meta: dict) -> None:
    payload = json.dumps(meta, sort_keys=True).encode("utf-8")
    os.lseek(fd, 0, os.SEEK_SET)
    os.ftruncate(fd, 0)
    os.write(fd, payload)
    os.fsync(fd)


def _read_meta(path: str) -> Optional[dict]:
    try:
        with open(path, "rb") as fh:
            payload = fh.read()
    except OSError:
        return None
    try:
        meta = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None
    return meta if isinstance(meta, dict) else None


def _lease_expired(meta: Optional[dict], now: float) -> bool:
    """Whether ``meta``'s lease has lapsed. A parsed dict missing or
    mangling its lease fields was written by something else entirely
    and gets no lease protection. ``None`` (unreadable) metadata is
    NOT handled here — callers must apply :func:`_stale_without_meta`
    instead, because an unreadable file usually means a live holder
    between creating the file and writing its metadata."""
    if meta is None:
        return True
    try:
        acquired = float(meta["acquired_at"])
        lease = float(meta["lease_s"])
    except (KeyError, TypeError, ValueError):
        return True
    return acquired + lease <= now


def _stale_without_meta(path: str, lease_s: float) -> bool:
    """May a lock/pin file with *unreadable* metadata be broken?

    Unreadable metadata is the normal state of a live holder caught
    between creating (and flocking) the file and writing its metadata
    — breaking it then would usurp a live lock. Only a file older
    than the lease is presumed a crash-mid-create leftover. The age
    test uses the file mtime against the wall clock (an injected test
    clock has no bearing on mtimes), so a freshly created file is
    always honoured as live.
    """
    try:
        mtime = os.stat(path).st_mtime
    except OSError:
        return True  # vanished under us: nothing left to honour
    return mtime + lease_s <= time.time()


def _entry_matches(fd: int, path: str) -> bool:
    """Whether ``fd`` still *is* the directory entry at ``path``."""
    try:
        fd_stat = os.fstat(fd)
        path_stat = os.stat(path)
    except OSError:
        return False
    return (
        fd_stat.st_ino == path_stat.st_ino
        and fd_stat.st_dev == path_stat.st_dev
        and fd_stat.st_nlink > 0
    )


class DirectoryLock:
    """Exclusive advisory lock over a segment directory's mutations.

    Usage::

        lock = DirectoryLock(directory, lease_s=30.0)
        lock.acquire()          # raises LockHeldError when contended
        try:
            ...                 # mutate; call still_valid() before commit
        finally:
            lock.release()

    ``acquire`` breaks a stale lock (holder dead, or lease expired)
    automatically; the break is counted in ``query.locks_broken``.
    """

    def __init__(
        self,
        directory: str,
        lease_s: float = DEFAULT_LEASE_S,
        clock=time.time,
    ):
        if lease_s <= 0:
            raise QueryError(f"lock lease must be positive, got {lease_s}")
        self.directory = directory
        self.path = os.path.join(directory, LOCK_NAME)
        self.lease_s = float(lease_s)
        self._clock = clock
        self._fd: Optional[int] = None

    @property
    def held(self) -> bool:
        return self._fd is not None

    def acquire(self, attempts: int = 4) -> "DirectoryLock":
        """Take the lock or raise :class:`LockHeldError`.

        The create/flock/verify loop guards the break race: two
        contenders may both unlink an expired lock, but each verifies
        after flocking that its fd is still the live directory entry
        and retries otherwise — exactly one wins.
        """
        if self._fd is not None:
            return self
        if not _HAVE_FCNTL:  # pragma: no cover - non-POSIX fallback
            self._fd = -1
            return self
        os.makedirs(self.directory, exist_ok=True)
        failure: Optional[dict] = None
        for _ in range(max(1, attempts)):
            fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError as exc:
                os.close(fd)
                if exc.errno not in (errno.EAGAIN, errno.EACCES):
                    raise
                failure = _read_meta(self.path)
                if failure is None:
                    expired = _stale_without_meta(self.path, self.lease_s)
                else:
                    expired = _lease_expired(failure, self._clock())
                if expired:
                    # Stale holder: break the lock by retiring its
                    # directory entry. The holder keeps its flock on
                    # the unlinked inode and will fail still_valid().
                    try:
                        os.unlink(self.path)
                    except OSError:
                        pass
                    obs.counter("query.locks_broken").inc()
                    continue
                holder = (
                    f"pid {failure.get('pid')} (lease not expired)"
                    if failure is not None
                    else "a holder still writing its metadata"
                )
                raise LockHeldError(
                    f"segment directory {self.directory!r} is locked by "
                    f"{holder}"
                )
            if not _entry_matches(fd, self.path):
                # We flocked an inode another contender already broke.
                os.close(fd)
                continue
            _write_meta(fd, {
                "pid": os.getpid(),
                "acquired_at": self._clock(),
                "lease_s": self.lease_s,
            })
            self._fd = fd
            obs.counter("query.locks_acquired").inc()
            return self
        raise LockHeldError(
            f"segment directory {self.directory!r} lock: could not win "
            f"the break race in {attempts} attempts"
        )

    def renew(self) -> None:
        """Refresh the lease; call between long phases of a swap."""
        if self._fd is None or self._fd < 0:
            return
        _write_meta(self._fd, {
            "pid": os.getpid(),
            "acquired_at": self._clock(),
            "lease_s": self.lease_s,
        })

    def still_valid(self) -> bool:
        """Whether this process still owns the live lock file.

        A holder whose lease expired and whose lock was broken by a
        contender sees ``False`` here (its fd points at an unlinked or
        replaced inode) and must abandon its swap instead of
        committing over the usurper's.
        """
        if self._fd is None:
            return False
        if self._fd < 0:  # pragma: no cover - non-POSIX fallback
            return True
        return _entry_matches(self._fd, self.path)

    def release(self) -> None:
        if self._fd is None:
            return
        fd, self._fd = self._fd, None
        if fd < 0:  # pragma: no cover - non-POSIX fallback
            return
        if _entry_matches(fd, self.path):
            try:
                os.unlink(self.path)
            except OSError:
                pass
        os.close(fd)  # closing drops the flock

    def __enter__(self) -> "DirectoryLock":
        return self.acquire()

    def __exit__(self, *_exc) -> None:
        self.release()


class SnapshotPin:
    """A reader's presence marker: "I am serving generation G".

    The pin is a per-reader file under ``<dir>/.pins/`` that the
    reader creates and flocks exclusively; the generation it records
    tells the compactor which superseded files must survive until the
    reader refreshes or its lease lapses. ``generation=-1`` (the state
    between planting the pin and finishing the first refresh) pins
    *everything*.
    """

    def __init__(
        self,
        directory: str,
        lease_s: float = DEFAULT_LEASE_S,
        clock=time.time,
    ):
        if lease_s <= 0:
            raise QueryError(f"pin lease must be positive, got {lease_s}")
        self.directory = directory
        self.pin_dir = os.path.join(directory, PIN_DIR)
        self.lease_s = float(lease_s)
        self.generation = _ANY_GENERATION
        self._clock = clock
        self._fd: Optional[int] = None
        self.path: Optional[str] = None

    @property
    def held(self) -> bool:
        return self._fd is not None

    def acquire(self) -> "SnapshotPin":
        if self._fd is not None:
            return self
        os.makedirs(self.pin_dir, exist_ok=True)
        name = f"pin-{os.getpid()}-{id(self):x}"
        path = os.path.join(self.pin_dir, name)
        fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        if _HAVE_FCNTL:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        self._fd = fd
        self.path = path
        self._write()
        obs.counter("query.pins_acquired").inc()
        return self

    def _write(self) -> None:
        assert self._fd is not None
        _write_meta(self._fd, {
            "pid": os.getpid(),
            "acquired_at": self._clock(),
            "lease_s": self.lease_s,
            "generation": self.generation,
        })

    def renew(self, generation: Optional[int] = None) -> None:
        """Refresh the lease and (optionally) move to a generation.

        Readers call this after every refresh: the pin then stops
        protecting files the reader no longer serves.
        """
        if generation is not None:
            self.generation = int(generation)
        if self._fd is not None:
            self._write()

    def still_valid(self) -> bool:
        """False once the pin was broken (lease lapsed, file reaped)."""
        if self._fd is None or self.path is None:
            return False
        return _entry_matches(self._fd, self.path)

    def release(self) -> None:
        if self._fd is None:
            return
        fd, self._fd = self._fd, None
        if self.path is not None and _entry_matches(fd, self.path):
            try:
                os.unlink(self.path)
            except OSError:
                pass
        os.close(fd)
        self.path = None

    def __enter__(self) -> "SnapshotPin":
        return self.acquire()

    def __exit__(self, *_exc) -> None:
        self.release()


def live_pins(directory: str, now: Optional[float] = None) -> List[dict]:
    """Scan ``<dir>/.pins/`` and return the pins that still protect.

    Side effects, both counted: a pin whose holder died (its file
    flocks successfully) is reaped (``query.pins_reaped``); a pin
    whose lease lapsed is broken like a stale directory lock
    (``query.pins_broken``). What remains is the list of metadata
    dicts — ``generation`` of -1 means "pins everything".
    """
    pin_dir = os.path.join(directory, PIN_DIR)
    try:
        names = sorted(os.listdir(pin_dir))
    except OSError:
        return []
    now = time.time() if now is None else now
    live: List[dict] = []
    for name in names:
        path = os.path.join(pin_dir, name)
        meta = _read_meta(path)
        if _HAVE_FCNTL:
            try:
                probe = os.open(path, os.O_RDWR)
            except OSError:
                continue  # vanished under us: released concurrently
            try:
                fcntl.flock(probe, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                pass  # still flocked: the holder process is alive
            else:
                # Nobody holds the flock — the reader died or released
                # without unlinking. Reap the leftover.
                os.close(probe)
                try:
                    os.unlink(path)
                except OSError:
                    pass
                obs.counter("query.pins_reaped").inc()
                continue
            os.close(probe)
        if meta is None:
            # Flocked (holder alive) but metadata not yet written: the
            # reader is mid-acquire. Honour it as pinning everything
            # unless the file is older than any plausible lease.
            if _stale_without_meta(path, DEFAULT_LEASE_S):
                try:
                    os.unlink(path)
                except OSError:
                    pass
                obs.counter("query.pins_broken").inc()
                continue
            live.append({"generation": _ANY_GENERATION})
            continue
        if _lease_expired(meta, now):
            try:
                os.unlink(path)
            except OSError:
                pass
            obs.counter("query.pins_broken").inc()
            continue
        try:
            meta = dict(meta)  # type: ignore[arg-type]
            meta["generation"] = int(meta.get("generation", _ANY_GENERATION))
        except (TypeError, ValueError):
            meta = {"generation": _ANY_GENERATION}
        live.append(meta)
    return live


def pinned_generations(directory: str, now: Optional[float] = None):
    """The set of generations live pins reference (-1 = everything)."""
    return {meta["generation"] for meta in live_pins(directory, now=now)}
