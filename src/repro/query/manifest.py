"""``manifest.dpqm`` + :class:`SegmentStore`: the segment directory.

The manifest is a small checksummed file mapping time windows to
segment files — the thing recovery *replays* to know what the query
store contained before a crash. It is a **cache of the truth, never
the truth itself**: every entry is verified against the segment file
on disk before it is served, orphan segments (written in the gap
between a segment rename and the manifest rewrite — exactly where a
crash can land) are adopted from a directory scan, and stale entries
whose file is gone or invalid are dropped. A missing, torn, or
**newer-versioned** manifest (forward compatibility: a future writer
may know things this reader does not) degrades to a full scan,
counted in ``query.manifest_fallbacks`` — never to wrong answers.

Manifest format, same record discipline as segments/checkpoints::

    header    {"kind": "manifest", "version": 2, "segments": N,
               "generation": G, "tombstones": M, "retired": name|null}
    segment   {"kind": "segment", "seq", "t_lo", "t_hi", "rows",
               "samples", "fingerprint"}   (one per live segment)
    tombstone {"kind": "tombstone", "seq", "rows", "samples",
               "reason", "generation"}     (one per counted deletion)
    footer    {"kind": "footer", "records": N+M+2}

Version 2 (this PR) adds the **generation** — a monotonically
increasing counter bumped by every compaction/retention swap — plus
**tombstones**: counted records of segments the compactor merged away
or retention deleted. A tombstoned seq whose file still exists (its
deletion was deferred for a pinned reader, or the deleting process
died first) is *not* re-adopted by the scan; nothing is ever deleted
silently. Version-1 manifests load as generation 0 with no
tombstones.

:class:`SegmentStore` is the single writer/reader of one directory:
``append`` assigns the next sequence number, writes the segment
durably, then rewrites the manifest (temp/fsync/rename/dir-fsync);
``refresh`` replays manifest + scan into the validated, seq-ordered
segment list the :class:`~repro.query.engine.QueryEngine` queries,
quarantining any segment a pending compaction intent journal names as
its uncommitted output (see :mod:`repro.query.compact`).
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import QueryError
from repro.query.segment import (
    Segment,
    SegmentState,
    load_segment,
    sequence_of,
    write_segment,
)
from repro.resilience.checkpoint import (
    fsync_dir,
    parse_record_line,
    record_line,
)

__all__ = [
    "MANIFEST_VERSION",
    "CompositeSegmentStore",
    "SegmentStore",
    "load_manifest",
    "load_manifest_info",
    "write_manifest",
]

MANIFEST_VERSION = 2
MANIFEST_NAME = "manifest.dpqm"
_TMP_MANIFEST = ".tmp-manifest"
#: Tombstones kept in the manifest once their file is confirmed gone.
#: (A tombstone whose file still exists is never pruned.)
_TOMBSTONE_KEEP = 64


def write_manifest(
    directory: str,
    segments: List[Segment],
    generation: int = 0,
    tombstones: Sequence[dict] = (),
    retired: Optional[str] = None,
) -> str:
    """Atomically (re)write the manifest describing ``segments``.

    The rename of the temp file onto ``manifest.dpqm`` is the *commit
    point* of a generation swap: a crash anywhere before it leaves the
    previous manifest (old generation) intact, a crash anywhere after
    it leaves the new one — never a blend.
    """
    final = os.path.join(directory, MANIFEST_NAME)
    tmp = os.path.join(directory, f"{_TMP_MANIFEST}-{os.getpid()}")
    tombs = list(tombstones)
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(record_line({
            "kind": "manifest",
            "version": MANIFEST_VERSION,
            "segments": len(segments),
            "generation": int(generation),
            "tombstones": len(tombs),
            "retired": retired,
        }))
        for seg in segments:
            fh.write(record_line({
                "kind": "segment",
                "seq": seg.seq,
                "t_lo": seg.t_lo,
                "t_hi": seg.t_hi,
                "rows": len(seg.rows),
                "samples": seg.samples,
                "fingerprint": seg.fingerprint,
            }))
        for tomb in tombs:
            payload = {"kind": "tombstone"}
            payload.update(tomb)
            fh.write(record_line(payload))
        fh.write(record_line({
            "kind": "footer",
            "records": len(segments) + len(tombs) + 2,
        }))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, final)
    fsync_dir(directory)
    return final


def load_manifest_info(directory: str) -> Optional[dict]:
    """The full parsed manifest, or None when it cannot be trusted.

    None means "fall back to a directory scan": file missing, any line
    torn or checksum-failed, header/footer malformed, or — the forward
    compatibility stub — a version newer than this reader understands.
    Returns ``{"version", "generation", "entries", "tombstones",
    "retired"}``; version-1 files yield generation 0, no tombstones.
    """
    path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
    except (OSError, UnicodeDecodeError):
        return None
    if not lines:
        return None
    header = parse_record_line(lines[0])
    if header is None or header.get("kind") != "manifest":
        return None
    version = header.get("version")
    if not isinstance(version, int) or version < 1:
        return None
    if version > MANIFEST_VERSION:
        # Forward-compat: written by a newer repro. The segments
        # themselves are still individually validated, so scanning the
        # directory serves correct (if uncached) answers.
        return None
    generation = header.get("generation", 0) if version >= 2 else 0
    if not isinstance(generation, int) or generation < 0:
        return None
    retired = header.get("retired") if version >= 2 else None
    if retired is not None and not isinstance(retired, str):
        return None
    entries: List[dict] = []
    tombstones: List[dict] = []
    footer = None
    for line in lines[1:]:
        payload = parse_record_line(line)
        if payload is None:
            return None
        if footer is not None:
            return None
        kind = payload.get("kind")
        if kind == "segment":
            if not isinstance(payload.get("seq"), int):
                return None
            entries.append(payload)
        elif kind == "tombstone":
            if version < 2:
                return None  # a v1 manifest has no tombstones
            if not isinstance(payload.get("seq"), int):
                return None
            tombstones.append(payload)
        elif kind == "footer":
            footer = payload
        else:
            return None
    if footer is None or footer.get("records") != len(lines):
        return None
    if header.get("segments") != len(entries):
        return None
    if version >= 2 and header.get("tombstones") != len(tombstones):
        return None
    return {
        "version": version,
        "generation": generation,
        "entries": entries,
        "tombstones": tombstones,
        "retired": retired,
    }


def load_manifest(directory: str) -> Optional[List[dict]]:
    """The manifest's segment entries, or None when it cannot be trusted."""
    info = load_manifest_info(directory)
    return None if info is None else list(info["entries"])


class SegmentStore:
    """All segments of one directory: durable append + validated reads."""

    def __init__(self, directory: str):
        self.directory = directory
        self._lock = threading.Lock()
        self._segments: Optional[List[Segment]] = None
        self.rejected = 0
        self.manifest_fallbacks = 0
        self.generation = 0
        self.tombstones: List[dict] = []
        self.retired_name: Optional[str] = None
        self.tombstone_skips = 0
        self.quarantined = 0
        self._retired_cache: Optional[Tuple[Optional[str], dict]] = None
        os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------------
    def _listing(self) -> List[tuple]:
        out = []
        for name in os.listdir(self.directory):
            seq = sequence_of(name)
            if seq is not None:
                out.append((seq, os.path.join(self.directory, name)))
        return sorted(out)

    def next_seq(self) -> int:
        """The next unused sequence number (counts invalid, tombstoned
        and quarantined files too, so a rejected segment's number is
        never reused for different bytes)."""
        with self._lock:
            return self._next_seq_locked()

    def _next_seq_locked(self) -> int:
        listing = self._listing()
        highest = listing[-1][0] if listing else 0
        for tomb in self.tombstones:
            highest = max(highest, int(tomb.get("seq", 0)))
        return highest + 1

    # ------------------------------------------------------------------
    def refresh(self) -> List[Segment]:
        """Replay the manifest (verified against disk) into segments.

        Every served segment is fully validated regardless of what the
        manifest claims; the manifest only tells us what *should* be
        there, so drift (stale entries, orphan segments, corrupt files)
        is observable in the counters rather than silent.

        Consistency under a concurrent generation swap: files named by
        tombstones (deletions, possibly deferred) and by a pending
        compaction intent journal (an uncommitted output) are skipped,
        and the whole replay is retried when the manifest generation
        moved while we were reading — the result is always *one*
        generation's view, never a blend.
        """
        with self._lock:
            return self._refresh_locked()

    def _refresh_locked(self, attempts: int = 3) -> List[Segment]:
        from repro.query.compact import journal_quarantine

        last: List[Segment] = []
        for _ in range(max(1, attempts)):
            info = load_manifest_info(self.directory)
            if info is None:
                self.manifest_fallbacks += 1
                obs.counter("query.manifest_fallbacks").inc()
                generation: Optional[int] = None
            else:
                generation = info["generation"]
                self.generation = generation
                self.tombstones = list(info["tombstones"])
                self.retired_name = info["retired"]
            skip = journal_quarantine(self.directory, generation)
            dead = {int(t["seq"]) for t in self.tombstones}
            listing = self._listing()
            segments: List[Segment] = []
            for seq, path in listing:
                if seq in dead:
                    # A deferred (or crashed-mid-delete) deletion: the
                    # manifest already counted this file out.
                    self.tombstone_skips += 1
                    obs.counter("query.tombstone_skips").inc()
                    continue
                if seq in skip:
                    self.quarantined += 1
                    obs.counter("query.segments_quarantined").inc()
                    continue
                seg = load_segment(path, seq)
                if seg is None:
                    self.rejected += 1
                    obs.counter("query.segments_rejected").inc()
                    continue
                segments.append(seg)
            after = load_manifest_info(self.directory)
            if info is not None and after is not None and (
                after["generation"] != info["generation"]
            ):
                # A compactor committed a swap while we were loading;
                # what we assembled may blend generations. Replay.
                obs.counter("query.refresh_retries").inc()
                last = segments
                continue
            self._segments = segments
            self._retired_cache = None
            obs.gauge("query.segments").set(len(segments))
            obs.gauge("query.segment_rows").set(
                sum(len(s.rows) for s in segments)
            )
            return list(segments)
        self._segments = last  # pragma: no cover - pathological churn
        return list(last)

    def segments(self) -> List[Segment]:
        """The validated segments (cached; ``refresh()`` to reload)."""
        with self._lock:
            cached = self._segments
        if cached is None:
            return self.refresh()
        return list(cached)

    # ------------------------------------------------------------------
    def retired_totals(self) -> Dict[tuple, Tuple[int, int]]:
        """Cumulative ``{(path, epoch): (count, gaps)}`` retention
        deleted from this directory — what reconciliation must add to
        the live rows so recovered writers do not re-emit history that
        was deliberately aged out. Empty when nothing was retired."""
        with self._lock:
            name = self.retired_name
            cached = self._retired_cache
            if cached is not None and cached[0] == name:
                return dict(cached[1])
        from repro.query.compact import load_retired

        totals: Dict[tuple, Tuple[int, int]] = {}
        if name is not None:
            loaded = load_retired(os.path.join(self.directory, name))
            if loaded is None:
                obs.counter("query.retired_rejected").inc()
            else:
                totals = loaded
        with self._lock:
            self._retired_cache = (name, dict(totals))
        return totals

    # ------------------------------------------------------------------
    def append(
        self,
        state: SegmentState,
        fault: Optional[Callable[[int], None]] = None,
    ) -> str:
        """Durably write ``state`` as the next segment; returns its path.

        Order matters for crash safety: the segment file lands first
        (rename + dir fsync), the manifest rewrite second — a crash
        between the two leaves an orphan segment that ``refresh()``
        adopts from the scan. The rewrite carries the current
        generation, tombstones and retired-totals reference forward
        unchanged: appending never performs (or un-does) a swap.

        A generation swap committed by *another process* (e.g. the
        ``query --compact`` CLI run against a live service's
        directory) since our last refresh is detected by re-reading
        the on-disk manifest before the rewrite, and adopted — the
        rewrite then carries the swap's generation, tombstones and
        retired reference instead of resurrecting its merged-away
        inputs. The detect-then-rewrite window cannot be fully closed
        without holding the :class:`~repro.query.locks.DirectoryLock`
        across every append, so appender and compactor should share a
        process where possible; the cross-process CLI path is a
        narrow-window best effort.
        """
        with self._lock:
            if self._segments is None:
                # First touch: learn the directory's generation and
                # tombstones before rewriting the manifest over them.
                self._refresh_locked()
            seq = self._next_seq_locked()
            path = write_segment(self.directory, seq, state, fault=fault)
            seg = load_segment(path, seq)
            if seg is None:  # pragma: no cover - write+load invariant
                raise QueryError(
                    f"freshly written segment {path!r} failed validation"
                )
            if self._segments is None:  # pragma: no cover - refreshed above
                self._segments = []
            info = load_manifest_info(self.directory)
            if info is not None and info["generation"] != self.generation:
                # Another process swapped generations under us. Replay
                # the directory (the segment just written is adopted
                # from the scan like any orphan) so the rewrite below
                # publishes *their* generation, tombstones and retired
                # reference plus our new segment — not our stale view.
                obs.counter("query.append_swap_adoptions").inc()
                self._refresh_locked()
            else:
                self._segments.append(seg)
            write_manifest(
                self.directory,
                self._segments,
                generation=self.generation,
                tombstones=self.tombstones,
                retired=self.retired_name,
            )
            obs.gauge("query.segments").set(len(self._segments))
            obs.gauge("query.segment_rows").set(
                sum(len(s.rows) for s in self._segments)
            )
            return path

    # ------------------------------------------------------------------
    def commit_generation(
        self,
        generation: int,
        add_segments: List[Segment],
        drop_seqs,
        tombstones: Sequence[dict],
        retired: Optional[str],
    ) -> List[Segment]:
        """Publish a generation swap (the compactor's commit point).

        Runs under the store lock so an ingest thread's concurrent
        ``append`` cannot interleave with the manifest rewrite: any
        segment appended mid-swap survives into the new manifest, and
        any append after this call carries the new generation and
        tombstones forward. The manifest rename inside is the swap's
        atomic commit.
        """
        with self._lock:
            drop = {int(s) for s in drop_seqs}
            dead = {int(t["seq"]) for t in tombstones}
            survivors: List[Segment] = list(add_segments)
            have = {seg.seq for seg in survivors}
            cached = self._segments
            if cached is None:
                cached = []
                for seq, path in self._listing():
                    if seq in drop or seq in dead or seq in have:
                        continue
                    seg = load_segment(path, seq)
                    if seg is not None:
                        cached.append(seg)
            for seg in cached:
                if seg.seq in drop or seg.seq in dead or seg.seq in have:
                    continue
                survivors.append(seg)
                have.add(seg.seq)
            survivors.sort(key=lambda s: s.seq)
            write_manifest(
                self.directory,
                survivors,
                generation=int(generation),
                tombstones=tombstones,
                retired=retired,
            )
            self.generation = int(generation)
            self.tombstones = list(tombstones)
            self.retired_name = retired
            self._segments = survivors
            self._retired_cache = None
            obs.gauge("query.segments").set(len(survivors))
            obs.gauge("query.segment_rows").set(
                sum(len(s.rows) for s in survivors)
            )
            return list(survivors)

    def stats(self) -> dict:
        with self._lock:
            segments = self._segments or []
            return {
                "directory": self.directory,
                "segments": len(segments),
                "rows": sum(len(s.rows) for s in segments),
                "samples": sum(s.samples for s in segments),
                "rejected": self.rejected,
                "manifest_fallbacks": self.manifest_fallbacks,
                "generation": self.generation,
                "tombstones": len(self.tombstones),
                "tombstone_skips": self.tombstone_skips,
                "quarantined": self.quarantined,
                "retired": self.retired_name,
            }


class CompositeSegmentStore:
    """A read-only union of several :class:`SegmentStore` directories.

    The multi-process topology writes one store per decode worker (plus
    the parent's); queries must see them as one segment set.  Segment
    deltas are order-independent sums, so the union is served as a
    plain concatenation — re-sorted by ``(t_lo, seq, directory)`` so
    listings are deterministic across refreshes.  ``append`` is
    deliberately absent: each store keeps its single writer.
    """

    def __init__(self, stores: List[SegmentStore]):
        if not stores:
            raise QueryError("CompositeSegmentStore needs at least one store")
        self.stores = list(stores)
        self.directory = [store.directory for store in self.stores]

    def refresh(self) -> List[Segment]:
        segments: List[Segment] = []
        for store in self.stores:
            segments.extend(store.refresh())
        return self._ordered(segments)

    def segments(self) -> List[Segment]:
        segments: List[Segment] = []
        for store in self.stores:
            segments.extend(store.segments())
        return self._ordered(segments)

    @staticmethod
    def _ordered(segments: List[Segment]) -> List[Segment]:
        return sorted(
            segments, key=lambda s: (s.t_lo, s.seq, os.path.dirname(s.path))
        )

    def stats(self) -> dict:
        parts = [store.stats() for store in self.stores]
        return {
            "directory": self.directory,
            "stores": parts,
            "segments": sum(p["segments"] for p in parts),
            "rows": sum(p["rows"] for p in parts),
            "samples": sum(p["samples"] for p in parts),
            "rejected": sum(p["rejected"] for p in parts),
            "manifest_fallbacks": sum(
                p["manifest_fallbacks"] for p in parts
            ),
        }
