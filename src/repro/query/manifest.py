"""``manifest.dpqm`` + :class:`SegmentStore`: the segment directory.

The manifest is a small checksummed file mapping time windows to
segment files — the thing recovery *replays* to know what the query
store contained before a crash. It is a **cache of the truth, never
the truth itself**: every entry is verified against the segment file
on disk before it is served, orphan segments (written in the gap
between a segment rename and the manifest rewrite — exactly where a
crash can land) are adopted from a directory scan, and stale entries
whose file is gone or invalid are dropped. A missing, torn, or
**newer-versioned** manifest (forward compatibility: a future writer
may know things this reader does not) degrades to a full scan,
counted in ``query.manifest_fallbacks`` — never to wrong answers.

Manifest format, same record discipline as segments/checkpoints::

    header  {"kind": "manifest", "version": 1, "segments": N}
    segment {"kind": "segment", "seq", "t_lo", "t_hi", "rows",
             "samples", "fingerprint"}   (one per live segment)
    footer  {"kind": "footer", "records": N+2}

:class:`SegmentStore` is the single writer/reader of one directory:
``append`` assigns the next sequence number, writes the segment
durably, then rewrites the manifest (temp/fsync/rename/dir-fsync);
``refresh`` replays manifest + scan into the validated, seq-ordered
segment list the :class:`~repro.query.engine.QueryEngine` queries.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, List, Optional

from repro import obs
from repro.errors import QueryError
from repro.query.segment import (
    Segment,
    SegmentState,
    load_segment,
    sequence_of,
    write_segment,
)
from repro.resilience.checkpoint import (
    fsync_dir,
    parse_record_line,
    record_line,
)

__all__ = [
    "MANIFEST_VERSION",
    "CompositeSegmentStore",
    "SegmentStore",
    "load_manifest",
    "write_manifest",
]

MANIFEST_VERSION = 1
MANIFEST_NAME = "manifest.dpqm"
_TMP_MANIFEST = ".tmp-manifest"


def write_manifest(directory: str, segments: List[Segment]) -> str:
    """Atomically (re)write the manifest describing ``segments``."""
    final = os.path.join(directory, MANIFEST_NAME)
    tmp = os.path.join(directory, f"{_TMP_MANIFEST}-{os.getpid()}")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(record_line({
            "kind": "manifest",
            "version": MANIFEST_VERSION,
            "segments": len(segments),
        }))
        for seg in segments:
            fh.write(record_line({
                "kind": "segment",
                "seq": seg.seq,
                "t_lo": seg.t_lo,
                "t_hi": seg.t_hi,
                "rows": len(seg.rows),
                "samples": seg.samples,
                "fingerprint": seg.fingerprint,
            }))
        fh.write(record_line({"kind": "footer", "records": len(segments) + 2}))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, final)
    fsync_dir(directory)
    return final


def load_manifest(directory: str) -> Optional[List[dict]]:
    """The manifest's segment entries, or None when it cannot be trusted.

    None means "fall back to a directory scan": file missing, any line
    torn or checksum-failed, header/footer malformed, or — the forward
    compatibility stub — a version newer than this reader understands.
    """
    path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
    except (OSError, UnicodeDecodeError):
        return None
    if not lines:
        return None
    header = parse_record_line(lines[0])
    if header is None or header.get("kind") != "manifest":
        return None
    version = header.get("version")
    if not isinstance(version, int) or version < 1:
        return None
    if version > MANIFEST_VERSION:
        # Forward-compat: written by a newer repro. The segments
        # themselves are still individually validated, so scanning the
        # directory serves correct (if uncached) answers.
        return None
    entries: List[dict] = []
    footer = None
    for line in lines[1:]:
        payload = parse_record_line(line)
        if payload is None:
            return None
        if footer is not None:
            return None
        kind = payload.get("kind")
        if kind == "segment":
            if not isinstance(payload.get("seq"), int):
                return None
            entries.append(payload)
        elif kind == "footer":
            footer = payload
        else:
            return None
    if footer is None or footer.get("records") != len(lines):
        return None
    if header.get("segments") != len(entries):
        return None
    return entries


class SegmentStore:
    """All segments of one directory: durable append + validated reads."""

    def __init__(self, directory: str):
        self.directory = directory
        self._lock = threading.Lock()
        self._segments: Optional[List[Segment]] = None
        self.rejected = 0
        self.manifest_fallbacks = 0
        os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------------
    def _listing(self) -> List[tuple]:
        out = []
        for name in os.listdir(self.directory):
            seq = sequence_of(name)
            if seq is not None:
                out.append((seq, os.path.join(self.directory, name)))
        return sorted(out)

    def next_seq(self) -> int:
        """The next unused sequence number (counts invalid files too,
        so a rejected segment's number is never reused for different
        bytes)."""
        with self._lock:
            listing = self._listing()
            return (listing[-1][0] + 1) if listing else 1

    # ------------------------------------------------------------------
    def refresh(self) -> List[Segment]:
        """Replay the manifest (verified against disk) into segments.

        Every served segment is fully validated regardless of what the
        manifest claims; the manifest only tells us what *should* be
        there, so drift (stale entries, orphan segments, corrupt files)
        is observable in the counters rather than silent.
        """
        with self._lock:
            manifest = load_manifest(self.directory)
            if manifest is None:
                self.manifest_fallbacks += 1
                obs.counter("query.manifest_fallbacks").inc()
            listing = self._listing()
            segments: List[Segment] = []
            for seq, path in listing:
                seg = load_segment(path, seq)
                if seg is None:
                    self.rejected += 1
                    obs.counter("query.segments_rejected").inc()
                    continue
                segments.append(seg)
            self._segments = segments
            obs.gauge("query.segments").set(len(segments))
            obs.gauge("query.segment_rows").set(
                sum(len(s.rows) for s in segments)
            )
            return list(segments)

    def segments(self) -> List[Segment]:
        """The validated segments (cached; ``refresh()`` to reload)."""
        with self._lock:
            cached = self._segments
        if cached is None:
            return self.refresh()
        return list(cached)

    # ------------------------------------------------------------------
    def append(
        self,
        state: SegmentState,
        fault: Optional[Callable[[int], None]] = None,
    ) -> str:
        """Durably write ``state`` as the next segment; returns its path.

        Order matters for crash safety: the segment file lands first
        (rename + dir fsync), the manifest rewrite second — a crash
        between the two leaves an orphan segment that ``refresh()``
        adopts from the scan.
        """
        with self._lock:
            listing = self._listing()
            seq = (listing[-1][0] + 1) if listing else 1
            path = write_segment(self.directory, seq, state, fault=fault)
            seg = load_segment(path, seq)
            if seg is None:  # pragma: no cover - write+load invariant
                raise QueryError(
                    f"freshly written segment {path!r} failed validation"
                )
            if self._segments is None:
                self._segments = []
            self._segments.append(seg)
            write_manifest(self.directory, self._segments)
            obs.gauge("query.segments").set(len(self._segments))
            obs.gauge("query.segment_rows").set(
                sum(len(s.rows) for s in self._segments)
            )
            return path

    def stats(self) -> dict:
        with self._lock:
            segments = self._segments or []
            return {
                "directory": self.directory,
                "segments": len(segments),
                "rows": sum(len(s.rows) for s in segments),
                "samples": sum(s.samples for s in segments),
                "rejected": self.rejected,
                "manifest_fallbacks": self.manifest_fallbacks,
            }


class CompositeSegmentStore:
    """A read-only union of several :class:`SegmentStore` directories.

    The multi-process topology writes one store per decode worker (plus
    the parent's); queries must see them as one segment set.  Segment
    deltas are order-independent sums, so the union is served as a
    plain concatenation — re-sorted by ``(t_lo, seq, directory)`` so
    listings are deterministic across refreshes.  ``append`` is
    deliberately absent: each store keeps its single writer.
    """

    def __init__(self, stores: List[SegmentStore]):
        if not stores:
            raise QueryError("CompositeSegmentStore needs at least one store")
        self.stores = list(stores)
        self.directory = [store.directory for store in self.stores]

    def refresh(self) -> List[Segment]:
        segments: List[Segment] = []
        for store in self.stores:
            segments.extend(store.refresh())
        return self._ordered(segments)

    def segments(self) -> List[Segment]:
        segments: List[Segment] = []
        for store in self.stores:
            segments.extend(store.segments())
        return self._ordered(segments)

    @staticmethod
    def _ordered(segments: List[Segment]) -> List[Segment]:
        return sorted(
            segments, key=lambda s: (s.t_lo, s.seq, os.path.dirname(s.path))
        )

    def stats(self) -> dict:
        parts = [store.stats() for store in self.stores]
        return {
            "directory": self.directory,
            "stores": parts,
            "segments": sum(p["segments"] for p in parts),
            "rows": sum(p["rows"] for p in parts),
            "samples": sum(p["samples"] for p in parts),
            "rejected": sum(p["rejected"] for p in parts),
            "manifest_fallbacks": sum(
                p["manifest_fallbacks"] for p in parts
            ),
        }
