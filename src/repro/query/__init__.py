"""``repro.query`` — a durable, indexed context-analytics store.

The paper makes calling contexts cheap enough to *collect at scale and
analyze later*; this package is the "later". Retained context counts
are promoted out of process memory into an **append-only segment
store**: each flush of the aggregation tree writes one immutable
``seg-NNNNNNNN.dpqs`` file covering a wall-clock window, using the
PR 5 checkpoint durability discipline (per-record CRC32 lines,
write-temp → fsync → rename → directory-fsync, newest-valid
selection) plus an embedded **inverted index** (function → context
rows) verified on load. A ``manifest.dpqm`` caches the time-window →
segment map; a missing, torn, or newer-versioned manifest degrades to
a full directory scan, never to wrong answers.

On top of the segments, :class:`~repro.query.engine.QueryEngine`
answers the questions a fleet of developers actually asks of a context
store bigger than any one process (per the Android-scale call-path
literature):

* time-windowed **top-K** hottest contexts;
* **window-vs-window diff** — "what contexts appeared after the hot
  swap?";
* per-function **rollups** (inclusive and leaf-only);
* **paths through** one function, served by the inverted index;
* **flame-graph export** in the folded-stack format (round-trippable);
* **UCP forensics** joining dead-letter triage records to the
  :class:`~repro.analysis.incremental.GraphDelta` epoch that explains
  them.

Because segments are immutable files, every query answer is
reproducible after a crash: the chaos harness asserts byte-identical
pre-crash / post-recover answers (see ``python -m repro chaos``).

Unbounded runs stay bounded: :class:`~repro.query.compact.Compactor`
merges accumulated delta segments into one cumulative multi-span
segment (byte-identical answers, fewer files) and enforces a
:class:`~repro.query.compact.RetentionPolicy`
(max_segments/max_bytes/max_age caps, counted tombstoned deletions)
— every swap journaled so a SIGKILL at any byte leaves either the old
generation or the new one, never a mix. Cross-process readers pin the
generation they serve via the advisory locks in
:mod:`repro.query.locks` (``fcntl`` leases with stale-lock breaking)
and keep answering while the compactor swaps generations under them.

Wiring::

    cfg = ServiceConfig(workers=2, segment_dir="segments/")
    service = ContextService(plan, cfg).start()
    ...ingest...
    service.flush_segments()      # or let CheckpointDaemon do it
    q = service.query()
    q.top_contexts(10, window=(t0, t1))
    q.diff((t0, t1), (t1, t2))
    open("profile.folded", "w").write(q.flamegraph())

Everything reports under the ``query.*`` metric namespace via
:mod:`repro.obs`. See ``docs/QUERY.md`` for the file formats and a
query cookbook.
"""

from __future__ import annotations

from repro.query.compact import (
    CompactionPolicy,
    Compactor,
    RetentionPolicy,
)
from repro.query.engine import QueryEngine, WindowDiff, ucp_forensics
from repro.query.flamegraph import from_folded, to_folded
from repro.query.locks import DirectoryLock, LockHeldError, SnapshotPin
from repro.query.manifest import SegmentStore, load_manifest, write_manifest
from repro.query.segment import (
    Segment,
    SegmentState,
    load_segment,
    segment_name,
    write_segment,
)
from repro.query.writer import SegmentWriter

__all__ = [
    "CompactionPolicy",
    "Compactor",
    "DirectoryLock",
    "LockHeldError",
    "QueryEngine",
    "RetentionPolicy",
    "Segment",
    "SegmentState",
    "SegmentStore",
    "SegmentWriter",
    "SnapshotPin",
    "WindowDiff",
    "from_folded",
    "load_manifest",
    "load_segment",
    "segment_name",
    "to_folded",
    "ucp_forensics",
    "write_manifest",
    "write_segment",
]
