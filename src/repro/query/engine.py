""":class:`QueryEngine` — windowed analytics over the segment store.

Every query reduces to the same primitive: sum the delta rows of the
segments whose half-open window overlaps the query window (optionally
filtered to one plan epoch), then shape the result. Because segments
are immutable and the sum is order-independent, any answer is a pure
function of the segment set — the property the chaos harness turns
into a byte-equivalence oracle across crash/recovery.

Query shapes mirror the in-memory service API (``top_contexts``,
``function_totals``, ``ucp_stats``) plus the ones only a durable store
can answer: window-vs-window :meth:`diff`, index-served
:meth:`paths_through`, folded-stack :meth:`flamegraph` export, and
:func:`ucp_forensics` — the join from dead-letter triage records to
the :class:`~repro.analysis.incremental.GraphDelta` epoch whose hot
swap explains them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.errors import QueryError
from repro.query.flamegraph import to_folded
from repro.query.manifest import SegmentStore

__all__ = ["QueryEngine", "WindowDiff", "ucp_forensics"]

Path = Tuple[str, ...]
Window = Tuple[float, float]


def _check_window(window: Optional[Window]) -> Optional[Window]:
    if window is None:
        return None
    lo, hi = float(window[0]), float(window[1])
    if hi < lo:
        raise QueryError(f"query window is inverted: [{lo}, {hi})")
    return (lo, hi)


@dataclass(frozen=True)
class WindowDiff:
    """What changed between two time windows, context by context."""

    window_a: Window
    window_b: Window
    #: Contexts with samples in B but none in A: {path: count_in_b}.
    appeared: Dict[Path, int] = field(default_factory=dict)
    #: Contexts with samples in A but none in B: {path: count_in_a}.
    disappeared: Dict[Path, int] = field(default_factory=dict)
    #: Contexts in both with different counts: {path: (a, b)}.
    changed: Dict[Path, Tuple[int, int]] = field(default_factory=dict)

    @property
    def is_empty(self) -> bool:
        return not (self.appeared or self.disappeared or self.changed)

    def to_json(self) -> dict:
        def fold(mapping):
            return {";".join(path): value for path, value in mapping.items()}

        return {
            "window_a": list(self.window_a),
            "window_b": list(self.window_b),
            "appeared": fold(self.appeared),
            "disappeared": fold(self.disappeared),
            "changed": {
                key: list(value)
                for key, value in fold(self.changed).items()
            },
        }


class QueryEngine:
    """Read-side API over one segment directory (or a store).

    ``source`` may be a directory path, a :class:`SegmentStore`, or any
    store-shaped object (``refresh()``/``segments()``) — notably a
    :class:`~repro.query.manifest.CompositeSegmentStore` unioning the
    per-worker stores of a multi-process service.

    ``pin_lease_s`` opts a cross-process reader into **snapshot
    pinning**: every :meth:`refresh` plants/renews an advisory
    :class:`~repro.query.locks.SnapshotPin` recording the manifest
    generation being served, so a compactor in another process defers
    deleting that generation's files until this engine refreshes past
    it (or the lease lapses). Loaded segments are immaterial to
    deletion anyway — they are fully materialized in memory — the pin
    protects the listing→load window of the *next* refresh. Call
    :meth:`close` (or use the engine as a context manager) to release
    the pin.
    """

    def __init__(self, source, pin_lease_s: Optional[float] = None):
        if isinstance(source, str):
            self.store = SegmentStore(source)
        elif callable(getattr(source, "segments", None)) and callable(
            getattr(source, "refresh", None)
        ):
            self.store = source
        else:
            raise QueryError(
                f"QueryEngine source must be a directory path or a "
                f"segment store, not {type(source).__name__}"
            )
        self._pin = None
        if pin_lease_s is not None:
            directory = getattr(self.store, "directory", None)
            if not isinstance(directory, str):
                raise QueryError(
                    "snapshot pinning needs a single-directory store"
                )
            from repro.query.locks import SnapshotPin

            self._pin = SnapshotPin(directory, lease_s=pin_lease_s)

    def refresh(self) -> "QueryEngine":
        # Pin *before* listing: a brand-new pin (generation -1) blocks
        # every deletion, so no file can vanish between the manifest
        # read and the segment loads; after the refresh the pin renews
        # onto the generation actually served.
        if self._pin is not None and not self._pin.held:
            self._pin.acquire()
        self.store.refresh()
        if self._pin is not None:
            self._pin.renew(getattr(self.store, "generation", 0))
        return self

    @property
    def pinned_generation(self) -> Optional[int]:
        """The generation this reader's pin protects, or None."""
        if self._pin is None or not self._pin.held:
            return None
        return self._pin.generation

    def close(self) -> None:
        """Release the snapshot pin (if any)."""
        if self._pin is not None:
            self._pin.release()

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def segments(self, window: Optional[Window] = None) -> List:
        segs = self.store.segments()
        window = _check_window(window)
        if window is None:
            return segs
        return [s for s in segs if s.overlaps(*window)]

    # ------------------------------------------------------------------
    def span(self) -> Optional[Window]:
        """The wall-clock range the store covers, or None when empty."""
        segs = self.store.segments()
        if not segs:
            return None
        return (min(s.t_lo for s in segs), max(s.t_hi for s in segs))

    def _counts(
        self,
        window: Optional[Window] = None,
        epoch: Optional[int] = None,
        with_gaps: bool = False,
    ) -> Dict[Path, List[int]]:
        """Sum delta rows over every overlapping segment: {path: [count]}
        (``with_gaps`` appends a gap-count slot).

        Compacted (multi-span) segments are filtered row by row: each
        row counts only when *its own span* overlaps the window, so a
        merged segment answers exactly like the deltas it replaced.
        """
        window = _check_window(window)
        out: Dict[Path, List[int]] = {}
        for seg in self.segments(window):
            spanned = window is not None and seg.state.multi_span
            for idx, (path, count, gaps, row_epoch) in enumerate(seg.rows):
                if epoch is not None and row_epoch != epoch:
                    continue
                if spanned and not seg.row_overlaps(idx, *window):
                    continue
                slot = out.get(path)
                if slot is None:
                    out[path] = [count, gaps] if with_gaps else [count]
                elif with_gaps:
                    slot[0] += count
                    slot[1] += gaps
                else:
                    slot[0] += count
        return out

    # ------------------------------------------------------------------
    def top_contexts(
        self,
        k: int = 10,
        *,
        window: Optional[Window] = None,
        epoch: Optional[int] = None,
    ) -> List[Tuple[int, Path]]:
        """The ``k`` hottest contexts in the window, heaviest first.

        Same shape and tie-break as ``ContextService.top_contexts``
        (count descending, then path ascending) so in-memory and
        durable answers are directly comparable.
        """
        start = time.perf_counter()
        counts = self._counts(window, epoch)
        ranked = sorted(
            ((slot[0], path) for path, slot in counts.items() if slot[0]),
            key=lambda item: (-item[0], item[1]),
        )
        obs.histogram("query.topk_us").observe_us(
            (time.perf_counter() - start) * 1e6
        )
        return ranked[:k]

    def function_totals(
        self,
        leaf_only: bool = False,
        *,
        window: Optional[Window] = None,
        epoch: Optional[int] = None,
    ) -> Dict[str, int]:
        """Per-function rollups over the window.

        ``leaf_only=True`` gives exclusive/self counts (context ends at
        the function); otherwise inclusive counts (function appears
        anywhere, credited once per observation).
        """
        start = time.perf_counter()
        totals: Dict[str, int] = {}
        for path, slot in self._counts(window, epoch).items():
            if not slot[0] or not path:
                continue
            if leaf_only:
                totals[path[-1]] = totals.get(path[-1], 0) + slot[0]
            else:
                for name in set(path):
                    totals[name] = totals.get(name, 0) + slot[0]
        obs.histogram("query.rollup_us").observe_us(
            (time.perf_counter() - start) * 1e6
        )
        return totals

    def paths_through(
        self,
        function: str,
        *,
        window: Optional[Window] = None,
        epoch: Optional[int] = None,
    ) -> Dict[Path, int]:
        """Every context containing ``function``, with its window count.

        Served by the per-segment inverted index: only the posting-list
        rows are touched, not every row of every segment.
        """
        start = time.perf_counter()
        window = _check_window(window)
        out: Dict[Path, int] = {}
        for seg in self.segments(window):
            rows = seg.rows
            spanned = window is not None and seg.state.multi_span
            for row_idx in seg.rows_through(function):
                path, count, _gaps, row_epoch = rows[row_idx]
                if epoch is not None and row_epoch != epoch:
                    continue
                if spanned and not seg.row_overlaps(row_idx, *window):
                    continue
                if count:
                    out[path] = out.get(path, 0) + count
        obs.histogram("query.through_us").observe_us(
            (time.perf_counter() - start) * 1e6
        )
        return out

    def diff(
        self,
        window_a: Window,
        window_b: Window,
        *,
        epoch: Optional[int] = None,
    ) -> WindowDiff:
        """Window-vs-window comparison: what appeared/disappeared/moved.

        The canonical "what did the hot swap change?" query: diff the
        windows on either side of a plan install.
        """
        start = time.perf_counter()
        window_a = _check_window(window_a)
        window_b = _check_window(window_b)
        a = {p: s[0] for p, s in self._counts(window_a, epoch).items() if s[0]}
        b = {p: s[0] for p, s in self._counts(window_b, epoch).items() if s[0]}
        appeared = {p: c for p, c in b.items() if p not in a}
        disappeared = {p: c for p, c in a.items() if p not in b}
        changed = {
            p: (a[p], b[p]) for p in a.keys() & b.keys() if a[p] != b[p]
        }
        obs.histogram("query.diff_us").observe_us(
            (time.perf_counter() - start) * 1e6
        )
        return WindowDiff(window_a, window_b, appeared, disappeared, changed)

    def flamegraph(
        self,
        *,
        window: Optional[Window] = None,
        epoch: Optional[int] = None,
    ) -> str:
        """The window's contexts in folded-stack flame-graph format."""
        start = time.perf_counter()
        counts = {
            path: slot[0]
            for path, slot in self._counts(window, epoch).items()
            if slot[0] and path
        }
        folded = to_folded(counts)
        obs.histogram("query.flame_us").observe_us(
            (time.perf_counter() - start) * 1e6
        )
        return folded

    def ucp_stats(
        self,
        *,
        window: Optional[Window] = None,
        epoch: Optional[int] = None,
    ) -> Dict[str, int]:
        """Gap-crossing (UCP) totals over the window — same shape as
        ``ContextService.ucp_stats``."""
        samples = 0
        gaps = 0
        for slot in self._counts(window, epoch, with_gaps=True).values():
            samples += slot[0]
            gaps += slot[1]
        return {
            "samples": samples,
            "gap_samples": gaps,
            "gap_free_samples": samples - gaps,
        }

    def forensics(
        self,
        dead_letters,
        epoch_history: Optional[Dict[int, dict]] = None,
    ) -> List[dict]:
        """:func:`ucp_forensics` over this store's segments."""
        return ucp_forensics(
            dead_letters,
            epoch_history=epoch_history,
            segments=self.store.segments(),
        )

    def stats(self) -> dict:
        out = self.store.stats()
        span = self.span()
        out["span"] = list(span) if span else None
        return out


# ----------------------------------------------------------------------
def ucp_forensics(
    dead_letters,
    epoch_history: Optional[Dict[int, dict]] = None,
    segments=None,
) -> List[dict]:
    """Join dead-letter triage records to the plan change that explains
    them.

    Dead letters carry the epoch + plan fingerprint they failed under
    (stamped at quarantine time). Grouping by that pair and attaching
    the epoch's recorded :class:`GraphDelta` summary — plus whether a
    newer epoch superseded it, and which segments captured traffic
    decoded under the same fingerprint — turns a quarantine queue from
    "N failures" into "N failures, all from the epoch that removed
    ``libfoo``, superseded 40s later".

    ``dead_letters`` is an iterable of :class:`DeadLetter` (or any
    object with ``.epoch``/``.fingerprint``/``.error``/``.attempts``);
    ``epoch_history`` maps epoch → ``{"fingerprint", "delta",
    "installed_at"}`` as kept by ``ContextService.epoch_history()``.
    """
    history = epoch_history or {}
    groups: Dict[Tuple[int, str], dict] = {}
    for letter in dead_letters:
        epoch = getattr(letter, "epoch", -1)
        fingerprint = getattr(letter, "fingerprint", "") or ""
        key = (epoch, fingerprint)
        group = groups.get(key)
        if group is None:
            group = groups[key] = {
                "epoch": epoch,
                "fingerprint": fingerprint,
                "letters": 0,
                "attempts": 0,
                "errors": {},
            }
        group["letters"] += 1
        group["attempts"] += getattr(letter, "attempts", 0)
        error = getattr(letter, "error_type", "") or ""
        if not error:
            raw = getattr(letter, "error", "") or ""
            error = raw.split(":", 1)[0] or "unknown"
        group["errors"][error] = group["errors"].get(error, 0) + 1
    newest_epoch = max(history) if history else None
    for (epoch, fingerprint), group in groups.items():
        record = history.get(epoch)
        if record is not None:
            group["delta"] = record.get("delta")
            group["installed_at"] = record.get("installed_at")
            recorded_fp = record.get("fingerprint", "")
            group["fingerprint_match"] = (
                bool(fingerprint) and fingerprint == recorded_fp
            )
        else:
            group["delta"] = None
            group["installed_at"] = None
            group["fingerprint_match"] = False
        group["superseded"] = (
            newest_epoch is not None and epoch < newest_epoch
        )
        if segments:
            group["segments"] = [
                seg.seq for seg in segments
                if fingerprint and seg.fingerprint == fingerprint
            ]
        else:
            group["segments"] = []
    return sorted(
        groups.values(), key=lambda g: (g["epoch"], g["fingerprint"])
    )
