"""Exception hierarchy for the DeltaPath reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class GraphError(ReproError):
    """A structural problem with a call graph or CFG."""


class CycleError(GraphError):
    """An operation requiring an acyclic graph was given a cyclic one.

    Carries the offending cycle (a list of node names) when known.
    """

    def __init__(self, message: str, cycle: list | None = None):
        super().__init__(message)
        self.cycle = list(cycle) if cycle is not None else None


class ProgramError(ReproError):
    """An ill-formed program in the mini object-oriented language."""


class DispatchError(ProgramError):
    """A virtual call could not be resolved to any concrete method."""


class AnalysisError(ReproError):
    """A static analysis failed or was asked an unanswerable question."""


class EncodingError(ReproError):
    """The encoding algorithm could not produce a valid encoding."""


class EncodingOverflowError(EncodingError):
    """Anchor insertion cannot fix an overflow (width pathologically small).

    Raised by Algorithm 2 when an addition value overflows even though the
    caller of the offending edge is already an anchor node; this means a
    single edge's contribution exceeds the integer width, which cannot
    happen with realistic (32/64-bit) widths on our workloads.
    """


class UnreachableCallerError(EncodingError):
    """A call site's caller cannot be reached from the entry.

    All encoders treat such sites uniformly: by default they receive a
    zero addition value (the site can never execute), and under
    ``strict_reachability=True`` this error is raised instead. Carries
    the offending call sites when known.
    """

    def __init__(self, message: str, sites: list | None = None):
        super().__init__(message)
        self.sites = list(sites) if sites is not None else None


class DecodingError(ReproError):
    """A context could not be recovered from an encoding."""


class RuntimeEncodingError(ReproError):
    """The instrumented runtime reached an inconsistent encoding state."""


class PlanSwapError(RuntimeEncodingError):
    """A plan hot-swap cannot be performed at the current point.

    Raised by :meth:`repro.runtime.agent.DeltaPathProbe.hot_swap` when the
    probe's live encoding state cannot be remapped onto the new plan —
    e.g. a currently-open encoding piece crosses an anchor that only
    exists in the new plan, or a decoded edge vanished from the new
    graph. The swap is recoverable: retry at a later safe point (the next
    anchor entry or operation boundary).
    """


class ObservabilityError(ReproError):
    """The metrics registry or tracer was misused.

    Raised by :mod:`repro.obs` when an instrument name is re-registered
    with a different kind, or an instrument is constructed with invalid
    bounds (e.g. a labeled counter with zero label capacity).
    """


class WorkloadError(ReproError):
    """A workload/benchmark specification is invalid."""


class ServiceError(ReproError):
    """The context-decode/ingestion service was misused or overloaded."""


class IngestOverflowError(ServiceError):
    """The ingestion queue is full and the policy is ``"error"``.

    Raised by :meth:`repro.service.ContextService.submit` (and the
    underlying :class:`repro.service.ingest.BoundedQueue`) when a
    producer outruns the workers and the configured backpressure policy
    turns overload into an error instead of blocking or dropping.
    """


class EpochError(ServiceError):
    """A sample referenced a plan epoch the service no longer retains.

    Every sample is stamped with the epoch of the plan its snapshot was
    captured under; decoding always uses exactly that epoch's plan.
    When epoch retention is bounded and an older epoch has been pruned,
    its samples can no longer be decoded and this error is raised.
    """


class StoreCorruptionError(ServiceError):
    """A compressed context-store block failed its integrity check.

    Sealed blocks of the :class:`repro.service.store.ContextStore` carry
    a CRC32 over their raw node records; a mismatch on unseal means the
    retained contexts in that block can no longer be trusted and the
    store refuses to serve them.
    """


class ResilienceError(ServiceError):
    """The resilience layer (supervisor/breaker/checkpoint) was misused."""


class CheckpointError(ResilienceError):
    """A durable checkpoint could not be written or recovered.

    Raised by :mod:`repro.resilience.checkpoint` when no valid snapshot
    exists in a checkpoint directory, when a recovered snapshot's plan
    fingerprint disagrees with the installed plan, or when recovery is
    attempted on a service that already aggregated samples. Torn or
    corrupt checkpoint *files* do not raise — they are skipped in favour
    of the newest file that validates.
    """


class QueryError(ServiceError):
    """The durable query layer (:mod:`repro.query`) was misused.

    Raised when a query names a segment directory that was never
    configured, a window is malformed (``lo > hi``), or a folded-stack
    import/export cannot represent a context. Torn or corrupt segment
    *files* do not raise — like checkpoints, they are skipped (and
    counted in ``query.segments_rejected``) in favour of the segments
    that validate.
    """


class ChaosError(ReproError):
    """An injected fault from :mod:`repro.resilience.chaos`.

    Deliberately a plain (retryable) error: the chaos layer uses it to
    model transient decode/checkpoint failures, so the retry policy and
    the circuit breaker treat it exactly like an unexpected production
    exception.
    """
