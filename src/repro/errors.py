"""Exception hierarchy for the DeltaPath reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class GraphError(ReproError):
    """A structural problem with a call graph or CFG."""


class CycleError(GraphError):
    """An operation requiring an acyclic graph was given a cyclic one.

    Carries the offending cycle (a list of node names) when known.
    """

    def __init__(self, message: str, cycle: list | None = None):
        super().__init__(message)
        self.cycle = list(cycle) if cycle is not None else None


class ProgramError(ReproError):
    """An ill-formed program in the mini object-oriented language."""


class DispatchError(ProgramError):
    """A virtual call could not be resolved to any concrete method."""


class AnalysisError(ReproError):
    """A static analysis failed or was asked an unanswerable question."""


class EncodingError(ReproError):
    """The encoding algorithm could not produce a valid encoding."""


class EncodingOverflowError(EncodingError):
    """Anchor insertion cannot fix an overflow (width pathologically small).

    Raised by Algorithm 2 when an addition value overflows even though the
    caller of the offending edge is already an anchor node; this means a
    single edge's contribution exceeds the integer width, which cannot
    happen with realistic (32/64-bit) widths on our workloads.
    """


class DecodingError(ReproError):
    """A context could not be recovered from an encoding."""


class RuntimeEncodingError(ReproError):
    """The instrumented runtime reached an inconsistent encoding state."""


class WorkloadError(ReproError):
    """A workload/benchmark specification is invalid."""
