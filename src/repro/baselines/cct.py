"""Calling context tree (Ammons, Ball & Larus, PLDI 1997).

A CCT interns each context as a tree node keyed by (parent, call site,
callee). The current context is a pointer into the tree; a snapshot is a
small integer node id (precise, decodable by walking parent links). The
paper's related-work point: maintaining a complete CCT costs space and
time proportional to the number of distinct contexts — unlike encodings,
there is a heap allocation the first time any context appears — while
sampling CCTs miss contexts.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.runtime.probes import Probe

__all__ = ["CCTProbe"]


class CCTProbe(Probe):
    """Maintains a calling context tree over instrumented calls."""

    name = "cct"

    #: Tree node ids are indexes into the parallel arrays below.
    ROOT = 0

    def __init__(self, instrumented_sites: Optional[Set[Tuple[str, Hashable]]] = None):
        self._instrumented = instrumented_sites
        # node id -> (parent id, site key, callee); root is sentinel.
        self.parents: List[int] = [-1]
        self.labels: List[Optional[Tuple[Tuple[str, Hashable], str]]] = [None]
        self._children: Dict[Tuple[int, Tuple[str, Hashable], str], int] = {}
        self._current = self.ROOT
        self._path: List[int] = []

    def begin_execution(self, entry: str) -> None:
        self._current = self.ROOT
        self._path.clear()

    def before_call(self, caller: str, label: Hashable, callee: str) -> None:
        key = (caller, label)
        if self._instrumented is not None and key not in self._instrumented:
            self._path.append(-1)  # untracked frame
            return
        child_key = (self._current, key, callee)
        node = self._children.get(child_key)
        if node is None:
            node = len(self.parents)
            self.parents.append(self._current)
            self.labels.append((key, callee))
            self._children[child_key] = node
        self._path.append(self._current)
        self._current = node

    def after_call(self, caller: str, label: Hashable, callee: str) -> None:
        previous = self._path.pop()
        if previous != -1:
            self._current = previous

    def snapshot(self, node: str) -> int:
        return self._current

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of interned context nodes (the CCT's space cost)."""
        return len(self.parents)

    def decode(self, node_id: int) -> List[Tuple[Tuple[str, Hashable], str]]:
        """Walk parent links: the context as (site, callee) pairs, root-first."""
        path = []
        current = node_id
        while current != self.ROOT:
            path.append(self.labels[current])
            current = self.parents[current]
        path.reverse()
        return path
