"""Probabilistic Calling Context (Bond & McKinley, OOPSLA 2007).

PCC maintains one thread-local word ``V``; at each instrumented call site
it computes ``V' = 3 * (V + cs)`` where ``cs`` is a per-site constant
(a hash of the site), truncated to the machine word. ``V`` is saved at
the site and restored after the call. The value at any point is a
probabilistically unique hash of the current calling context.

Properties reproduced here:

* purely runtime, no static analysis, works with dynamic loading;
* one word of state, very cheap per call;
* **no decoding** — and distinct contexts can collide. Collisions are a
  function of the multiplicative hash, not just the birthday bound:
  ``3*(3*(V+a)+b) = 9V + 9a + 3b`` is linear in the site constants, so
  different site combinations summing alike collide deterministically.
  ``site_bits`` controls the constants' entropy; the default (32) gives
  realistic behaviour, small values make collisions easy to provoke in
  tests.

The paper reimplemented PCC as a Java agent for a fair head-to-head; our
probe instruments exactly the same call-site set as the DeltaPath plan.
"""

from __future__ import annotations

import zlib
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.graph.callgraph import CallGraph
from repro.runtime.probes import Probe

__all__ = ["PCCProbe", "site_constants"]

_WORD_BITS = 32


def _site_hash(caller: str, label: Hashable, bits: int) -> int:
    """Deterministic per-site constant with ``bits`` of entropy."""
    raw = zlib.crc32(f"{caller}@{label}".encode("utf-8"))
    if bits >= 32:
        return raw
    return raw & ((1 << bits) - 1)


def site_constants(
    graph: CallGraph,
    instrumented: Optional[Iterable[Tuple[str, Hashable]]] = None,
    site_bits: int = _WORD_BITS,
) -> Dict[Tuple[str, Hashable], int]:
    """Per-site constants for every (or a chosen set of) call site(s)."""
    if instrumented is None:
        keys = [(s.caller, s.label) for s in graph.call_sites]
    else:
        keys = list(instrumented)
    return {key: _site_hash(key[0], key[1], site_bits) for key in keys}


class PCCProbe(Probe):
    """The PCC agent: hash accumulation at instrumented call sites."""

    name = "pcc"

    def __init__(
        self,
        constants: Dict[Tuple[str, Hashable], int],
        word_bits: int = _WORD_BITS,
    ):
        self._constants = constants
        self._mask = (1 << word_bits) - 1
        self._v = 0
        self._records: List[Optional[int]] = []

    def begin_execution(self, entry: str) -> None:
        self._v = 0
        self._records.clear()

    def before_call(self, caller: str, label: Hashable, callee: str) -> None:
        constant = self._constants.get((caller, label))
        if constant is None:
            self._records.append(None)
            return
        self._records.append(self._v)
        self._v = (3 * (self._v + constant)) & self._mask

    def after_call(self, caller: str, label: Hashable, callee: str) -> None:
        saved = self._records.pop()
        if saved is not None:
            self._v = saved

    def snapshot(self, node: str) -> int:
        return self._v
