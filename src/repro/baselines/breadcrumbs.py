"""Breadcrumbs (Bond, Baker & Guyer, PLDI 2010): PCC plus decoding help.

Breadcrumbs keeps PCC's hash encoding but records the hash value at
relatively *cold* call sites during execution. Offline, a search over the
static call graph reconstructs candidate contexts whose simulated PCC
value matches the queried hash, using the recorded values as waypoints.
The paper's Section 6.2 characterizes it: either high overhead (record at
many sites) or unreliable/expensive decoding (their evaluation capped the
search at 5 seconds per context).

We reproduce that trade-off faithfully but with a *step* budget rather
than a wall-clock one (deterministic tests):

* :class:`BreadcrumbsProbe` = PCC + per-cold-site value recording;
  ``cold_sites`` comes from a profiling pre-run and a hotness threshold.
* :class:`BreadcrumbsDecoder` = depth-first search over the call graph
  simulating PCC hashes; returns all matching contexts found within the
  budget. More than one match = ambiguous; zero within budget = failed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.baselines.pcc import PCCProbe
from repro.graph.callgraph import CallEdge, CallGraph

__all__ = [
    "BreadcrumbsProbe",
    "BreadcrumbsDecoder",
    "DecodeOutcome",
    "cold_sites_from_profile",
]

SiteKey = Tuple[str, Hashable]


def cold_sites_from_profile(
    site_counts: Dict[SiteKey, int], hot_threshold: int
) -> Set[SiteKey]:
    """Sites executed fewer than ``hot_threshold`` times are cold."""
    return {
        key for key, count in site_counts.items() if count < hot_threshold
    }


class BreadcrumbsProbe(PCCProbe):
    """PCC plus value recording at cold call sites.

    Recording cost scales with how many cold sites execute — the paper's
    overhead knob. ``recorded`` maps ``(site, value_after_site)`` pairs
    to hit counts, the breadcrumb store an offline decoder consults.
    """

    name = "breadcrumbs"

    def __init__(
        self,
        constants: Dict[SiteKey, int],
        cold_sites: Set[SiteKey],
        word_bits: int = 32,
    ):
        super().__init__(constants, word_bits=word_bits)
        self._cold = cold_sites
        self.recorded: Dict[Tuple[SiteKey, int], int] = {}

    def before_call(self, caller: str, label: Hashable, callee: str) -> None:
        super().before_call(caller, label, callee)
        key = (caller, label)
        if key in self._cold and key in self._constants:
            record = (key, self._v)
            self.recorded[record] = self.recorded.get(record, 0) + 1


@dataclass
class DecodeOutcome:
    """Result of an offline Breadcrumbs decode attempt."""

    matches: List[Tuple[CallEdge, ...]]
    steps_used: int
    exhausted_budget: bool

    @property
    def reliable(self) -> bool:
        """Exactly one match found with budget to spare."""
        return len(self.matches) == 1 and not self.exhausted_budget

    @property
    def ambiguous(self) -> bool:
        return len(self.matches) > 1

    @property
    def failed(self) -> bool:
        return not self.matches


class BreadcrumbsDecoder:
    """Offline search: which contexts of ``node`` hash to ``value``?

    The search walks forward from the entry simulating the PCC hash along
    every acyclic path to ``node``, pruned by recorded breadcrumb values
    when available. ``step_budget`` bounds explored edges (the paper used
    a 5-second wall-clock cap; a step cap keeps tests deterministic).
    """

    def __init__(
        self,
        graph: CallGraph,
        constants: Dict[SiteKey, int],
        recorded: Optional[Dict[Tuple[SiteKey, int], int]] = None,
        word_bits: int = 32,
    ):
        self.graph = graph
        self.constants = constants
        self.recorded = recorded or {}
        self._mask = (1 << word_bits) - 1
        self._recorded_sites = {key for key, _ in self.recorded}

    def decode(
        self, node: str, value: int, step_budget: int = 100_000
    ) -> DecodeOutcome:
        matches: List[Tuple[CallEdge, ...]] = []
        steps = 0
        exhausted = False

        # Depth-first over (current node, hash so far, path), forward from
        # the entry; acyclic exploration only (recursion would need the
        # stack of hashes, which Breadcrumbs itself does not decode).
        stack: List[Tuple[str, int, Tuple[CallEdge, ...]]] = [
            (self.graph.entry, 0, ())
        ]
        while stack:
            current, hashed, path = stack.pop()
            if steps >= step_budget:
                exhausted = True
                break
            if current == node and hashed == value:
                matches.append(path)
            for edge in self.graph.out_edges(current):
                steps += 1
                if any(e.callee == edge.callee for e in path):
                    continue  # stay acyclic
                constant = self.constants.get((edge.caller, edge.label))
                if constant is None:
                    next_hash = hashed
                else:
                    next_hash = (3 * (hashed + constant)) & self._mask
                key = (edge.caller, edge.label)
                if key in self._recorded_sites:
                    # A recorded (cold) site: only hash values actually
                    # observed there can be on a real path.
                    if (key, next_hash) not in self.recorded:
                        continue
                stack.append((edge.callee, next_hash, path + (edge,)))
        return DecodeOutcome(
            matches=matches, steps_used=steps, exhausted_budget=exhausted
        )
