"""PCCE's scalability mechanism: edge pruning (paper Section 3.2).

Before DeltaPath's anchors, PCCE kept encodings inside one integer by
*pruning edges during static analysis* "to ensure that the resultant
call graph can be encoded by a single integer", handling each pruned
edge at runtime "the same way a runtime integer overflow is processed":
push the current ID, reset to 0, continue. The paper's criticism — and
the reason Algorithm 2 exists — is that on deep graphs "massive edges at
the deep portion of the call graph would be pruned and the pruned edges
are handled at a relatively high runtime cost".

This module implements that baseline faithfully so the criticism can be
*measured* (see ``benchmarks/test_ablations.py``):

* :func:`encode_pruned_pcce` — PCCE's per-edge numbering, but any edge
  whose addition value or NC contribution would overflow the width is
  pruned: removed from the encoded graph and marked as a runtime push
  point. NC restarts at 1 past fully-pruned nodes, so pruning recurs
  every time the context count regrows to the limit — the "massive
  edges" effect.
* :class:`PrunedPCCEProbe` — the runtime agent: additions on kept
  edges, a push/reset on pruned ones. Pushes reuse the RECURSION entry
  kind (identical stack discipline: the new piece starts at the callee,
  and the pruned edge itself is re-attached during decoding), so the
  standard :class:`~repro.core.decoder.ContextDecoder` decodes these
  observations unchanged.

Like original PCCE, the encoder is defined for monomorphic graphs only
(virtual call sites need Algorithm 1) and raises on polymorphic input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.core.stackmodel import EntryKind, StackEntry
from repro.core.widths import Width
from repro.errors import DecodingError, EncodingError, RuntimeEncodingError
from repro.graph.callgraph import CallEdge, CallGraph, CallSite
from repro.graph.scc import remove_recursion
from repro.graph.topo import topological_order
from repro.runtime.probes import Probe

__all__ = ["PrunedPCCEEncoding", "encode_pruned_pcce", "PrunedPCCEProbe"]


@dataclass
class PrunedPCCEEncoding:
    """PCCE numbering over the kept subgraph + the pruned edge set."""

    #: The encoded (kept-edges-only, acyclic) graph.
    graph: CallGraph
    back_edges: List[CallEdge]
    width: Width
    nc: Dict[str, int]
    av: Dict[CallEdge, int]
    pruned: List[CallEdge]

    @property
    def pruned_count(self) -> int:
        return len(self.pruned)

    @property
    def max_id(self) -> int:
        return max(self.nc.values()) - 1 if self.nc else 0

    def edge_increment(self, edge: CallEdge) -> int:
        try:
            return self.av[edge]
        except KeyError:
            raise EncodingError(
                f"edge {edge} was pruned or never encoded"
            ) from None

    def decode(
        self, node: str, value: int, stop: Optional[str] = None
    ) -> List[CallEdge]:
        """Greedy per-edge decoding over the kept subgraph."""
        if node not in self.graph:
            raise DecodingError(f"unknown node {node!r}")
        start = stop if stop is not None else self.graph.entry
        path: List[CallEdge] = []
        current = node
        residual = value
        while current != start:
            best: Optional[CallEdge] = None
            best_av = -1
            for edge in self.graph.in_edges(current):
                av = self.av[edge]
                if best_av < av <= residual:
                    best = edge
                    best_av = av
            if best is None:
                raise DecodingError(
                    f"no kept incoming edge of {current!r} matches "
                    f"residual {residual}"
                )
            path.append(best)
            residual -= best_av
            current = best.caller
        if residual != 0:
            raise DecodingError(
                f"decoding reached {start!r} with residual {residual}"
            )
        path.reverse()
        return path


def encode_pruned_pcce(graph: CallGraph, width: Width) -> PrunedPCCEEncoding:
    """PCCE numbering with width-driven edge pruning.

    Processing nodes topologically, each incoming edge is *kept* while
    the node's running context count stays within the width; edges that
    would push it over are pruned (runtime push points). A node whose
    kept-edge count is zero (everything pruned, or unreachable) restarts
    with NC 1 — its contexts are encoded relative to the pushes.
    """
    acyclic, removed = remove_recursion(graph)
    for site in acyclic.virtual_sites:
        raise EncodingError(
            f"PCCE edge pruning is defined for monomorphic graphs only; "
            f"{site} is a virtual call site (use Algorithm 1/2 instead)"
        )

    nc: Dict[str, int] = {acyclic.entry: 1}
    av: Dict[CallEdge, int] = {}
    pruned: List[CallEdge] = []
    kept_edges: Set[CallEdge] = set()

    for node in topological_order(acyclic):
        if node == acyclic.entry:
            continue
        running = 0
        for edge in acyclic.in_edges(node):
            contribution = nc.get(edge.caller, 0)
            if contribution == 0:
                # Caller unreachable: the edge never executes as part of
                # a rooted context; keep it with a zero value.
                av[edge] = running
                kept_edges.add(edge)
                continue
            if not width.fits(running + contribution - 1):
                pruned.append(edge)
                continue
            av[edge] = running
            kept_edges.add(edge)
            running += contribution
        # Fresh piece start when everything incoming was pruned.
        nc[node] = running if running > 0 else 1

    encoded_graph = acyclic.without_edges(pruned)
    return PrunedPCCEEncoding(
        graph=encoded_graph,
        back_edges=removed,
        width=width,
        nc=nc,
        av=av,
        pruned=pruned,
    )


class PrunedPCCEProbe(Probe):
    """Runtime agent for the pruned encoding.

    Pruned edges (and recursive back edges, which PCCE treats the same
    way) push a RECURSION-kind entry and reset the ID; kept edges add
    their per-edge value. ``push_count`` measures the runtime cost the
    paper attributes to pruning.
    """

    name = "pcce-pruned"

    def __init__(self, encoding: PrunedPCCEEncoding):
        self.encoding = encoding
        self._av: Dict[Tuple[str, Hashable], int] = {
            (edge.caller, edge.label): value
            for edge, value in encoding.av.items()
        }
        self._push_edges: Set[Tuple[str, Hashable, str]] = {
            (edge.caller, edge.label, edge.callee)
            for edge in list(encoding.pruned) + list(encoding.back_edges)
        }
        self._id = 0
        self._stack: List[StackEntry] = []
        self._records: List[object] = []
        self.push_count = 0
        self.add_count = 0

    def begin_execution(self, entry: str) -> None:
        self._id = 0
        self._stack.clear()
        self._records.clear()

    def before_call(self, caller: str, label: Hashable, callee: str) -> None:
        if (caller, label, callee) in self._push_edges:
            self._stack.append(
                StackEntry(
                    kind=EntryKind.RECURSION,
                    node=callee,
                    saved_id=self._id,
                    site=CallSite(caller, label),
                )
            )
            self._id = 0
            self.push_count += 1
            self._records.append("push")
            return
        av = self._av.get((caller, label))
        if av is None:
            self._records.append(None)
            return
        self._id += av
        self.add_count += 1
        self._records.append(av)

    def after_call(self, caller: str, label: Hashable, callee: str) -> None:
        if not self._records:
            raise RuntimeEncodingError(
                f"unbalanced after_call at {caller}@{label}"
            )
        record = self._records.pop()
        if record is None:
            return
        if record == "push":
            entry = self._stack.pop()
            self._id = entry.saved_id
            return
        self._id -= record

    def snapshot(self, node: str) -> Tuple[Tuple[StackEntry, ...], int]:
        return tuple(self._stack), self._id
