"""A PCCE-style runtime agent: per-*edge* addition values.

PCCE (Sumner et al.) assigns addition values per call edge; under
virtual dispatch the value at a site depends on which target the call
resolves to, so the inserted code must branch on the dynamic dispatch
result — the paper's "bulky switch statement at each virtual function
call site" that motivates Algorithm 1.

This probe models that instrumentation over a DeltaPath plan's graph:
its table is keyed by ``(caller, label, callee)`` instead of
``(caller, label)``. On monomorphic programs it behaves identically to
the DeltaPath agent; on polymorphic ones it demonstrates the extra
table size and the per-call dependence on the dispatch result. (It
reuses DeltaPath's addition values, which are per-site constants —
i.e. this measures the *mechanism* cost of per-edge dispatch, with
encoding semantics held equal.)
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.graph.callgraph import CallSite
from repro.runtime.plan import DeltaPathPlan
from repro.runtime.probes import Probe

__all__ = ["PerEdgeSwitchProbe"]


class PerEdgeSwitchProbe(Probe):
    """Per-edge (dispatch-dependent) instrumentation, PCCE style."""

    name = "pcce-switch"

    def __init__(self, plan: DeltaPathPlan):
        # (caller, label, callee) -> addition value: the "switch".
        self._edge_av: Dict[Tuple[str, Hashable, str], int] = {}
        graph = plan.graph
        for (caller, label), av in plan.site_av.items():
            for edge in graph.site_targets(CallSite(caller, label)):
                self._edge_av[(caller, label, edge.callee)] = av
        self._id = 0
        self._records: List[Optional[int]] = []

    @property
    def table_size(self) -> int:
        """Entries in the per-edge table (vs one per site in DeltaPath)."""
        return len(self._edge_av)

    def begin_execution(self, entry: str) -> None:
        self._id = 0
        self._records.clear()

    def before_call(self, caller: str, label: Hashable, callee: str) -> None:
        av = self._edge_av.get((caller, label, callee))
        if av is not None:
            self._id += av
        self._records.append(av)

    def after_call(self, caller: str, label: Hashable, callee: str) -> None:
        av = self._records.pop()
        if av is not None:
            self._id -= av

    def snapshot(self, node: str) -> int:
        return self._id
