"""Baseline context-tracking techniques the paper compares against."""

from repro.baselines.breadcrumbs import (
    BreadcrumbsDecoder,
    BreadcrumbsProbe,
    DecodeOutcome,
    cold_sites_from_profile,
)
from repro.baselines.cct import CCTProbe
from repro.baselines.edgepruning import (
    PrunedPCCEEncoding,
    PrunedPCCEProbe,
    encode_pruned_pcce,
)
from repro.baselines.pcc import PCCProbe, site_constants
from repro.baselines.pcce_probe import PerEdgeSwitchProbe
from repro.baselines.stackwalk import StackWalkProbe

__all__ = [
    "BreadcrumbsDecoder",
    "BreadcrumbsProbe",
    "CCTProbe",
    "DecodeOutcome",
    "PCCProbe",
    "PerEdgeSwitchProbe",
    "PrunedPCCEEncoding",
    "PrunedPCCEProbe",
    "StackWalkProbe",
    "cold_sites_from_profile",
    "encode_pruned_pcce",
    "site_constants",
]
