"""Stack walking: the classic way to obtain a calling context.

Precise and needs no static analysis, but each observation costs time
proportional to the stack depth (copying every frame), which is why the
paper calls it "expensive" for continuous collection. The probe keeps a
shadow stack of instrumented frames; ``snapshot`` copies it — the per-
observation O(depth) cost the encodings avoid.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Set, Tuple

from repro.runtime.probes import Probe

__all__ = ["StackWalkProbe"]


class StackWalkProbe(Probe):
    """Shadow-stack maintenance + O(depth) snapshots."""

    name = "stackwalk"

    def __init__(self, instrumented_nodes: Optional[Set[str]] = None):
        self._instrumented = instrumented_nodes
        self._frames: List[str] = []
        self._pushed: List[bool] = []

    def begin_execution(self, entry: str) -> None:
        self._frames.clear()
        self._pushed.clear()

    def enter_function(self, node: str) -> None:
        tracked = self._instrumented is None or node in self._instrumented
        self._pushed.append(tracked)
        if tracked:
            self._frames.append(node)

    def exit_function(self, node: str) -> None:
        if self._pushed.pop():
            self._frames.pop()

    def snapshot(self, node: str) -> Tuple[str, ...]:
        # The full walk: copies the stack every observation.
        return tuple(self._frames)
