"""Executable JIP programs realizing the paper's Figure 6 and 7 scenarios.

:func:`figure6_program` — dynamic class loading. A virtual call site in
``Main.b`` statically dispatches only to ``DImpl.m``; the dynamically
loaded ``XImpl`` adds an unseen target whose body produces both UCP kinds:

* ``XImpl.m`` calls ``DImpl.m`` — a *benign* UCP (``B -> X -> D``): the
  SID check at ``DImpl.m`` passes because the expected SID written at the
  virtual site names exactly DImpl.m's set.
* ``XImpl.m`` calls ``Util.e`` — a *hazardous* UCP (``B -> X -> E``): the
  stale expected SID does not match ``Util.e``.

:func:`figure7_program` — selective encoding. The application methods
``Main.main``, ``Main.b`` and ``App.g`` reach each other only through the
library (JDK-like) classes ``Jdk1``/``Jdk2``; with ``application_only``
plans, only the ``Main.main -> Main.b`` edge is encoded and ``App.g``
detects a hazardous UCP at its entry, exactly the paper's walkthrough.
"""

from __future__ import annotations

from repro.lang.model import Program
from repro.lang.parser import parse_program

__all__ = ["figure6_program", "figure7_program"]

_FIGURE6_SOURCE = """
program Main.main

class Base
class DImpl extends Base
class XImpl extends Base dynamic
class Util
class Main

def Main.main
  new DImpl
  branch 0.5            # plugin sometimes loaded at runtime
    new XImpl
  end
  call Main.b
  call Main.c
end

def Main.b
  vcall Base.m          # statically only DImpl.m; dynamically also XImpl.m
end

def Main.c
  call DImpl.m
  call Util.e
end

def DImpl.m
  call Util.e
end

def XImpl.m             # dynamically loaded: never instrumented
  call DImpl.m          # benign UCP  (B -> X -> D)
  call Util.e           # hazardous UCP (B -> X -> E)
end

def Util.e
  work 1
end
"""


_FIGURE7_SOURCE = """
program Main.main

class Main
class App
class Jdk1 library
class Jdk2 library

def Main.main
  call Main.b           # the only encoded edge (AB)
end

def Main.b
  call Jdk1.d           # skipped: library target
end

def Jdk1.d
  call Jdk2.f
end

def Jdk2.f
  call App.g
end

def App.g               # detects the hazardous UCP at its entry
  work 1
end
"""


def figure6_program() -> Program:
    return parse_program(_FIGURE6_SOURCE)


def figure7_program() -> Program:
    return parse_program(_FIGURE7_SOURCE)
