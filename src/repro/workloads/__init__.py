"""Workloads: the paper's figure graphs and SPECjvm-shaped benchmarks."""

from repro.workloads.paperfigures import (
    figure1_graph,
    figure4_graph,
    figure5_anchors,
    figure5_graph,
    figure6_dynamic_edges,
    figure6_static_graph,
    figure7_full_graph,
    figure7_jdk_nodes,
)
from repro.workloads.paperprograms import figure6_program, figure7_program
from repro.workloads.specjvm import (
    SPECJVM_SPECS,
    Benchmark,
    BenchmarkSpec,
    benchmark_names,
    build_benchmark,
)
from repro.workloads.synthetic import (
    CascadeSpec,
    ComponentSpec,
    add_cascade,
    add_component,
    random_callgraph,
)

__all__ = [
    "Benchmark",
    "BenchmarkSpec",
    "CascadeSpec",
    "ComponentSpec",
    "SPECJVM_SPECS",
    "add_cascade",
    "add_component",
    "benchmark_names",
    "build_benchmark",
    "figure1_graph",
    "figure4_graph",
    "figure5_anchors",
    "figure5_graph",
    "figure6_dynamic_edges",
    "figure6_program",
    "figure6_static_graph",
    "figure7_full_graph",
    "figure7_jdk_nodes",
    "figure7_program",
    "random_callgraph",
]
