"""The exact call graphs of the paper's worked examples (Figures 1-7).

These small graphs carry the paper's hand-computed numbers, so tests can
pin our algorithms to the published values:

* Figure 1 — PCCE example; NC values A..G = 1,1,1,2,4,3,8; context ACFG
  encodes to 6 and decodes back.
* Figure 4 — Algorithm 1 example; two virtual sites (in D and in C);
  ICC[E] = 4, ICC[F] = 5 (vs NC[F] = 3), single addition value 2 for the
  virtual site in D.
* Figure 5 — Algorithm 2 example; anchors C and D; ICC[E][D] = 2,
  addition value 2 for FG, and call path CFG encodes to ID 2 relative to
  anchor C.
* Figure 6 — incomplete call graph: the dynamically loaded node X makes
  context ABXE a hazardous UCP and ABXD a benign one.
* Figure 7 — selective encoding: JDK nodes D and F are excluded; only AB
  is encoded and G detects a hazardous UCP at its entry.

Call-site naming convention: ``"<caller-lowercase><index>"``; the paper's
D/D' superscript pair becomes sites ``d1`` and ``d2``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graph.callgraph import CallGraph

__all__ = [
    "figure1_graph",
    "figure4_graph",
    "figure5_graph",
    "figure5_anchors",
    "figure6_static_graph",
    "figure6_dynamic_edges",
    "figure7_full_graph",
    "figure7_jdk_nodes",
]


def figure1_graph() -> CallGraph:
    """Figure 1: the PCCE example (all call sites monomorphic)."""
    g = CallGraph(entry="A")
    g.add_edge("A", "B", "a1")
    g.add_edge("A", "C", "a2")
    g.add_edge("B", "D", "b1")
    g.add_edge("C", "D", "c1")
    g.add_edge("D", "E", "d1")   # the paper's D -> E
    g.add_edge("D", "E", "d2")   # the paper's D' -> E (second site in D)
    g.add_edge("D", "F", "d3")
    g.add_edge("C", "F", "c2")
    g.add_edge("E", "G", "e1")
    g.add_edge("F", "G", "f1")
    g.add_edge("C", "G", "c3")
    return g


def figure4_graph() -> CallGraph:
    """Figure 4: Algorithm 1 example with two virtual call sites.

    Site ``d2`` in D dispatches to E and F (the paper's D'E and DF);
    site ``c2`` in C dispatches to F and G (the paper's CF and CG).
    """
    g = CallGraph(entry="A")
    g.add_edge("A", "B", "a1")
    g.add_edge("A", "C", "a2")
    g.add_edge("B", "D", "b1")
    g.add_edge("C", "D", "c1")
    g.add_edge("D", "E", "d1")           # monomorphic DE
    g.add_call("D", ["E", "F"], "d2")    # virtual: D'E and DF
    g.add_call("C", ["F", "G"], "c2")    # virtual: CF and CG
    g.add_edge("E", "G", "e1")
    g.add_edge("F", "G", "f1")
    return g


def figure5_graph() -> CallGraph:
    """Figure 5 uses the same program as Figure 4."""
    return figure4_graph()


def figure5_anchors() -> List[str]:
    """The anchor nodes of Figure 5 (besides the entry)."""
    return ["C", "D"]


def figure6_static_graph() -> CallGraph:
    """Figure 6: the call graph *as seen by static analysis*.

    The dynamically loaded node X and its edges (B->X at site b1, X->D,
    X->E) are absent here; see :func:`figure6_dynamic_edges`.
    """
    g = CallGraph(entry="A")
    g.add_edge("A", "B", "a1")
    g.add_edge("A", "C", "a2")
    g.add_edge("B", "D", "b1")   # virtual site b1; at runtime also -> X
    g.add_edge("C", "D", "c1")
    g.add_edge("C", "E", "c2")
    g.add_edge("D", "E", "d1")
    return g


def figure6_dynamic_edges() -> List[Tuple[str, str, str]]:
    """Runtime-only edges of Figure 6: (caller, callee, site label).

    ``B -> X`` shares site ``b1`` with the static ``B -> D`` edge (same
    virtual call, new dispatch target from a dynamically loaded class);
    X's own calls introduce the UCPs ``B -> X -> D`` (benign) and
    ``B -> X -> E`` (hazardous).
    """
    return [("B", "X", "b1"), ("X", "D", "x1"), ("X", "E", "x2")]


def figure7_full_graph() -> CallGraph:
    """Figure 7: application nodes A, B, G; JDK nodes D, F.

    The full (encoding-all) graph. The calling context ABDFG reaches the
    application function G only through JDK code.
    """
    g = CallGraph(entry="A")
    g.add_edge("A", "B", "a1")
    g.add_edge("B", "D", "b1")
    g.add_edge("D", "F", "d1")
    g.add_edge("F", "G", "f1")
    return g


def figure7_jdk_nodes() -> List[str]:
    return ["D", "F"]
