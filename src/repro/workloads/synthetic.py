"""Parametric random call-graph and program generators.

Two consumers:

* property-based tests drive the encoders with :func:`random_callgraph`
  (arbitrary DAG-ish multigraphs with virtual sites and optional cycles);
* the SPECjvm-shaped benchmarks (:mod:`repro.workloads.specjvm`) assemble
  programs from the building blocks here — layered components, virtual
  dispatch clusters, and *diamond cascades*, the structure that makes
  calling-context counts grow exponentially with depth (each layer
  multiplies the context count by its lane count).

Everything is seeded and deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.graph.callgraph import CallGraph
from repro.lang.model import (
    Branch,
    Klass,
    Method,
    MethodRef,
    Program,
    StaticCall,
    Stmt,
    VirtualCall,
    Work,
)

__all__ = [
    "random_callgraph",
    "CascadeSpec",
    "add_cascade",
    "add_parallel_cascade",
    "ComponentSpec",
    "add_component",
]


def random_callgraph(
    seed: int,
    layers: int = 4,
    width: int = 4,
    extra_edges: int = 6,
    virtual_sites: int = 2,
    max_dispatch: int = 3,
    back_edges: int = 0,
) -> CallGraph:
    """A random layered call multigraph.

    Nodes sit in ``layers`` layers of up to ``width`` nodes; every node
    gets one incoming edge from an earlier layer (everything reachable),
    then ``extra_edges`` random forward edges and ``virtual_sites``
    shared-label sites with up to ``max_dispatch`` targets are added.
    ``back_edges`` adds cycle-closing edges for recursion testing.
    """
    rng = random.Random(seed)
    graph = CallGraph(entry="main")
    layer_index: Dict[str, int] = {"main": 0}
    layer_nodes: List[List[str]] = [["main"]]
    for layer in range(1, layers + 1):
        count = rng.randint(1, width)
        names = [f"f{layer}_{i}" for i in range(count)]
        layer_nodes.append(names)
        for name in names:
            layer_index[name] = layer
            caller = rng.choice(layer_nodes[rng.randrange(layer)])
            graph.add_edge(caller, name)

    flat = list(layer_index)

    def pick_forward_pair() -> Optional[Tuple[str, str]]:
        for _ in range(30):
            caller, callee = rng.choice(flat), rng.choice(flat)
            if layer_index[caller] < layer_index[callee]:
                return caller, callee
        return None

    for _ in range(extra_edges):
        pair = pick_forward_pair()
        if pair is not None:
            graph.add_edge(*pair)

    for v in range(virtual_sites):
        pair = pick_forward_pair()
        if pair is None:
            continue
        caller, first = pair
        floor = layer_index[caller]
        targets = {first}
        candidates = [n for n in flat if layer_index[n] > floor]
        for _ in range(rng.randint(0, max_dispatch - 1)):
            targets.add(rng.choice(candidates))
        graph.add_call(caller, sorted(targets), label=f"v{v}")

    for b in range(back_edges):
        # A genuine cycle needs the callee to already reach the caller.
        for _ in range(30):
            caller = rng.choice(flat)
            ancestors = [
                n for n in graph.reaching(caller)
                if n not in ("main", caller)
            ]
            if not ancestors:
                continue
            callee = rng.choice(sorted(ancestors))
            graph.add_edge(caller, callee, label=f"back{b}")
            break
    return graph


# ----------------------------------------------------------------------
# Program building blocks
# ----------------------------------------------------------------------
@dataclass
class CascadeSpec:
    """A diamond cascade: ``layers`` levels, each multiplying the context
    count by ``lanes``.

    Layer ``i`` is a junction method making one *virtual* call dispatched
    to ``lanes`` lane methods (subclasses of a per-layer base class);
    every lane calls the next junction statically. Context count at the
    bottom = (count at top) * lanes**layers, while the runtime depth of
    one traversal is only ``2 * layers``.
    """

    prefix: str
    layers: int
    lanes: int = 3
    library: bool = False
    #: True (default): lane selection is a virtual call (one site, many
    #: targets). False: lanes are chosen by seeded branches over static
    #: calls — a monomorphic cascade with the same context blow-up, for
    #: baselines (PCCE) that cannot handle virtual dispatch.
    virtual_lanes: bool = True


def add_cascade(
    program: Program, spec: CascadeSpec
) -> Tuple[MethodRef, MethodRef, List[str]]:
    """Append a cascade; returns (top junction, bottom junction, classes
    to instantiate for dispatch)."""
    lane_classes: List[str] = []
    for layer in range(spec.layers + 1):
        junction_class = f"{spec.prefix}J{layer}"
        program.add_class(Klass(junction_class, library=spec.library))
        if layer == spec.layers:
            program.klass(junction_class).define(Method("step", (Work(1),)))
            break
        lane_names = [
            f"{spec.prefix}L{layer}x{lane}" for lane in range(spec.lanes)
        ]
        if spec.virtual_lanes:
            base_class = f"{spec.prefix}B{layer}"
            program.add_class(Klass(base_class, library=spec.library))
            program.klass(junction_class).define(
                Method("step", (VirtualCall(base_class, "go"),))
            )
            for lane_class in lane_names:
                program.add_class(
                    Klass(
                        lane_class,
                        superclass=base_class,
                        library=spec.library,
                    )
                )
                program.klass(lane_class).define(
                    Method(
                        "go",
                        (StaticCall(MethodRef(f"{spec.prefix}J{layer + 1}", "step")),),
                    )
                )
                lane_classes.append(lane_class)
        else:
            # Monomorphic lanes: a seeded branch ladder picks one lane;
            # each lane is a static call. Same blow-up, no dispatch.
            for lane_class in lane_names:
                program.add_class(Klass(lane_class, library=spec.library))
                program.klass(lane_class).define(
                    Method(
                        "go",
                        (StaticCall(MethodRef(f"{spec.prefix}J{layer + 1}", "step")),),
                    )
                )
            ladder: Tuple[Stmt, ...] = (
                StaticCall(MethodRef(lane_names[-1], "go")),
            )
            for index in range(len(lane_names) - 2, -1, -1):
                weight = 1.0 / (len(lane_names) - index)
                ladder = (
                    Branch(
                        weight,
                        (StaticCall(MethodRef(lane_names[index], "go")),),
                        ladder,
                    ),
                )
            program.klass(junction_class).define(Method("step", ladder))
    top = MethodRef(f"{spec.prefix}J0", "step")
    bottom = MethodRef(f"{spec.prefix}J{spec.layers}", "step")
    return top, bottom, lane_classes


def add_parallel_cascade(
    program: Program,
    prefix: str,
    layers: int,
    fan: int = 3,
    library: bool = False,
) -> Tuple[MethodRef, MethodRef]:
    """A hub cascade: each junction calls the *next junction* directly
    through ``fan`` parallel call sites (a seeded branch ladder picks one
    at runtime).

    Same ``fan ** layers`` context blow-up as a lane cascade, but the
    growth flows through single hub nodes — the structure where
    DeltaPath's anchors shine (anchoring one hub resets the entire
    downstream space) while PCCE-style edge pruning must prune
    ``fan - 1`` of every hub's incoming edges from the overflow frontier
    onward. Returns (top junction, bottom junction).
    """
    for layer in range(layers + 1):
        name = f"{prefix}P{layer}"
        program.add_class(Klass(name, library=library))
        if layer == layers:
            program.klass(name).define(Method("step", (Work(1),)))
            break
        target = MethodRef(f"{prefix}P{layer + 1}", "step")
        ladder: Tuple[Stmt, ...] = (StaticCall(target),)
        for index in range(fan - 2, -1, -1):
            weight = 1.0 / (fan - index)
            ladder = (Branch(weight, (StaticCall(target),), ladder),)
        program.klass(name).define(Method("step", ladder))
    return MethodRef(f"{prefix}P0", "step"), MethodRef(f"{prefix}P{layers}", "step")


@dataclass
class ComponentSpec:
    """A filler component: ``methods`` methods in a layered random DAG.

    Approximates the bulk of a real code base: mostly static calls, a
    fraction of virtual clusters (base + ``dispatch`` impls sharing one
    call site), all reachable from the component root, deterministic
    under ``seed``.
    """

    prefix: str
    methods: int
    seed: int
    extra_calls: int = 1
    virtual_cluster_every: int = 6
    dispatch: int = 3
    library: bool = False
    depth_layers: int = 8
    #: Probability that each call in a body executes at runtime. The
    #: static call graph always contains every edge; thinning keeps the
    #: interpreter's dynamic call tree sub-exponential.
    dynamic_weight: float = 0.4


def add_component(
    program: Program, spec: ComponentSpec
) -> Tuple[MethodRef, List[MethodRef], List[str]]:
    """Append a filler component; returns (root, methods, classes to
    instantiate)."""
    rng = random.Random(spec.seed)
    holder = f"{spec.prefix}H"
    program.add_class(Klass(holder, library=spec.library))

    # Layer assignment; layer 0 holds the root alone.
    refs: List[MethodRef] = [MethodRef(holder, "m0")]
    layer_of: Dict[MethodRef, int] = {refs[0]: 0}
    for i in range(1, spec.methods):
        ref = MethodRef(holder, f"m{i}")
        refs.append(ref)
        layer_of[ref] = rng.randint(1, spec.depth_layers)

    by_layer: Dict[int, List[MethodRef]] = {}
    for ref in refs:
        by_layer.setdefault(layer_of[ref], []).append(ref)
    present_layers = sorted(by_layer)

    # Call plan: every non-root method gets >= 1 caller from a strictly
    # shallower layer, guaranteeing reachability; then extra forward
    # calls thicken the graph.
    calls: Dict[MethodRef, List[MethodRef]] = {ref: [] for ref in refs}
    for ref in refs[1:]:
        shallower = [
            r for r in refs if layer_of[r] < layer_of[ref]
        ]
        calls[rng.choice(shallower)].append(ref)
    for ref in refs:
        deeper = [r for r in refs if layer_of[r] > layer_of[ref]]
        for _ in range(spec.extra_calls):
            if deeper:
                calls[ref].append(rng.choice(deeper))

    # Virtual clusters: every Nth method also dispatches to a cluster of
    # impls, each forwarding to a deeper method.
    instantiate: List[str] = []
    cluster_of: Dict[MethodRef, str] = {}
    for i, ref in enumerate(refs):
        if not i or not spec.virtual_cluster_every:
            continue
        if i % spec.virtual_cluster_every:
            continue
        deeper = [r for r in refs if layer_of[r] > layer_of[ref]]
        if not deeper:
            continue
        base = f"{spec.prefix}VB{i}"
        program.add_class(Klass(base, library=spec.library))
        for d in range(spec.dispatch):
            impl = f"{spec.prefix}VI{i}x{d}"
            program.add_class(
                Klass(impl, superclass=base, library=spec.library)
            )
            program.klass(impl).define(
                Method("handle", (StaticCall(rng.choice(deeper)),))
            )
            instantiate.append(impl)
        cluster_of[ref] = base

    from repro.lang.model import Branch

    for ref in refs:
        body: List = [
            Branch(spec.dynamic_weight, (StaticCall(target),))
            for target in calls[ref]
        ]
        if ref in cluster_of:
            body.append(VirtualCall(cluster_of[ref], "handle"))
        if not body:
            body.append(Work(1))
        program.klass(holder).define(Method(ref.method, tuple(body)))

    return refs[0], refs, instantiate
