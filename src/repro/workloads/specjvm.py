"""SPECjvm2008-shaped synthetic benchmarks (the paper's evaluation suite).

The paper evaluates on the 15 SPECjvm2008 programs. We cannot run a JVM,
so each benchmark is a synthetic JIP program whose *call-graph shape*
matches what Table 1 reports, scaled down (library component ~1/8 of the
paper's node counts; application component ~1/2):

* a **library component** ("JDK"): a layered filler DAG plus a diamond
  cascade whose depth is tuned per benchmark so the *encoding-all* static
  maximum ID lands in the paper's band — in particular, sunflow and
  xml.validation exceed the 64-bit limit (2^63-1 ~ 9.2e18) and force
  anchor nodes, and nobody else does;
* an **application component**: filler + per-benchmark hot loops,
  optional recursion, an optional application-side cascade (sunflow,
  xml.transform — the two with large encoding-application IDs in the
  paper), and a dynamically loaded plugin that produces hazardous UCPs;
* a bridge method connecting application to library, so encoding-all
  sees the full blowup while encoding-application (selective) does not.

A cascade of depth L with 3 lanes contributes *exactly* ``3**L`` to the
maximum ICC (each layer multiplies the context count by 3 and cascades
introduce no ICC inflation because lane methods have a single incoming
edge), so the per-benchmark ``lib_cascade_layers`` below are simply
``round(log3(paper max ID))``.

Runtime cost is kept sub-exponential: filler calls execute under seeded
coin flips (the static graph still contains every edge), and a cascade
traversal executes one lane per layer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import WorkloadError
from repro.lang.model import (
    Branch,
    Event,
    Klass,
    Loop,
    Method,
    MethodRef,
    New,
    Program,
    StaticCall,
    Stmt,
    VirtualCall,
    Work,
)
from repro.runtime.interpreter import Interpreter
from repro.runtime.probes import Probe
from repro.workloads.synthetic import (
    CascadeSpec,
    ComponentSpec,
    add_cascade,
    add_component,
)

__all__ = ["BenchmarkSpec", "Benchmark", "SPECJVM_SPECS", "build_benchmark",
           "benchmark_names"]


@dataclass(frozen=True)
class BenchmarkSpec:
    """Shape parameters of one synthetic SPECjvm benchmark."""

    name: str
    #: Paper's Table 1 values this benchmark is modelled on (for reports).
    paper_nodes_all: int
    paper_max_id_all: float
    paper_max_id_app: float
    #: Library ("JDK") component size and blowup.
    lib_methods: int
    lib_cascade_layers: int
    #: Application component size, blowup and dynamics.
    app_methods: int
    app_cascade_layers: int = 0
    app_depth: int = 6
    hot_loop: int = 12
    #: Depth of the hot call chain; the hot loop dominates collected
    #: contexts, so this tracks the paper's per-benchmark average depth.
    hot_chain: int = 3
    recursion: bool = False
    recursion_weight: float = 0.45
    plugin_load_weight: float = 0.3
    cascade_runs: int = 1
    seed: int = 0


# Cascade depths: round(log3(paper max ID)); 3**41 and 3**45 exceed
# 2**63 - 1 (sunflow, xml.validation) while 3**36 (xml.transform) does
# not — matching which benchmarks the paper says need anchors.
SPECJVM_SPECS: Dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in [
        BenchmarkSpec(
            name="compiler.compiler",
            paper_nodes_all=2308, paper_max_id_all=7.8e7, paper_max_id_app=12,
            lib_methods=288, lib_cascade_layers=16,
            app_methods=56, app_depth=8, hot_loop=14, hot_chain=4,
            recursion=True, seed=101,
        ),
        BenchmarkSpec(
            name="compiler.sunflow",
            paper_nodes_all=1846, paper_max_id_all=9.6e7, paper_max_id_app=12,
            lib_methods=230, lib_cascade_layers=17,
            app_methods=58, app_depth=8, hot_loop=14, hot_chain=4,
            recursion=True, seed=102,
        ),
        BenchmarkSpec(
            name="compress",
            paper_nodes_all=1298, paper_max_id_all=4e5, paper_max_id_app=32,
            lib_methods=162, lib_cascade_layers=12,
            app_methods=49, app_depth=9, hot_loop=40, hot_chain=8, seed=103,
        ),
        BenchmarkSpec(
            name="crypto.aes",
            paper_nodes_all=2656, paper_max_id_all=2.5e9, paper_max_id_app=25,
            lib_methods=332, lib_cascade_layers=20,
            app_methods=50, app_depth=6, hot_loop=16, hot_chain=4, seed=104,
        ),
        BenchmarkSpec(
            name="crypto.rsa",
            paper_nodes_all=2656, paper_max_id_all=3.6e8, paper_max_id_app=16,
            lib_methods=332, lib_cascade_layers=18,
            app_methods=50, app_depth=6, hot_loop=16, hot_chain=4, seed=105,
        ),
        BenchmarkSpec(
            name="crypto.signverify",
            paper_nodes_all=2694, paper_max_id_all=2.5e9, paper_max_id_app=37,
            lib_methods=336, lib_cascade_layers=20,
            app_methods=48, app_depth=6, hot_loop=16, hot_chain=4, seed=106,
        ),
        BenchmarkSpec(
            name="mpegaudio",
            paper_nodes_all=3132, paper_max_id_all=3.3e14, paper_max_id_app=130,
            lib_methods=391, lib_cascade_layers=30,
            app_methods=126, app_depth=11, hot_loop=36, hot_chain=11, seed=107,
        ),
        BenchmarkSpec(
            name="scimark.fft.large",
            paper_nodes_all=1279, paper_max_id_all=4e5, paper_max_id_app=5,
            lib_methods=160, lib_cascade_layers=12,
            app_methods=39, app_depth=9, hot_loop=30, hot_chain=8, seed=108,
        ),
        BenchmarkSpec(
            name="scimark.lu.large",
            paper_nodes_all=1273, paper_max_id_all=2.2e6, paper_max_id_app=4,
            lib_methods=159, lib_cascade_layers=13,
            app_methods=38, app_depth=9, hot_loop=30, hot_chain=8, seed=109,
        ),
        BenchmarkSpec(
            name="scimark.monte_carlo",
            paper_nodes_all=1260, paper_max_id_all=1.4e6, paper_max_id_app=4,
            lib_methods=157, lib_cascade_layers=13,
            app_methods=31, app_depth=9, hot_loop=44, hot_chain=8, seed=110,
        ),
        BenchmarkSpec(
            name="scimark.sor.large",
            paper_nodes_all=1269, paper_max_id_all=1.4e6, paper_max_id_app=4,
            lib_methods=158, lib_cascade_layers=13,
            app_methods=36, app_depth=9, hot_loop=30, hot_chain=8, seed=111,
        ),
        BenchmarkSpec(
            name="scimark.sparse.large",
            paper_nodes_all=1265, paper_max_id_all=2.2e6, paper_max_id_app=4,
            lib_methods=158, lib_cascade_layers=13,
            app_methods=34, app_depth=9, hot_loop=30, hot_chain=8, seed=112,
        ),
        BenchmarkSpec(
            name="sunflow",
            paper_nodes_all=7727, paper_max_id_all=4.4e21, paper_max_id_app=1.2e6,
            lib_methods=965, lib_cascade_layers=45,
            app_methods=200, app_cascade_layers=13, app_depth=12,
            hot_loop=24, hot_chain=19, recursion=True, cascade_runs=6, seed=113,
        ),
        BenchmarkSpec(
            name="xml.transform",
            paper_nodes_all=9766, paper_max_id_all=1.2e17, paper_max_id_app=1.2e10,
            lib_methods=1220, lib_cascade_layers=36,
            app_methods=380, app_cascade_layers=21, app_depth=14,
            hot_loop=18, hot_chain=13, recursion=True, cascade_runs=4, seed=114,
        ),
        BenchmarkSpec(
            name="xml.validation",
            paper_nodes_all=6703, paper_max_id_all=4.6e19, paper_max_id_app=17,
            lib_methods=838, lib_cascade_layers=41,
            app_methods=51, app_depth=7, hot_loop=20, hot_chain=7, seed=115,
        ),
    ]
}


def benchmark_names() -> List[str]:
    return list(SPECJVM_SPECS)


@dataclass
class Benchmark:
    """A built benchmark: program + the classes runtime dispatch needs."""

    spec: BenchmarkSpec
    program: Program
    instantiate: List[str]
    plugin_class: str

    @property
    def name(self) -> str:
        return self.spec.name

    def make_interpreter(
        self,
        probe: Optional[Probe] = None,
        seed: int = 0,
        collector=None,
        max_depth: int = 4000,
    ) -> Interpreter:
        """An interpreter with the receiver world pre-instantiated
        (the static implementations; the plugin loads dynamically)."""
        interp = Interpreter(
            self.program,
            probe=probe,
            seed=seed,
            collector=collector,
            max_depth=max_depth,
        )
        for klass in self.instantiate:
            interp.instantiate(klass)
        return interp


def build_benchmark(name: str) -> Benchmark:
    """Construct one synthetic benchmark program by name."""
    try:
        spec = SPECJVM_SPECS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown benchmark {name!r}; known: {benchmark_names()}"
        ) from None
    return _build(spec)


def _build(spec: BenchmarkSpec) -> Benchmark:
    program = Program(MethodRef("Main", "main"))
    program.add_class(Klass("Main"))
    rng = random.Random(spec.seed)
    instantiate: List[str] = []

    # ------------------------------------------------------------------
    # Application component.
    # ------------------------------------------------------------------
    app_root, app_methods, app_inst = add_component(
        program,
        ComponentSpec(
            prefix="App",
            methods=spec.app_methods,
            seed=spec.seed + 1,
            depth_layers=spec.app_depth,
        ),
    )
    instantiate.extend(app_inst)

    # Hot call chain: tiny, frequently invoked methods (the paper's
    # "small hot functions" that make compress/mpegaudio/monte_carlo
    # slow). Its depth dominates the collected contexts' average depth,
    # so it is sized per benchmark (spec.hot_chain).
    program.add_class(Klass("Hot"))
    program.klass("Hot").define(Method("leaf", (Work(2),)))
    chain_len = max(spec.hot_chain, 1)
    for i in reversed(range(chain_len)):
        if i == chain_len - 1:
            # The loop sits at the *bottom* of the chain, as real hot
            # loops do: most collected contexts are at full chain depth.
            body = (Loop(spec.hot_loop, (StaticCall(MethodRef("Hot", "leaf")),)),)
        else:
            body = (StaticCall(MethodRef("Hot", f"h{i + 1}")),)
        program.klass("Hot").define(Method(f"h{i}", body))
    program.klass("Hot").define(
        Method("hot", (StaticCall(MethodRef("Hot", "h0")),))
    )

    # Recursion cluster (drives Table 2 stack depth > 1).
    if spec.recursion:
        program.add_class(Klass("Rec"))
        program.klass("Rec").define(
            Method(
                "walk",
                (
                    Work(1),
                    Branch(
                        spec.recursion_weight,
                        (StaticCall(MethodRef("Rec", "step")),),
                    ),
                ),
            )
        )
        program.klass("Rec").define(
            Method("step", (StaticCall(MethodRef("Rec", "walk")),))
        )

    # Application-side cascade (sunflow / xml.transform).
    app_cascade_top: Optional[MethodRef] = None
    if spec.app_cascade_layers:
        top, bottom, lanes = add_cascade(
            program,
            CascadeSpec(
                prefix="AC",
                layers=spec.app_cascade_layers,
                lanes=3,
                library=False,
            ),
        )
        app_cascade_top = top
        instantiate.extend(lanes)

    # Plugin: a dynamically loaded dispatch target (Section 4.1).
    program.add_class(Klass("PluginBase"))
    program.add_class(Klass("StaticHandler", superclass="PluginBase"))
    # The static handler goes through the same glue method the dynamic
    # plugin uses, keeping PluginGlue.relay statically reachable (and
    # therefore instrumented — the nested-UCP path depends on it).
    program.klass("StaticHandler").define(
        Method("handle", (StaticCall(MethodRef("PluginGlue", "relay")),))
    )
    instantiate.append("StaticHandler")
    plugin_class = "Plugin"
    program.add_class(
        Klass(plugin_class, superclass="PluginBase", dynamic=True)
    )
    # A second dispatch surface reachable from code the first plugin
    # calls: when both plugins dispatch dynamically the detections nest
    # (the paper's max UCP of 2-3 per context).
    program.add_class(Klass("Base2"))
    program.add_class(Klass("StaticAssist", superclass="Base2"))
    program.klass("StaticAssist").define(Method("assist", (Work(1),)))
    instantiate.append("StaticAssist")
    program.add_class(Klass("Plugin2", superclass="Base2", dynamic=True))
    hazard2 = app_methods[min(3, len(app_methods) - 1)]
    program.klass("Plugin2").define(
        Method("assist", (StaticCall(hazard2),))
    )
    # Glue: an application method the first plugin calls; its entry is
    # the first UCP detection point, and its own virtual call can detour
    # through the second plugin for a nested detection.
    hazard_target = app_methods[min(2, len(app_methods) - 1)]
    program.add_class(Klass("PluginGlue"))
    program.klass("PluginGlue").define(
        Method(
            "relay",
            (StaticCall(hazard_target), VirtualCall("Base2", "assist")),
        )
    )
    program.klass(plugin_class).define(
        Method(
            "handle",
            (
                StaticCall(MethodRef("PluginGlue", "relay")),
                StaticCall(MethodRef("Hot", "leaf")),
            ),
        )
    )

    # ------------------------------------------------------------------
    # Library ("JDK") component.
    # ------------------------------------------------------------------
    lib_root, _lib_methods, lib_inst = add_component(
        program,
        ComponentSpec(
            prefix="Jdk",
            methods=spec.lib_methods,
            seed=spec.seed + 2,
            library=True,
            depth_layers=10,
        ),
    )
    instantiate.extend(lib_inst)
    lib_top, _lib_bottom, lib_lanes = add_cascade(
        program,
        CascadeSpec(
            prefix="JC", layers=spec.lib_cascade_layers, lanes=3, library=True
        ),
    )
    instantiate.extend(lib_lanes)

    # Bridge: the single application method that enters the library, so
    # the library cascade's context count multiplier is exactly 1.
    program.add_class(Klass("Bridge"))
    program.klass("Bridge").define(
        Method(
            "into_lib",
            (
                Branch(0.4, (StaticCall(lib_root),)),
                StaticCall(lib_top),
            ),
        )
    )

    # ------------------------------------------------------------------
    # Setup: the program instantiates its own receiver classes (so RTA /
    # 0-CFA see them), like a real benchmark's initialization.
    # ------------------------------------------------------------------
    program.add_class(Klass("Setup"))
    program.klass("Setup").define(
        Method("init", tuple(New(k) for k in instantiate))
    )

    # ------------------------------------------------------------------
    # Main.main: one benchmark operation.
    # ------------------------------------------------------------------
    body: List[Stmt] = [
        StaticCall(MethodRef("Setup", "init")),
        Branch(spec.plugin_load_weight, (New(plugin_class),)),
        Branch(spec.plugin_load_weight / 2, (New("Plugin2"),)),
        Loop(4, (StaticCall(MethodRef("Hot", "hot")),)),
        StaticCall(app_root),
    ]
    if spec.recursion:
        body.append(StaticCall(MethodRef("Rec", "walk")))
    if app_cascade_top is not None:
        body.append(
            Loop(spec.cascade_runs, (StaticCall(app_cascade_top),))
        )
    body.append(StaticCall(MethodRef("Bridge", "into_lib")))
    body.append(
        Loop(3, (VirtualCall("PluginBase", "handle"),))
    )
    body.append(Event("operation_done"))
    program.klass("Main").define(Method("main", tuple(body)))

    program.validate()
    return Benchmark(
        spec=spec,
        program=program,
        instantiate=instantiate,
        plugin_class=plugin_class,
    )
