"""DeltaPath: precise and scalable calling context encoding (CGO 2014).

A full reproduction of Zeng et al.'s DeltaPath, built on pure-Python
substrates: a call-graph core (:mod:`repro.graph`), a mini object-
oriented language and interpreter standing in for Java bytecode and the
JVM (:mod:`repro.lang`, :mod:`repro.runtime`), static analyses standing
in for WALA (:mod:`repro.analysis`), the encoding algorithms themselves
(:mod:`repro.core`), the baselines the paper compares against
(:mod:`repro.baselines`), and the evaluation harness that regenerates
every table and figure (:mod:`repro.workloads`, :mod:`repro.bench`).

Quickstart (the :mod:`repro.api` facade is the documented entry point)::

    from repro import Encoder, parse_program

    program = parse_program(SOURCE)
    enc = Encoder()                             # PlanConfig() defaults
    plan = enc.plan(program)                    # static analysis + Alg. 2
    probe = enc.probe(plan)                     # the runtime agent
    Interpreter(program, probe=probe).run()     # instrumented execution
    stack, current = probe.snapshot(node)       # one context's encoding
    plan.decode_snapshot(node, (stack, current))  # ...and back

    # dynamic class loading: repair instead of rebuild
    delta = enc.delta_for_loaded_classes(program, plan, loaded)
    update = enc.apply_delta(plan, delta)       # dirty territories only
    probe.hot_swap(update, at_node)             # live context survives

    # millions of samples: decode off the hot path, sharded + cached
    service = enc.service(plan).start()         # repro.service backend
    batch = SampleBatch().append(node, (stack, current), epoch=service.epoch)
    service.submit_batch(batch)                 # batch-first ingest
    service.flush(); service.top_contexts(5)    # hottest calling contexts

See README.md, docs/API.md and examples/ for complete walkthroughs.
"""

from repro.api import (
    ContextService,
    Encoder,
    Encoding,
    GraphDelta,
    PlanConfig,
    PlanUpdate,
    ReencodeResult,
    SampleBatch,
    ServiceConfig,
    delta_for_loaded_classes,
    diff_graphs,
    encode,
    reencode,
)
from repro.core import (
    UNBOUNDED,
    W8,
    W16,
    W32,
    W64,
    AnchoredEncoding,
    ContextDecoder,
    DecodedContext,
    DeltaPathEncoding,
    EntryKind,
    PCCEEncoding,
    StackEntry,
    Width,
    compute_sids,
    encode_anchored,
    encode_deltapath,
    encode_pcce,
    verify_encoding,
)
from repro.errors import (
    DecodingError,
    EncodingError,
    EncodingOverflowError,
    GraphError,
    PlanSwapError,
    ReproError,
    RuntimeEncodingError,
    UnreachableCallerError,
)
from repro.graph import CallEdge, CallGraph, CallSite
from repro.lang import MethodRef, Program, ProgramBuilder, parse_program
from repro.postprocess import ContextTreeReport
from repro.runtime import (
    ContextCollector,
    DeltaPathPlan,
    DeltaPathProbe,
    Interpreter,
    NullProbe,
    Probe,
    build_plan,
    build_plan_from_graph,
)

__version__ = "1.0.0"

__all__ = [
    "AnchoredEncoding",
    "CallEdge",
    "CallGraph",
    "CallSite",
    "ContextCollector",
    "ContextDecoder",
    "ContextService",
    "ContextTreeReport",
    "DecodedContext",
    "DeltaPathEncoding",
    "DecodingError",
    "DeltaPathPlan",
    "DeltaPathProbe",
    "Encoder",
    "Encoding",
    "EncodingError",
    "EncodingOverflowError",
    "EntryKind",
    "GraphDelta",
    "GraphError",
    "PlanConfig",
    "PlanSwapError",
    "PlanUpdate",
    "SampleBatch",
    "ReencodeResult",
    "ReproError",
    "RuntimeEncodingError",
    "ServiceConfig",
    "UnreachableCallerError",
    "Interpreter",
    "MethodRef",
    "NullProbe",
    "PCCEEncoding",
    "Probe",
    "Program",
    "ProgramBuilder",
    "StackEntry",
    "UNBOUNDED",
    "W16",
    "W32",
    "W64",
    "W8",
    "Width",
    "__version__",
    "build_plan",
    "build_plan_from_graph",
    "compute_sids",
    "delta_for_loaded_classes",
    "diff_graphs",
    "encode",
    "encode_anchored",
    "encode_deltapath",
    "encode_pcce",
    "parse_program",
    "reencode",
    "verify_encoding",
]
