"""Static instrumentation plans.

A plan is everything the runtime agent needs, precomputed: per-call-site
addition values, recursion sites, SIDs for call path tracking, anchor
membership, and the encoding itself (for decoding). Building a plan runs
the full static pipeline of the paper's Section 5:

    program --0-CFA--> call graph --[selective projection]-->
    encoded graph --Algorithm 2--> addition values + anchors
                  --union-find--> SIDs
                  --back edges--> recursion sites

Plans are keyed by plain ``(caller, label)`` tuples rather than
:class:`CallSite` objects so the probe's hot path is dictionary lookups
on tuples the interpreter already has.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, replace as _dc_replace
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from repro import obs
from repro.analysis.callgraph_builder import Policy, build_callgraph
from repro.analysis.incremental import GraphDelta, apply_delta as _apply_graph_delta
from repro.core.anchored import AnchoredEncoding, encode_anchored
from repro.core.decoder import ContextDecoder, DecodedContext
from repro.core.recursion import RecursionPlan, plan_recursion
from repro.core.reencode import ReencodeResult, reencode
from repro.core.selective import project_interesting, reattach_orphans
from repro.core.sid import SidTable, compute_sids, update_sids
from repro.core.stackmodel import EntryKind, StackEntry
from repro.core.widths import W64, Width
from repro.errors import DecodingError, EncodingError, PlanSwapError
from repro.graph.callgraph import CallGraph, CallSite
from repro.lang.model import Program

__all__ = [
    "DeltaPathPlan",
    "PlanUpdate",
    "RemappedSnapshot",
    "build_plan",
    "build_plan_from_graph",
]

SiteKey = Tuple[str, Hashable]


@dataclass
class DeltaPathPlan:
    """Everything the DeltaPath agent consults at runtime."""

    #: The graph the encoding ran on (selective projection applied).
    graph: CallGraph
    encoding: AnchoredEncoding
    sids: SidTable
    recursion: RecursionPlan
    #: (caller, label) -> addition value.
    site_av: Dict[SiteKey, int]
    #: (caller, label) -> recursive dispatch targets (back-edge callees).
    site_recursion: Dict[SiteKey, FrozenSet[str]]
    #: (caller, label) -> expected SID stored before the call.
    site_sid: Dict[SiteKey, int]
    #: (caller, label) -> first static dispatch target (the "expected
    #: callee" whose encoding value the ID represents after the site's
    #: addition; all targets of a site share the addition value).
    site_target: Dict[SiteKey, str]
    #: node -> (SID, is_anchor) for every instrumented function.
    node_info: Dict[str, Tuple[int, bool]]
    #: SID of the entry function (the initial "expected" value).
    entry_sid: int
    #: True when zero-addition-value sites were dropped from the tables
    #: (the Section 8 hot-edge optimization); incompatible with CPT.
    zero_elided: bool = False

    @property
    def instrumented_nodes(self) -> Set[str]:
        return set(self.node_info)

    @property
    def instrumented_site_count(self) -> int:
        """Table 1's CS column: call sites carrying instrumentation."""
        return len(
            set(self.site_av) | set(self.site_recursion)
        )

    def decoder(self) -> ContextDecoder:
        return ContextDecoder(self.encoding)

    def decode_snapshot(self, node: str, snapshot) -> DecodedContext:
        """Decode a probe snapshot ``(stack, id)`` taken at ``node``."""
        stack, current_id = snapshot
        return self.decoder().decode(node, stack, current_id)

    def apply_delta(
        self, delta: GraphDelta, *, max_restarts: Optional[int] = None
    ) -> "PlanUpdate":
        """Repair this plan after a call-graph delta (dynamic loading).

        Runs the incremental pipeline — :func:`repro.core.reencode.reencode`
        over the dirty territories, :func:`repro.core.sid.update_sids`,
        a linear recursion re-scan — and rebuilds the site tables, instead
        of re-running Algorithm 2 over the whole graph. Returns a
        :class:`PlanUpdate` carrying the new plan plus the ID-remap table
        that translates encoding state (snapshots, probe stacks) captured
        under this plan into the new encoding; hand it to
        :meth:`~repro.runtime.agent.DeltaPathProbe.hot_swap` to repair a
        live probe.

        ``delta`` must be expressed against :attr:`graph` — for plans
        built with ``application_only`` that is the *projected* graph,
        so project the delta before applying it.
        """
        t_start = time.perf_counter()
        with obs.span("plan.apply_delta", delta=delta.summary()) as sp:
            new_graph = _apply_graph_delta(self.graph, delta)
            result = reencode(
                new_graph,
                self.encoding,
                touched=delta.touched_nodes(self.graph),
                max_restarts=max_restarts,
            )
            recursion = plan_recursion(new_graph)
            sids = update_sids(self.sids, new_graph, delta)
            new_plan = _assemble_plan(
                new_graph, result.encoding, sids, recursion, self.zero_elided
            )
            promoted = frozenset(result.encoding.anchors) - frozenset(
                self.encoding.anchors
            )
            sp.set("dirty_nodes", len(result.dirty_nodes))
            sp.set("promoted_anchors", len(promoted))
        registry = obs.get_registry()
        registry.counter("plan.deltas_applied").inc()
        registry.histogram("plan.apply_delta_us").observe(
            time.perf_counter() - t_start
        )
        return PlanUpdate(
            old_plan=self,
            plan=new_plan,
            delta=delta,
            reencode=result,
            promoted_anchors=promoted,
        )


def build_plan_from_graph(
    graph: CallGraph,
    *args,
    width: Width = W64,
    application_only: bool = False,
    edge_priority: Optional[Callable] = None,
    elide_zero_av_sites: bool = False,
    initial_anchors: Iterable[str] = (),
) -> DeltaPathPlan:
    """Build a plan from an already-constructed call graph.

    ``application_only`` applies selective encoding (Section 4.2): nodes
    whose ``library`` attribute is true are excluded from the encoded
    world; orphaned application nodes are re-rooted with synthetic entry
    edges so their downstream encodings stay decodable.

    ``initial_anchors`` seeds Algorithm 2 (e.g. from
    :func:`repro.core.anchorplan.suggest_anchors`, or to pin anchors in
    tests); Algorithm 2 may still add more on overflow.

    ``edge_priority`` (usually from
    :func:`repro.runtime.profiling.edge_priority_from_counts`) makes hot
    edges receive the zero addition values; ``elide_zero_av_sites`` then
    drops those sites from the instrumentation tables entirely — the
    Section 8 hot-edge optimization. Eliding is incompatible with call
    path tracking (the agent enforces this).
    """
    if args:
        warnings.warn(
            "positional arguments to build_plan_from_graph are "
            "deprecated; pass keywords, or use repro.api.Encoder",
            DeprecationWarning,
            stacklevel=2,
        )
        names = (
            "width",
            "application_only",
            "edge_priority",
            "elide_zero_av_sites",
            "initial_anchors",
        )
        if len(args) > len(names):
            raise TypeError(
                f"build_plan_from_graph takes at most {1 + len(names)} "
                f"positional arguments ({1 + len(args)} given)"
            )
        supplied = dict(zip(names, args))
        width = supplied.get("width", width)
        application_only = supplied.get("application_only", application_only)
        edge_priority = supplied.get("edge_priority", edge_priority)
        elide_zero_av_sites = supplied.get(
            "elide_zero_av_sites", elide_zero_av_sites
        )
        initial_anchors = supplied.get("initial_anchors", initial_anchors)
    t_start = time.perf_counter()
    with obs.span("plan.build", nodes=len(graph.nodes)) as sp:
        if application_only:
            with obs.span("plan.project"):
                selection = project_interesting(
                    graph,
                    lambda n: not graph.node_attrs(n).get("library", False),
                )
                encoded_graph = reattach_orphans(selection)
        else:
            encoded_graph = graph

        with obs.span("plan.recursion"):
            recursion = plan_recursion(encoded_graph)
        encoding = encode_anchored(
            encoded_graph,
            width=width,
            edge_priority=edge_priority,
            initial_anchors=initial_anchors,
        )
        with obs.span("plan.sids"):
            sids = compute_sids(encoded_graph)
        with obs.span("plan.assemble"):
            plan = _assemble_plan(
                encoded_graph, encoding, sids, recursion, elide_zero_av_sites
            )
        sp.set("anchors", len(encoding.anchors))
        sp.set("sites", len(plan.site_av))
    registry = obs.get_registry()
    registry.counter("plan.builds").inc()
    registry.histogram("plan.build_us").observe(time.perf_counter() - t_start)
    return plan


def _assemble_plan(
    encoded_graph: CallGraph,
    encoding: AnchoredEncoding,
    sids: SidTable,
    recursion: RecursionPlan,
    elide_zero_av_sites: bool,
) -> DeltaPathPlan:
    """Build the runtime lookup tables from the analysis artifacts."""
    site_av: Dict[SiteKey, int] = {}
    site_sid: Dict[SiteKey, int] = {}
    site_target: Dict[SiteKey, str] = {}
    for site, av in encoding.av.items():
        key = (site.caller, site.label)
        if _is_synthetic(site):
            continue
        if elide_zero_av_sites and av == 0:
            continue  # encoding-free hot site: no instrumentation at all
        site_av[key] = av
        site_sid[key] = sids.expected_sid(site)
        site_target[key] = encoded_graph.site_targets(site)[0].callee

    site_recursion: Dict[SiteKey, FrozenSet[str]] = {}
    for site, targets in recursion.recursive_targets.items():
        key = (site.caller, site.label)
        site_recursion[key] = targets
        if key not in site_sid:
            site_sid[key] = sids.expected_sid(site)
        if key not in site_target:
            site_target[key] = encoded_graph.site_targets(site)[0].callee

    anchors = set(encoding.anchors)
    node_info = {
        node: (sids.node_sid(node), node in anchors)
        for node in encoded_graph.nodes
    }
    return DeltaPathPlan(
        graph=encoded_graph,
        encoding=encoding,
        sids=sids,
        recursion=recursion,
        site_av=site_av,
        site_recursion=site_recursion,
        site_sid=site_sid,
        site_target=site_target,
        node_info=node_info,
        entry_sid=sids.node_sid(encoded_graph.entry),
        zero_elided=elide_zero_av_sites,
    )


def build_plan(
    program: Program,
    *args,
    policy: Policy = Policy.ZERO_CFA,
    width: Width = W64,
    application_only: bool = False,
    edge_priority: Optional[Callable] = None,
    elide_zero_av_sites: bool = False,
    initial_anchors: Iterable[str] = (),
) -> DeltaPathPlan:
    """Full pipeline: program -> static call graph -> plan."""
    if args:
        warnings.warn(
            "positional arguments to build_plan are deprecated; pass "
            "keywords, or use repro.api.Encoder",
            DeprecationWarning,
            stacklevel=2,
        )
        names = (
            "policy",
            "width",
            "application_only",
            "edge_priority",
            "elide_zero_av_sites",
            "initial_anchors",
        )
        if len(args) > len(names):
            raise TypeError(
                f"build_plan takes at most {1 + len(names)} positional "
                f"arguments ({1 + len(args)} given)"
            )
        supplied = dict(zip(names, args))
        policy = supplied.get("policy", policy)
        width = supplied.get("width", width)
        application_only = supplied.get("application_only", application_only)
        edge_priority = supplied.get("edge_priority", edge_priority)
        elide_zero_av_sites = supplied.get(
            "elide_zero_av_sites", elide_zero_av_sites
        )
        initial_anchors = supplied.get("initial_anchors", initial_anchors)
    graph = build_callgraph(program, policy=policy, include_dynamic=False)
    return build_plan_from_graph(
        graph,
        width=width,
        application_only=application_only,
        edge_priority=edge_priority,
        elide_zero_av_sites=elide_zero_av_sites,
        initial_anchors=initial_anchors,
    )


@dataclass(frozen=True)
class RemappedSnapshot:
    """Encoding state translated from an old plan to its successor.

    ``stack`` and ``current_id`` are the same context expressed in the
    new encoding: decoding them under the new plan yields the context the
    inputs decoded to under the old plan. ``events`` lists the
    addition-value history of the live context root-first — one
    ``("rec", site_key)`` per in-flight recursive call and one
    ``("av", site_key, new_av, had_record)`` per in-flight ordinary call
    (``had_record`` is False for sites the old plan left uninstrumented,
    e.g. elided zero-AV sites) — which is what
    :meth:`~repro.runtime.agent.DeltaPathProbe.hot_swap` consumes to
    rewrite its per-call bookkeeping.
    """

    stack: Tuple[StackEntry, ...]
    current_id: int
    events: Tuple[tuple, ...]


@dataclass
class PlanUpdate:
    """A repaired plan plus the ID-remap table back to its predecessor.

    Produced by :meth:`DeltaPathPlan.apply_delta`. ``plan`` is the new
    plan; :meth:`remap_snapshot` translates encoding state captured under
    ``old_plan`` — probe snapshots, or a live probe's internal stack —
    into the new encoding. Translation can fail with
    :class:`~repro.errors.PlanSwapError` when the live state cannot be
    represented under the new encoding (see :meth:`remap_snapshot`);
    callers should retry at a later safe point or fall back to a restart.
    """

    old_plan: DeltaPathPlan
    plan: DeltaPathPlan
    delta: GraphDelta
    reencode: ReencodeResult
    #: Nodes that are anchors under the new encoding but were not before.
    promoted_anchors: FrozenSet[str]

    def remap_snapshot(
        self,
        node: str,
        stack: Tuple[StackEntry, ...] = (),
        current_id: int = 0,
    ) -> RemappedSnapshot:
        """Translate ``(stack, current_id)`` observed at ``node``.

        The state is decoded under the old plan, then every piece is
        re-encoded by summing the new addition values along its edges, so
        the remapped state decodes to the identical context under the new
        plan. Raises :class:`~repro.errors.PlanSwapError` when no such
        translation exists:

        * a context edge was removed by the delta;
        * a context edge changed recursion classification (a normal call
          became a back edge or vice versa) — the stack would need an
          entry the old run never pushed (or one too many);
        * a node was *promoted* to anchor while a frame past it is live —
          under the new encoding its entry resets the ID, a reset the old
          run never performed (ghost resume targets that never executed
          are exempt);
        * a site the old plan left uninstrumented acquired a nonzero
          addition value while a call through it is in flight.
        """
        try:
            decoded = self.old_plan.decoder().decode(node, stack, current_id)
        except DecodingError as exc:
            raise PlanSwapError(
                f"state at {node!r} does not decode under the old plan: {exc}"
            ) from exc
        segments = decoded.segments
        new_graph = self.plan.graph
        new_back = frozenset(self.plan.recursion.removed_edges)
        events: List[tuple] = []
        values: List[int] = []
        for i, segment in enumerate(segments):
            value = 0
            edges = segment.edges
            last = len(edges) - 1
            for j, edge in enumerate(edges):
                key = (edge.caller, edge.label)
                if not new_graph.has_edge(edge):
                    raise PlanSwapError(
                        f"live context contains {edge}, which the new "
                        f"graph no longer has"
                    )
                if segment.kind is EntryKind.RECURSION and j == 0:
                    # The decoder-injected back edge: the runtime pushed a
                    # RECURSION entry here, so it must stay a back edge.
                    if not self.plan.recursion.is_recursive_call(
                        edge.site, edge.callee
                    ):
                        raise PlanSwapError(
                            f"in-flight recursive call {edge} is not a "
                            f"back edge under the new plan"
                        )
                    events.append(("rec", key))
                    continue
                if edge in new_back:
                    raise PlanSwapError(
                        f"in-flight call {edge} became a back edge under "
                        f"the new plan; its frame cannot be restructured"
                    )
                if edge.callee in self.promoted_anchors and not (
                    j == last and _is_ghost_boundary(segments, i)
                ):
                    raise PlanSwapError(
                        f"{edge.callee!r} was promoted to anchor but a "
                        f"live frame entered it without the ID reset the "
                        f"new encoding requires"
                    )
                av = self.plan.site_av.get(key)
                if av is None:
                    try:
                        av = self.plan.encoding.site_increment(edge.site)
                    except EncodingError as exc:
                        raise PlanSwapError(
                            f"site of in-flight call {edge} has no "
                            f"addition value under the new plan"
                        ) from exc
                had_record = key in self.old_plan.site_av
                if not had_record and av != 0:
                    raise PlanSwapError(
                        f"site {key} was uninstrumented under the old "
                        f"plan but has addition value {av} under the new "
                        f"one; its in-flight call cannot be undone"
                    )
                events.append(("av", key, av, had_record))
                value += av
            values.append(value)
        new_stack = tuple(
            self._remap_entry(entry, values[index])
            for index, entry in enumerate(stack)
        )
        return RemappedSnapshot(
            stack=new_stack,
            current_id=values[-1],
            events=tuple(events),
        )

    def _remap_entry(self, entry: StackEntry, saved_id: int) -> StackEntry:
        if entry.kind is EntryKind.UCP and entry.site is not None:
            key = (entry.site.caller, entry.site.label)
            expected = self.plan.site_sid.get(key, entry.expected_sid)
            return _dc_replace(entry, saved_id=saved_id, expected_sid=expected)
        return _dc_replace(entry, saved_id=saved_id)


def _is_ghost_boundary(segments, index: int) -> bool:
    """Whether segment ``index`` ends at a resume target that never ran.

    The final callee of a piece followed by a UCP gap whose
    ``previous_ran`` is False is only the *expected* dispatch target of a
    call that detoured into unloaded code — no frame of it is live, so
    promoting it to anchor cannot invalidate the state: the piece merely
    ends at its territory boundary.
    """
    if index + 1 >= len(segments):
        return False
    nxt = segments[index + 1]
    return nxt.kind is EntryKind.UCP and not nxt.previous_ran


def _is_synthetic(site: CallSite) -> bool:
    """Synthetic orphan-reattachment edges never execute."""
    label = site.label
    return (
        isinstance(label, tuple)
        and len(label) == 2
        and label[0] == "<synthetic-entry>"
    )
