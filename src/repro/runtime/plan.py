"""Static instrumentation plans.

A plan is everything the runtime agent needs, precomputed: per-call-site
addition values, recursion sites, SIDs for call path tracking, anchor
membership, and the encoding itself (for decoding). Building a plan runs
the full static pipeline of the paper's Section 5:

    program --0-CFA--> call graph --[selective projection]-->
    encoded graph --Algorithm 2--> addition values + anchors
                  --union-find--> SIDs
                  --back edges--> recursion sites

Plans are keyed by plain ``(caller, label)`` tuples rather than
:class:`CallSite` objects so the probe's hot path is dictionary lookups
on tuples the interpreter already has.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Hashable, Iterable, Optional, Set, Tuple

from repro.analysis.callgraph_builder import Policy, build_callgraph
from repro.core.anchored import AnchoredEncoding, encode_anchored
from repro.core.decoder import ContextDecoder, DecodedContext
from repro.core.recursion import RecursionPlan, plan_recursion
from repro.core.selective import project_interesting, reattach_orphans
from repro.core.sid import SidTable, compute_sids
from repro.core.widths import W64, Width
from repro.graph.callgraph import CallGraph, CallSite
from repro.lang.model import Program

__all__ = ["DeltaPathPlan", "build_plan", "build_plan_from_graph"]

SiteKey = Tuple[str, Hashable]


@dataclass
class DeltaPathPlan:
    """Everything the DeltaPath agent consults at runtime."""

    #: The graph the encoding ran on (selective projection applied).
    graph: CallGraph
    encoding: AnchoredEncoding
    sids: SidTable
    recursion: RecursionPlan
    #: (caller, label) -> addition value.
    site_av: Dict[SiteKey, int]
    #: (caller, label) -> recursive dispatch targets (back-edge callees).
    site_recursion: Dict[SiteKey, FrozenSet[str]]
    #: (caller, label) -> expected SID stored before the call.
    site_sid: Dict[SiteKey, int]
    #: (caller, label) -> first static dispatch target (the "expected
    #: callee" whose encoding value the ID represents after the site's
    #: addition; all targets of a site share the addition value).
    site_target: Dict[SiteKey, str]
    #: node -> (SID, is_anchor) for every instrumented function.
    node_info: Dict[str, Tuple[int, bool]]
    #: SID of the entry function (the initial "expected" value).
    entry_sid: int
    #: True when zero-addition-value sites were dropped from the tables
    #: (the Section 8 hot-edge optimization); incompatible with CPT.
    zero_elided: bool = False

    @property
    def instrumented_nodes(self) -> Set[str]:
        return set(self.node_info)

    @property
    def instrumented_site_count(self) -> int:
        """Table 1's CS column: call sites carrying instrumentation."""
        return len(
            set(self.site_av) | set(self.site_recursion)
        )

    def decoder(self) -> ContextDecoder:
        return ContextDecoder(self.encoding)

    def decode_snapshot(self, node: str, snapshot) -> DecodedContext:
        """Decode a probe snapshot ``(stack, id)`` taken at ``node``."""
        stack, current_id = snapshot
        return self.decoder().decode(node, stack, current_id)


def build_plan_from_graph(
    graph: CallGraph,
    width: Width = W64,
    application_only: bool = False,
    edge_priority: Optional[Callable] = None,
    elide_zero_av_sites: bool = False,
    initial_anchors: Iterable[str] = (),
) -> DeltaPathPlan:
    """Build a plan from an already-constructed call graph.

    ``application_only`` applies selective encoding (Section 4.2): nodes
    whose ``library`` attribute is true are excluded from the encoded
    world; orphaned application nodes are re-rooted with synthetic entry
    edges so their downstream encodings stay decodable.

    ``initial_anchors`` seeds Algorithm 2 (e.g. from
    :func:`repro.core.anchorplan.suggest_anchors`, or to pin anchors in
    tests); Algorithm 2 may still add more on overflow.

    ``edge_priority`` (usually from
    :func:`repro.runtime.profiling.edge_priority_from_counts`) makes hot
    edges receive the zero addition values; ``elide_zero_av_sites`` then
    drops those sites from the instrumentation tables entirely — the
    Section 8 hot-edge optimization. Eliding is incompatible with call
    path tracking (the agent enforces this).
    """
    if application_only:
        selection = project_interesting(
            graph,
            lambda n: not graph.node_attrs(n).get("library", False),
        )
        encoded_graph = reattach_orphans(selection)
    else:
        encoded_graph = graph

    recursion = plan_recursion(encoded_graph)
    encoding = encode_anchored(
        encoded_graph,
        width=width,
        edge_priority=edge_priority,
        initial_anchors=initial_anchors,
    )
    sids = compute_sids(encoded_graph)

    site_av: Dict[SiteKey, int] = {}
    site_sid: Dict[SiteKey, int] = {}
    site_target: Dict[SiteKey, str] = {}
    for site, av in encoding.av.items():
        key = (site.caller, site.label)
        if _is_synthetic(site):
            continue
        if elide_zero_av_sites and av == 0:
            continue  # encoding-free hot site: no instrumentation at all
        site_av[key] = av
        site_sid[key] = sids.expected_sid(site)
        site_target[key] = encoded_graph.site_targets(site)[0].callee

    site_recursion: Dict[SiteKey, FrozenSet[str]] = {}
    for site, targets in recursion.recursive_targets.items():
        key = (site.caller, site.label)
        site_recursion[key] = targets
        if key not in site_sid:
            site_sid[key] = sids.expected_sid(site)
        if key not in site_target:
            site_target[key] = encoded_graph.site_targets(site)[0].callee

    anchors = set(encoding.anchors)
    node_info = {
        node: (sids.node_sid(node), node in anchors)
        for node in encoded_graph.nodes
    }
    return DeltaPathPlan(
        graph=encoded_graph,
        encoding=encoding,
        sids=sids,
        recursion=recursion,
        site_av=site_av,
        site_recursion=site_recursion,
        site_sid=site_sid,
        site_target=site_target,
        node_info=node_info,
        entry_sid=sids.node_sid(encoded_graph.entry),
        zero_elided=elide_zero_av_sites,
    )


def build_plan(
    program: Program,
    policy: Policy = Policy.ZERO_CFA,
    width: Width = W64,
    application_only: bool = False,
    edge_priority: Optional[Callable] = None,
    elide_zero_av_sites: bool = False,
    initial_anchors: Iterable[str] = (),
) -> DeltaPathPlan:
    """Full pipeline: program -> static call graph -> plan."""
    graph = build_callgraph(program, policy=policy, include_dynamic=False)
    return build_plan_from_graph(
        graph,
        width=width,
        application_only=application_only,
        edge_priority=edge_priority,
        elide_zero_av_sites=elide_zero_av_sites,
        initial_anchors=initial_anchors,
    )


def _is_synthetic(site: CallSite) -> bool:
    """Synthetic orphan-reattachment edges never execute."""
    label = site.label
    return (
        isinstance(label, tuple)
        and len(label) == 2
        and label[0] == "<synthetic-entry>"
    )
