"""Probe interface: the runtime half of an instrumentation agent.

The paper's runtime component is a Java agent that rewrites call sites and
method entries/exits at class-load time. Our interpreter reports every
call boundary to a *probe*; the probe decides — from its static plan —
which of those boundaries are instrumented and executes the corresponding
encoding operations. Uninstrumented code (dynamic classes, excluded
library components) therefore costs the probe nothing, matching the
paper's "no encoding or UCP detection code is executed inside the
excluded components".

Probe call protocol (enforced by the interpreter, strictly LIFO):

    before_call(caller, label, callee)
    enter_function(callee)
    ... nested activity ...
    exit_function(callee)
    after_call(caller, label, callee)

``snapshot(node)`` returns a hashable encoding of the current calling
context — what an application would log at an event point.
"""

from __future__ import annotations

from typing import Hashable, Optional

__all__ = ["Probe", "NullProbe"]


class Probe:
    """Base probe: all hooks are no-ops; subclass and override."""

    #: Human-readable configuration name (used in benchmark tables).
    name = "base"

    def begin_execution(self, entry: str) -> None:
        """Called once before the entry function runs."""

    def before_call(self, caller: str, label: Hashable, callee: str) -> None:
        """Called at a call site, before the callee's entry."""

    def enter_function(self, node: str) -> None:
        """Called at a function's entry point."""

    def exit_function(self, node: str) -> None:
        """Called at a function's exit point."""

    def after_call(self, caller: str, label: Hashable, callee: str) -> None:
        """Called after the call returns, back in the caller."""

    def end_execution(self) -> None:
        """Called once after the entry function returns."""

    def snapshot(self, node: str) -> Hashable:
        """The current context encoding as observed at ``node``."""
        raise NotImplementedError


class NullProbe(Probe):
    """The uninstrumented baseline (the paper's "native" runs)."""

    name = "native"

    def snapshot(self, node: str) -> Hashable:
        return None
