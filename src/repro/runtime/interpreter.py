"""The JIP interpreter: the reproduction's JVM stand-in.

Executes a :class:`~repro.lang.model.Program` deterministically (seeded
branch decisions and receiver choices), reporting every call boundary to
a :class:`~repro.runtime.probes.Probe` — the instrumentation agent — and
every function entry/exit to an optional collector (the measurement
harness).

Runtime semantics mirrored from the JVM where they matter to the paper:

* **Dynamic dispatch** — a virtual call picks a receiver class from the
  pool of *instantiated* classes compatible with the static base type,
  then resolves the method Java-style up the superclass chain.
* **Dynamic class loading** — classes flagged ``dynamic`` join the world
  only when first instantiated or statically invoked; a load event is
  recorded, and from then on virtual sites can dispatch into them (the
  unexpected call paths of Section 4.1).
* **Process persistence** — interpreter state (loaded classes, receiver
  pools) persists across ``run()`` calls, like a warmed-up JVM running
  successive benchmark operations.

Call-site labels emitted to probes are identical to the labels
:func:`repro.analysis.call_sites_of` produces, so static plans and the
runtime agree without a lookup table.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.errors import DispatchError, WorkloadError
from repro.lang.model import (
    Branch,
    Event,
    Loop,
    MethodRef,
    New,
    Program,
    StaticCall,
    Stmt,
    VirtualCall,
    Work,
)
from repro.runtime.events import EventKind, Trace, TraceEvent
from repro.runtime.probes import NullProbe, Probe

__all__ = ["Interpreter"]


class Interpreter:
    """Executes JIP programs under a probe.

    Parameters
    ----------
    program:
        The validated program to run.
    probe:
        Instrumentation agent; defaults to :class:`NullProbe` (native).
    seed:
        Seeds branch decisions and receiver choices; same seed, same
        execution, regardless of the probe (probes never consume
        randomness), so overhead comparisons run identical workloads.
    trace:
        Optional :class:`Trace` recording every event (tests only).
    collector:
        Optional object with ``on_entry(node, depth)``, ``on_exit(node)``
        and ``on_event(tag, node, depth)`` hooks (see
        :mod:`repro.runtime.collector`).
    max_depth:
        Call-depth guard against runaway recursion in workloads.
    """

    def __init__(
        self,
        program: Program,
        probe: Optional[Probe] = None,
        seed: int = 0,
        trace: Optional[Trace] = None,
        collector=None,
        max_depth: int = 2000,
    ):
        program.validate()
        self.program = program
        self.probe = probe if probe is not None else NullProbe()
        self.trace = trace
        self.collector = collector
        self.max_depth = max_depth
        self._rng = random.Random(seed)
        self._depth = 0
        self._work_done = 0
        # Loaded world: non-dynamic classes are pre-loaded (on the class
        # path); dynamic ones join at first use.
        self._loaded: set = {
            k.name for k in program.classes if not k.dynamic
        }
        # base class -> ordered list of instantiated compatible classes.
        self._pools: Dict[str, List[str]] = {}
        self._pool_version = 0
        # (base, method, pool version) -> dispatch candidates.
        self._dispatch_cache: Dict[Tuple[str, str, int], List[MethodRef]] = {}
        # (class, method) -> resolved ref or None.
        self._resolve_cache: Dict[Tuple[str, str], Optional[MethodRef]] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, operations: int = 1) -> None:
        """Execute the entry method ``operations`` times."""
        entry = self.program.entry
        for _ in range(operations):
            self.probe.begin_execution(str(entry))
            self._invoke_entry(entry)
            self.probe.end_execution()

    @property
    def work_done(self) -> int:
        """Total abstract work units executed (sanity check for benches)."""
        return self._work_done

    @property
    def loaded_classes(self) -> List[str]:
        return sorted(self._loaded)

    def instantiate(self, klass: str) -> None:
        """Programmatically instantiate a class (workload setup)."""
        self._do_new(klass)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _invoke_entry(self, entry: MethodRef) -> None:
        node = str(entry)
        self._depth = 1
        self.probe.enter_function(node)
        if self.collector is not None:
            self.collector.on_entry(node, self._depth, self.probe)
        self._exec_body(self.program.method(entry).body, entry, "")
        if self.collector is not None:
            self.collector.on_exit(node)
        self.probe.exit_function(node)
        self._depth = 0

    def _exec_body(
        self, body: Sequence[Stmt], owner: MethodRef, prefix: str
    ) -> None:
        for index, stmt in enumerate(body):
            label = f"{prefix}{index}"
            kind = type(stmt)
            if kind is StaticCall:
                self._do_static_call(stmt, owner, label)
            elif kind is VirtualCall:
                self._do_virtual_call(stmt, owner, label)
            elif kind is Work:
                self._do_work(stmt.units)
            elif kind is Loop:
                inner = f"{label}."
                for _ in range(stmt.count):
                    self._exec_body(stmt.body, owner, inner)
            elif kind is Branch:
                if self._rng.random() < stmt.weight:
                    self._exec_body(stmt.then, owner, f"{label}.t")
                else:
                    self._exec_body(stmt.orelse, owner, f"{label}.e")
            elif kind is New:
                self._do_new(stmt.klass)
            elif kind is Event:
                self._do_event(stmt.tag, owner)
            else:  # pragma: no cover - model is closed
                raise WorkloadError(f"unknown statement {stmt!r}")

    def _do_static_call(
        self, stmt: StaticCall, owner: MethodRef, label: str
    ) -> None:
        target = stmt.target
        self._ensure_loaded(target.klass)
        self._call(owner, label, target)

    def _do_virtual_call(
        self, stmt: VirtualCall, owner: MethodRef, label: str
    ) -> None:
        candidates = self._dispatch_candidates(stmt.base, stmt.method)
        if not candidates:
            raise DispatchError(
                f"{owner}@{label}: virtual call {stmt.base}.{stmt.method} "
                f"has no instantiated receiver (instantiate a compatible "
                f"class first)"
            )
        if len(candidates) == 1:
            target = candidates[0]
        else:
            target = candidates[self._rng.randrange(len(candidates))]
        self._call(owner, label, target)

    def _call(self, owner: MethodRef, label: str, target: MethodRef) -> None:
        caller_node = str(owner)
        callee_node = str(target)
        if self._depth >= self.max_depth:
            raise WorkloadError(
                f"call depth exceeded {self.max_depth} at "
                f"{caller_node}@{label} -> {callee_node}"
            )
        probe = self.probe
        probe.before_call(caller_node, label, callee_node)
        self._depth += 1
        if self.trace is not None:
            self.trace.append(
                TraceEvent(
                    EventKind.CALL,
                    node=callee_node,
                    site=label,
                    caller=caller_node,
                    depth=self._depth,
                )
            )
        probe.enter_function(callee_node)
        if self.collector is not None:
            self.collector.on_entry(callee_node, self._depth, probe)
        self._exec_body(
            self.program.method(target).body, target, ""
        )
        if self.collector is not None:
            self.collector.on_exit(callee_node)
        probe.exit_function(callee_node)
        self._depth -= 1
        if self.trace is not None:
            self.trace.append(
                TraceEvent(
                    EventKind.RETURN,
                    node=callee_node,
                    site=label,
                    caller=caller_node,
                    depth=self._depth,
                )
            )
        probe.after_call(caller_node, label, callee_node)

    # ------------------------------------------------------------------
    # World state
    # ------------------------------------------------------------------
    def _ensure_loaded(self, klass_name: str) -> None:
        if klass_name in self._loaded:
            return
        # Loading a class loads its superclass chain first (JVM rules).
        for ancestor in reversed(self.program.supertypes(klass_name)):
            if ancestor not in self._loaded:
                self._loaded.add(ancestor)
                if self.trace is not None:
                    self.trace.append(
                        TraceEvent(
                            EventKind.LOAD, node=ancestor, tag=ancestor,
                            depth=self._depth,
                        )
                    )

    def _do_new(self, klass_name: str) -> None:
        self._ensure_loaded(klass_name)
        pools = self._pools
        changed = False
        for ancestor in self.program.supertypes(klass_name):
            pool = pools.setdefault(ancestor, [])
            if klass_name not in pool:
                pool.append(klass_name)
                changed = True
        if changed:
            self._pool_version += 1

    def _dispatch_candidates(
        self, base: str, method: str
    ) -> List[MethodRef]:
        key = (base, method, self._pool_version)
        cached = self._dispatch_cache.get(key)
        if cached is not None:
            return cached
        candidates: List[MethodRef] = []
        seen = set()
        for receiver in self._pools.get(base, ()):
            resolved = self._resolve(receiver, method)
            if resolved is not None and resolved not in seen:
                seen.add(resolved)
                candidates.append(resolved)
        self._dispatch_cache[key] = candidates
        return candidates

    def _resolve(self, klass: str, method: str) -> Optional[MethodRef]:
        key = (klass, method)
        if key in self._resolve_cache:
            return self._resolve_cache[key]
        try:
            resolved = self.program.resolve(klass, method)
        except DispatchError:
            resolved = None
        self._resolve_cache[key] = resolved
        return resolved

    def _do_work(self, units: int) -> None:
        # Busy-work standing in for real computation between calls; cheap
        # but not optimized away, so instrumentation overhead is measured
        # against a realistic non-zero baseline.
        acc = 0
        for _ in range(units):
            acc += 1
        self._work_done += acc

    def _do_event(self, tag: str, owner: MethodRef) -> None:
        node = str(owner)
        if self.collector is not None:
            self.collector.on_event(tag, node, self._depth, self.probe)
        if self.trace is not None:
            self.trace.append(
                TraceEvent(EventKind.EVENT, node=node, tag=tag, depth=self._depth)
            )
