"""Per-thread encoding state (paper Section 8, "Optimizations").

The paper's implementation stores "the current encoding result for each
thread" in thread-local variables. Our model makes that explicit: a
:class:`ThreadedRun` gives each logical thread its own probe instance
(the thread-local state) over one shared static plan, and interleaves
the threads' operations under a seeded scheduler. Probes never share
mutable state, so contexts collected on different threads cannot
corrupt one another — the property the thread-local design buys.

Interleaving is at operation granularity: JIP has no preemption points
inside an operation, and the encoding state is balanced (empty stack,
ID 0) between operations, which is exactly when a JVM thread's state is
quiescent too. Finer-grained interleaving would exercise nothing new —
per-thread state is disjoint by construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import DispatchError, WorkloadError
from repro.lang.model import Program
from repro.runtime.collector import ContextCollector
from repro.runtime.interpreter import Interpreter
from repro.runtime.probes import Probe

__all__ = ["ThreadedRun", "ThreadResult"]


@dataclass
class ThreadResult:
    """One logical thread's outcome."""

    thread_id: int
    operations: int
    probe: Probe
    collector: Optional[ContextCollector]
    interpreter: Interpreter
    #: True once the thread's interpreter raised (workload exhausted its
    #: depth budget or dispatch failed); a halted thread is never
    #: scheduled again.
    halted: bool = False
    #: The error that halted the thread, for post-mortem reporting.
    error: Optional[str] = None


class ThreadedRun:
    """Runs N logical threads of one program under per-thread probes.

    Parameters
    ----------
    program:
        The shared program (each thread gets its own interpreter — its
        own heap/receiver world, like a thread confined to its own
        allocation site population; a shared-world variant would only
        change dispatch distributions, not encoding behaviour).
    probe_factory:
        Called once per thread; returns that thread's probe (its
        thread-local encoding state).
    threads:
        Number of logical threads.
    collector_factory:
        Optional; called once per thread for per-thread collection.
    seed:
        Seeds both the scheduler and (offset per thread) the
        interpreters, so runs are reproducible.
    """

    def __init__(
        self,
        program: Program,
        probe_factory: Callable[[int], Probe],
        threads: int = 2,
        collector_factory: Optional[Callable[[int], ContextCollector]] = None,
        seed: int = 0,
        max_depth: int = 2000,
        prepare: Optional[Callable[[Interpreter], None]] = None,
    ):
        if threads < 1:
            raise WorkloadError("need at least one thread")
        self._scheduler = random.Random(seed)
        self._results: List[ThreadResult] = []
        for thread_id in range(threads):
            probe = probe_factory(thread_id)
            collector = (
                collector_factory(thread_id) if collector_factory else None
            )
            interpreter = Interpreter(
                program,
                probe=probe,
                seed=seed * 1000 + thread_id,
                collector=collector,
                max_depth=max_depth,
            )
            if prepare is not None:
                prepare(interpreter)
            self._results.append(
                ThreadResult(
                    thread_id=thread_id,
                    operations=0,
                    probe=probe,
                    collector=collector,
                    interpreter=interpreter,
                )
            )

    # ------------------------------------------------------------------
    def run(
        self,
        total_operations: int,
        operations_per_thread: Optional[int] = None,
    ) -> List[ThreadResult]:
        """Interleave ``total_operations`` operations across threads.

        The scheduler picks a *runnable* thread uniformly at random per
        operation (seeded), mimicking an OS scheduler at the quiescent
        points where thread-local encoding state is empty. A thread
        whose interpreter raises (depth budget exhausted, dispatch
        failure) halts — it is marked in its :class:`ThreadResult` and
        never scheduled again, instead of the old behaviour of
        re-running the dead interpreter and aborting every other
        thread's progress. ``operations_per_thread`` optionally caps any
        single thread's share. The run ends early once no thread is
        runnable.
        """
        completed = 0
        while completed < total_operations:
            runnable = [
                r
                for r in self._results
                if not r.halted
                and (
                    operations_per_thread is None
                    or r.operations < operations_per_thread
                )
            ]
            if not runnable:
                break
            result = self._scheduler.choice(runnable)
            try:
                result.interpreter.run(operations=1)
            except (WorkloadError, DispatchError) as exc:
                # A halt costs no budget: the operation never ran.
                result.halted = True
                result.error = f"{type(exc).__name__}: {exc}"
                continue
            result.operations += 1
            completed += 1
        return self._results

    @property
    def results(self) -> List[ThreadResult]:
        return list(self._results)

    def merged_unique_contexts(self) -> set:
        """Union of unique (node, snapshot) pairs across threads."""
        merged: set = set()
        for result in self._results:
            if result.collector is not None:
                merged |= result.collector.unique
        return merged
