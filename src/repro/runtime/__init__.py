"""Execution substrate: interpreter, instrumentation agent, collection."""

from repro.runtime.agent import DeltaPathProbe
from repro.runtime.collector import CollectedStats, ContextCollector
from repro.runtime.events import EventKind, Trace, TraceEvent
from repro.runtime.interpreter import Interpreter
from repro.runtime.plan import DeltaPathPlan, build_plan, build_plan_from_graph
from repro.runtime.probes import NullProbe, Probe
from repro.runtime.profiling import EdgeProfiler, edge_priority_from_counts
from repro.runtime.threads import ThreadedRun, ThreadResult

__all__ = [
    "CollectedStats",
    "ContextCollector",
    "DeltaPathPlan",
    "DeltaPathProbe",
    "EdgeProfiler",
    "EventKind",
    "Interpreter",
    "NullProbe",
    "Probe",
    "ThreadResult",
    "ThreadedRun",
    "Trace",
    "TraceEvent",
    "build_plan",
    "build_plan_from_graph",
    "edge_priority_from_counts",
]
