"""Execution event records and optional full tracing.

The interpreter can record every call/return/event for tests that assert
exact execution behaviour. Benchmarks run without a trace (recording
everything would dominate the measurement, like writing a log per call).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Hashable, List, Optional, Tuple

__all__ = ["EventKind", "TraceEvent", "Trace"]


class EventKind(enum.Enum):
    CALL = "call"
    RETURN = "return"
    EVENT = "event"
    LOAD = "load"


@dataclass(frozen=True)
class TraceEvent:
    """One dynamic event.

    ``node`` is the executing function (callee for CALL/RETURN); ``site``
    the call-site label for CALL/RETURN; ``tag`` the event tag or loaded
    class name; ``depth`` the call depth *after* the event.
    """

    kind: EventKind
    node: str
    site: Optional[Hashable] = None
    caller: Optional[str] = None
    tag: Optional[str] = None
    depth: int = 0


class Trace:
    """An append-only list of trace events with convenience queries."""

    def __init__(self):
        self.events: List[TraceEvent] = []

    def append(self, event: TraceEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def calls(self) -> List[TraceEvent]:
        return [e for e in self.events if e.kind is EventKind.CALL]

    def loads(self) -> List[TraceEvent]:
        return [e for e in self.events if e.kind is EventKind.LOAD]

    def tagged(self, tag: str) -> List[TraceEvent]:
        return [
            e for e in self.events
            if e.kind is EventKind.EVENT and e.tag == tag
        ]

    def max_depth(self) -> int:
        return max((e.depth for e in self.events), default=0)
