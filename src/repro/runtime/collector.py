"""Context collection for the dynamic-characteristics experiments.

The paper's Table 2 collects "the encoded calling contexts at the entry
of the instrumented application functions". The collector does exactly
that: at every entry of a node of interest it takes the probe's snapshot
and accumulates

* total contexts collected,
* max/avg context depth (number of interest functions on the stack —
  the collector keeps its own shadow depth),
* unique encodings (distinct ``(node, snapshot)`` pairs),
* probe-specific metrics (DeltaPath stack depth, UCP count, max ID),
* optionally the ground-truth contexts (shadow stack), which exposes
  hash collisions: a baseline whose unique-encoding count is below the
  unique-truth count has merged distinct contexts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

__all__ = ["ContextCollector", "CollectedStats"]


@dataclass
class CollectedStats:
    """Summary in the shape of the paper's Table 2 columns."""

    total_contexts: int
    max_depth: int
    avg_depth: float
    unique_encodings: int
    unique_truth: Optional[int]
    max_stack_depth: Optional[int]
    avg_stack_depth: Optional[float]
    max_ucp: Optional[int]
    avg_ucp: Optional[float]
    max_id: Optional[int]

    @property
    def collisions(self) -> Optional[int]:
        """Distinct contexts merged by the encoding (0 for precise ones)."""
        if self.unique_truth is None:
            return None
        return self.unique_truth - self.unique_encodings


class ContextCollector:
    """Collects context observations at instrumented-function entries.

    Parameters
    ----------
    interest:
        Node names to collect at; ``None`` collects at every entry.
    track_truth:
        Also maintain the true context (shadow stack) per observation;
        costs memory/time, used to measure baseline hash collisions.
    sample_uniques_only:
        When True, per-observation metric lists are not kept (cheaper for
        very long runs); max/avg are still maintained incrementally.
    """

    def __init__(
        self,
        interest: Optional[Set[str]] = None,
        track_truth: bool = False,
        collect_events: bool = True,
    ):
        self.interest = interest
        self.track_truth = track_truth
        self.collect_events = collect_events

        self.total = 0
        self.depth_sum = 0
        self.max_depth = 0
        self.unique: Set[Tuple[str, Hashable]] = set()
        self.truth_unique: Set[Tuple[str, Tuple[str, ...]]] = set()
        self._shadow: List[str] = []

        self._metrics_n = 0
        self._stack_depth_sum = 0
        self.max_stack_depth = 0
        self._ucp_sum = 0
        self.max_ucp = 0
        self.max_id = 0
        self._saw_metrics = False

        #: (tag, node, snapshot) tuples from Event statements.
        self.events: List[Tuple[str, str, Hashable]] = []

    # ------------------------------------------------------------------
    # Interpreter hooks
    # ------------------------------------------------------------------
    def on_entry(self, node: str, depth: int, probe) -> None:
        if self.interest is not None and node not in self.interest:
            return
        self._shadow.append(node)
        shadow_depth = len(self._shadow)
        self.total += 1
        self.depth_sum += shadow_depth
        if shadow_depth > self.max_depth:
            self.max_depth = shadow_depth

        snapshot = probe.snapshot(node)
        self.unique.add((node, snapshot))
        if self.track_truth:
            self.truth_unique.add((node, tuple(self._shadow)))

        metrics = getattr(probe, "context_metrics", None)
        if metrics is not None:
            self._saw_metrics = True
            values = metrics()
            self._metrics_n += 1
            stack_depth = values.get("stack_depth", 0)
            ucp = values.get("ucp", 0)
            current_id = values.get("id", 0)
            self._stack_depth_sum += stack_depth
            self._ucp_sum += ucp
            if stack_depth > self.max_stack_depth:
                self.max_stack_depth = stack_depth
            if ucp > self.max_ucp:
                self.max_ucp = ucp
            if current_id > self.max_id:
                self.max_id = current_id

    def on_exit(self, node: str) -> None:
        if self.interest is not None and node not in self.interest:
            return
        if self._shadow and self._shadow[-1] == node:
            self._shadow.pop()

    def on_event(self, tag: str, node: str, depth: int, probe) -> None:
        if not self.collect_events:
            return
        self.events.append((tag, node, probe.snapshot(node)))

    # ------------------------------------------------------------------
    def stats(self) -> CollectedStats:
        n = max(self.total, 1)
        mn = max(self._metrics_n, 1)
        return CollectedStats(
            total_contexts=self.total,
            max_depth=self.max_depth,
            avg_depth=self.depth_sum / n,
            unique_encodings=len(self.unique),
            unique_truth=len(self.truth_unique) if self.track_truth else None,
            max_stack_depth=self.max_stack_depth if self._saw_metrics else None,
            avg_stack_depth=(
                self._stack_depth_sum / mn if self._saw_metrics else None
            ),
            max_ucp=self.max_ucp if self._saw_metrics else None,
            avg_ucp=self._ucp_sum / mn if self._saw_metrics else None,
            max_id=self.max_id if self._saw_metrics else None,
        )
