"""Context collection for the dynamic-characteristics experiments.

The paper's Table 2 collects "the encoded calling contexts at the entry
of the instrumented application functions". The collector does exactly
that: at every entry of a node of interest it takes the probe's snapshot
and accumulates

* total contexts collected,
* max/avg context depth (number of interest functions on the stack —
  the collector keeps its own shadow depth),
* unique encodings (distinct ``(node, snapshot)`` pairs),
* probe-specific metrics (DeltaPath stack depth, UCP count, max ID),
* optionally ground-truth uniqueness (shadow stack), which exposes
  hash collisions: a baseline whose unique-encoding count is below the
  unique-truth count has merged distinct contexts.

Ground-truth retention is opt-in *per metric*: ``track_truth`` buys the
collision count (unique-truth cardinality, kept as fixed-size digests),
and only ``retain_truth`` additionally keeps the actual context tuples —
large runs that measure collisions no longer hold every truth context in
memory, and runs that measure neither hold nothing.

A collector can also stream observations onward: give it a ``sink``
(e.g. :meth:`repro.service.ContextService.sink`) and every snapshot is
handed off as ``sink(node, snapshot, probe)`` for ingestion/aggregation.
A failing sink must not take the instrumented program down with it:
``sink_errors`` picks the policy — ``"raise"`` (propagate, the historical
behavior), ``"drop"`` (count and continue), or ``"retain"`` (count and
keep the raw observation in a bounded buffer for later resubmission).
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass
from typing import Callable, Hashable, List, Optional, Set, Tuple

from repro import obs
from repro.errors import ReproError

_SINK_ERROR_POLICIES = ("raise", "drop", "retain")

__all__ = ["ContextCollector", "CollectedStats"]


@dataclass
class CollectedStats:
    """Summary in the shape of the paper's Table 2 columns."""

    total_contexts: int
    max_depth: int
    avg_depth: float
    unique_encodings: int
    unique_truth: Optional[int]
    max_stack_depth: Optional[int]
    avg_stack_depth: Optional[float]
    max_ucp: Optional[int]
    avg_ucp: Optional[float]
    max_id: Optional[int]

    @property
    def collisions(self) -> Optional[int]:
        """Distinct contexts merged by the encoding (0 for precise ones)."""
        if self.unique_truth is None:
            return None
        return self.unique_truth - self.unique_encodings


def _truth_digest(node: str, shadow: Tuple[str, ...]) -> bytes:
    """A fixed-size fingerprint of one ground-truth context.

    16-byte blake2b over the length-prefixed frames: collision
    probability is negligible at any realistic context population, and
    memory per unique context drops from the full frame tuple to 16
    bytes.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(node.encode())
    for frame in shadow:
        h.update(b"\x1f")
        h.update(frame.encode())
    return h.digest()


class ContextCollector:
    """Collects context observations at instrumented-function entries.

    Parameters
    ----------
    interest:
        Node names to collect at; ``None`` collects at every entry.
    track_truth:
        Measure ground-truth uniqueness (the collision metric). Keeps a
        16-byte digest per unique truth context, not the context itself.
    retain_truth:
        Additionally retain the full truth-context tuples in
        :attr:`truth_unique` (for code that enumerates them). Implies
        ``track_truth``; costs memory proportional to unique contexts.
    collect_events:
        Keep per-Event ``(tag, node, snapshot)`` records; disable for
        long runs that only need the aggregate statistics.
    sink:
        Optional handoff called as ``sink(node, snapshot, probe)`` for
        every observation — the bridge into
        :class:`repro.service.ContextService` ingestion.
    sink_errors:
        What a :class:`~repro.errors.ReproError` from the sink does to
        the instrumented run: ``"raise"`` propagates (default, the
        historical behavior), ``"drop"`` counts it and continues,
        ``"retain"`` counts it and keeps the raw ``(node, snapshot)``
        in :attr:`sink_retained` (bounded by ``sink_retain_capacity``,
        oldest evicted) for resubmission once the backend recovers.
        Non-``ReproError`` exceptions always propagate — they are bugs,
        not backend weather.
    """

    def __init__(
        self,
        interest: Optional[Set[str]] = None,
        track_truth: bool = False,
        collect_events: bool = True,
        retain_truth: bool = False,
        sink: Optional[Callable[[str, Hashable, object], None]] = None,
        sink_errors: str = "raise",
        sink_retain_capacity: int = 4096,
    ):
        if sink_errors not in _SINK_ERROR_POLICIES:
            raise ValueError(
                f"sink_errors must be one of {_SINK_ERROR_POLICIES}, "
                f"got {sink_errors!r}"
            )
        self.interest = interest
        self.track_truth = track_truth or retain_truth
        self.retain_truth = retain_truth
        self.collect_events = collect_events
        self.sink = sink
        self.sink_errors = sink_errors
        self.sink_failures = 0
        #: Raw (node, snapshot) pairs kept under ``sink_errors="retain"``.
        self.sink_retained = deque(maxlen=sink_retain_capacity)

        self.total = 0
        self.depth_sum = 0
        self.max_depth = 0
        self.unique: Set[Tuple[str, Hashable]] = set()
        #: Full truth contexts; populated only under ``retain_truth``.
        self.truth_unique: Set[Tuple[str, Tuple[str, ...]]] = set()
        self._truth_digests: Set[bytes] = set()
        self._shadow: List[str] = []

        self._metrics_n = 0
        self._stack_depth_sum = 0
        self.max_stack_depth = 0
        self._ucp_sum = 0
        self.max_ucp = 0
        self.max_id = 0
        self._saw_metrics = False

        #: (tag, node, snapshot) tuples from Event statements.
        self.events: List[Tuple[str, str, Hashable]] = []

    # ------------------------------------------------------------------
    # Interpreter hooks
    # ------------------------------------------------------------------
    def on_entry(self, node: str, depth: int, probe) -> None:
        if self.interest is not None and node not in self.interest:
            return
        self._shadow.append(node)
        shadow_depth = len(self._shadow)
        self.total += 1
        self.depth_sum += shadow_depth
        if shadow_depth > self.max_depth:
            self.max_depth = shadow_depth

        snapshot = probe.snapshot(node)
        self.unique.add((node, snapshot))
        if self.track_truth:
            shadow = tuple(self._shadow)
            self._truth_digests.add(_truth_digest(node, shadow))
            if self.retain_truth:
                self.truth_unique.add((node, shadow))
        if self.sink is not None:
            try:
                self.sink(node, snapshot, probe)
            except ReproError:
                if self.sink_errors == "raise":
                    raise
                self.sink_failures += 1
                obs.counter("collector.sink_errors").inc()
                if self.sink_errors == "retain":
                    self.sink_retained.append((node, snapshot))

        metrics = getattr(probe, "context_metrics", None)
        if metrics is not None:
            self._saw_metrics = True
            values = metrics()
            self._metrics_n += 1
            stack_depth = values.get("stack_depth", 0)
            ucp = values.get("ucp", 0)
            current_id = values.get("id", 0)
            self._stack_depth_sum += stack_depth
            self._ucp_sum += ucp
            if stack_depth > self.max_stack_depth:
                self.max_stack_depth = stack_depth
            if ucp > self.max_ucp:
                self.max_ucp = ucp
            if current_id > self.max_id:
                self.max_id = current_id

    def on_exit(self, node: str) -> None:
        if self.interest is not None and node not in self.interest:
            return
        if self._shadow and self._shadow[-1] == node:
            self._shadow.pop()

    def on_event(self, tag: str, node: str, depth: int, probe) -> None:
        if not self.collect_events:
            return
        self.events.append((tag, node, probe.snapshot(node)))

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush a buffering sink (e.g. ``ContextService.batch_sink``).

        Sinks that batch observations expose a ``flush`` attribute; a
        plain per-observation sink has nothing to flush and ``close``
        is a no-op. Call once the instrumented run is over, before
        flushing the service.
        """
        flush = getattr(self.sink, "flush", None)
        if callable(flush):
            flush()

    def stats(self) -> CollectedStats:
        # Gauges, not counters: stats() may be called repeatedly and the
        # registry should always reflect the latest aggregate state.
        registry = obs.get_registry()
        registry.gauge("collector.total_contexts").set(self.total)
        registry.gauge("collector.unique_encodings").set(len(self.unique))
        registry.gauge("collector.max_depth").set(self.max_depth)
        if self.track_truth:
            registry.gauge("collector.unique_truth").set(
                len(self._truth_digests)
            )
        n = max(self.total, 1)
        mn = max(self._metrics_n, 1)
        return CollectedStats(
            total_contexts=self.total,
            max_depth=self.max_depth,
            avg_depth=self.depth_sum / n,
            unique_encodings=len(self.unique),
            unique_truth=(
                len(self._truth_digests) if self.track_truth else None
            ),
            max_stack_depth=self.max_stack_depth if self._saw_metrics else None,
            avg_stack_depth=(
                self._stack_depth_sum / mn if self._saw_metrics else None
            ),
            max_ucp=self.max_ucp if self._saw_metrics else None,
            avg_ucp=self._ucp_sum / mn if self._saw_metrics else None,
            max_id=self.max_id if self._saw_metrics else None,
        )
