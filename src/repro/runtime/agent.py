"""The DeltaPath runtime agent (probe).

Executes the paper's instrumentation at the boundaries the interpreter
reports:

* **call site** (instrumented): ``ID += AV``; with call path tracking
  (CPT), also store the expected SID. A dispatch onto a back-edge target
  instead pushes a RECURSION entry and resets the ID.
* **function entry** (instrumented): with CPT, compare the expected SID
  against the function's own — mismatch pushes a UCP entry and resets;
  then, if the function is an anchor, push an ANCHOR entry and reset.
* **function exit**: pop whatever this frame's entry pushed, restoring
  the saved ID.
* **after call**: undo the site's effect (``ID -= AV`` or pop the
  RECURSION entry).

Uninstrumented functions (dynamically loaded classes, excluded library
components) hit dictionary misses at the top of each hook and fall
straight through — no encoding work, mirroring the paper's agent, which
never rewrites those classes.

Two implementation notes relative to the paper's Section 4.1:

* The expected-SID register is written at instrumented sites and *saved
  and restored around each instrumented call* (the paper: the expected
  SID "along with the call site and the current encoding ID value is
  saved"), so after a call returns, the register again describes the
  caller's last outstanding expectation. Between instrumented sites the
  register goes stale on purpose; a stale value coincidentally matching
  an entered function's SID is a (rare) missed detection inherent to the
  mechanism being reproduced.
* Where the paper saves ``(expected SID, call site, ID)`` at every
  instrumented site and pushes that saved triple on detection, we keep an
  *owner stack*: the node whose piece-relative encoding value the current
  ID represents (pushed at instrumented calls, popped on return). A UCP
  entry records the owner at detection time, which makes decoding resume
  at the correct frame even when instrumented calls completed between the
  last site and the detection — a corner where the saved-triple scheme
  would resume at an already-popped sibling frame. Same per-call cost
  (one push/pop), strictly better decoding; see DESIGN.md.
"""

from __future__ import annotations

import time
from typing import Hashable, List, Optional, Tuple

from repro import obs
from repro.core.stackmodel import EntryKind, StackEntry
from repro.errors import PlanSwapError, RuntimeEncodingError
from repro.graph.callgraph import CallSite
from repro.runtime.plan import DeltaPathPlan, PlanUpdate
from repro.runtime.probes import Probe

__all__ = ["DeltaPathProbe"]

# Frame flags: which pops a function's exit owes.
_F_NONE = 0
_F_UCP = 1
_F_ANCHOR = 2

# Call-record sentinel for recursion sites.
_REC = "rec"


class DeltaPathProbe(Probe):
    """Runtime encoding state driven by a :class:`DeltaPathPlan`."""

    def __init__(self, plan: DeltaPathPlan, cpt: bool = True):
        if cpt and plan.zero_elided:
            raise RuntimeEncodingError(
                "call path tracking needs every instrumented site to "
                "write its expected SID; rebuild the plan without "
                "elide_zero_av_sites (or run with cpt=False)"
            )
        self.cpt = cpt
        self.name = "deltapath+cpt" if cpt else "deltapath"
        self._bind_plan(plan)
        # Mutable encoding state.
        self._id = 0
        self._stack: List[StackEntry] = []
        self._expected_sid = plan.entry_sid
        self._expected_key: Optional[Tuple[str, Hashable]] = None
        # Owner stack (CPT only): (node, executed) whose piece-relative
        # value the current ID represents.
        self._owner: List[Tuple[str, bool]] = [(self._entry_node, True)]
        self._call_records: List[object] = []
        # Frame records: (flags, replaced owner-top or None).
        self._frames: List[Tuple[int, Optional[Tuple[str, bool]]]] = []
        # Statistics.
        self.ucp_detections = 0
        self.max_stack_depth = 0
        self.max_id_seen = 0
        self.hot_swaps = 0
        # Observability (repro.obs): with the default sample rate 0 the
        # snapshot hot path pays one integer increment and one test; a
        # rate N times every Nth snapshot into probe.snapshot_us.
        self._obs_rate = obs.probe_sample_rate()
        self._obs_n = 0
        self._obs_hist = (
            obs.histogram("probe.snapshot_us") if self._obs_rate else None
        )
        self._obs_tracer = obs.get_tracer() if self._obs_rate else None

    def _bind_plan(self, plan: DeltaPathPlan) -> None:
        """(Re)build the hot-path lookup tables from ``plan``.

        One combined record per instrumented site: (addition value or
        None, expected SID, first static target, recursive targets or
        None).
        """
        self.plan = plan
        self._site_info = {}
        for key, av in plan.site_av.items():
            self._site_info[key] = (
                av,
                plan.site_sid[key],
                plan.site_target[key],
                plan.site_recursion.get(key),
            )
        for key, rec in plan.site_recursion.items():
            if key not in self._site_info:
                self._site_info[key] = (
                    None,
                    plan.site_sid[key],
                    plan.site_target[key],
                    rec,
                )
        self._node_info = plan.node_info
        self._anchor_nodes = frozenset(
            node for node, (_sid, is_anchor) in plan.node_info.items()
            if is_anchor
        )
        self._entry_node = plan.graph.entry

    # ------------------------------------------------------------------
    # Probe hooks
    # ------------------------------------------------------------------
    def begin_execution(self, entry: str) -> None:
        self._id = 0
        self._stack.clear()
        self._call_records.clear()
        self._frames.clear()
        self._expected_sid = self.plan.entry_sid
        self._expected_key = None
        self._owner = [(self._entry_node, True)]

    def before_call(self, caller: str, label: Hashable, callee: str) -> None:
        key = (caller, label)
        info = self._site_info.get(key)
        if info is None:
            self._call_records.append(None)
            return
        av, sid, target, rec_targets = info
        if self.cpt and self._owner[-1][0] != caller:
            # The caller's frame predates its own instrumentation: it was
            # live inside a gap when a hot swap made its sites known (an
            # instrumented caller's entry always makes it the owner).
            # Its piece-relative position is unrepresentable, so treat
            # the call as uninstrumented — the callee's entry then runs
            # the SID check and re-establishes the gap representation.
            self._call_records.append(None)
            return
        if rec_targets is not None and callee in rec_targets:
            self._stack.append(
                StackEntry(
                    kind=EntryKind.RECURSION,
                    node=callee,
                    saved_id=self._id,
                    site=CallSite(caller, label),
                )
            )
            self._id = 0
            if self.cpt:
                self._call_records.append(
                    (_REC, self._expected_sid, self._expected_key)
                )
                self._expected_sid = sid
                self._expected_key = key
                self._owner.append((callee, False))
            else:
                self._call_records.append((_REC, 0, None))
            return
        if av is None:
            # A pure back-edge site dispatched to a non-recursive target
            # never happens (all its edges are back edges), but stay safe.
            self._call_records.append(None)
            return
        self._id += av
        if self.cpt:
            self._call_records.append(
                (av, self._expected_sid, self._expected_key)
            )
            self._expected_sid = sid
            self._expected_key = key
            # The owner must be a *static* target of the site (a dynamic
            # dispatch may land outside the encoded graph); all targets
            # share the addition value, so the first is arithmetically
            # exact. The callee's own entry corrects the name if it is
            # instrumented.
            self._owner.append((target, False))
        else:
            self._call_records.append((av, 0, None))

    def enter_function(self, node: str) -> None:
        if not self.cpt:
            # Without call path tracking only anchor entries/exits carry
            # any instrumentation (the paper's wo/CPT configuration).
            if node in self._anchor_nodes:
                self._stack.append(
                    StackEntry(
                        kind=EntryKind.ANCHOR, node=node, saved_id=self._id
                    )
                )
                self._id = 0
                depth = len(self._stack)
                if depth > self.max_stack_depth:
                    self.max_stack_depth = depth
            return
        info = self._node_info.get(node)
        if info is None:
            self._frames.append((_F_NONE, None))
            return
        sid, is_anchor = info
        flags = _F_NONE
        replaced: Optional[Tuple[str, bool]] = None
        if self.cpt:
            if self._expected_sid != sid:
                resume_node, resume_executed = self._owner[-1]
                self._stack.append(
                    StackEntry(
                        kind=EntryKind.UCP,
                        node=node,
                        saved_id=self._id,
                        site=(
                            CallSite(*self._expected_key)
                            if self._expected_key is not None
                            else None
                        ),
                        expected_sid=self._expected_sid,
                        resume_node=resume_node,
                        resume_executed=resume_executed,
                    )
                )
                self._id = 0
                self._owner.append((node, True))
                self.ucp_detections += 1
                flags |= _F_UCP
        if is_anchor:
            self._stack.append(
                StackEntry(kind=EntryKind.ANCHOR, node=node, saved_id=self._id)
            )
            self._id = 0
            if self.cpt:
                self._owner.append((node, True))
            flags |= _F_ANCHOR
        if self.cpt and flags == _F_NONE:
            # Plain instrumented entry: the current ID's value now belongs
            # to this (executing) function.
            replaced = self._owner[-1]
            self._owner[-1] = (node, True)
        self._frames.append((flags, replaced))
        depth = len(self._stack)
        if depth > self.max_stack_depth:
            self.max_stack_depth = depth

    def exit_function(self, node: str) -> None:
        if not self.cpt:
            if node in self._anchor_nodes:
                self._id = self._pop(EntryKind.ANCHOR, node).saved_id
            return
        if not self._frames:
            raise RuntimeEncodingError(f"unbalanced exit from {node!r}")
        flags, replaced = self._frames.pop()
        if flags & _F_ANCHOR:
            self._id = self._pop(EntryKind.ANCHOR, node).saved_id
            if self.cpt:
                self._owner.pop()
        if flags & _F_UCP:
            self._id = self._pop(EntryKind.UCP, node).saved_id
            if self.cpt:
                self._owner.pop()
        if replaced is not None:
            self._owner[-1] = replaced

    def after_call(self, caller: str, label: Hashable, callee: str) -> None:
        if not self._call_records:
            raise RuntimeEncodingError(
                f"unbalanced after_call at {caller}@{label}"
            )
        record = self._call_records.pop()
        if record is None:
            return
        kind_or_av, saved_sid, saved_key = record
        if kind_or_av is _REC:
            entry = self._stack.pop()
            if entry.kind is not EntryKind.RECURSION:
                raise RuntimeEncodingError(
                    f"expected RECURSION on stack top, found {entry.kind}"
                )
            self._id = entry.saved_id
        else:
            self._id -= kind_or_av
        if self.cpt:
            self._expected_sid = saved_sid
            self._expected_key = saved_key
            self._owner.pop()

    # ------------------------------------------------------------------
    # Plan repair
    # ------------------------------------------------------------------
    def hot_swap(self, update: PlanUpdate, at_node: str) -> None:
        """Swap in a repaired plan without losing the live context.

        ``update`` comes from :meth:`DeltaPathPlan.apply_delta` on the
        plan this probe is running; ``at_node`` is the node of the
        current innermost instrumented frame — any safe point where
        :meth:`snapshot` would be valid, such as the function entry that
        just detected a hazardous UCP. The whole encoding state (stack,
        current ID, per-call records, expected-SID register) is rewritten
        into the new encoding, so the in-flight context keeps decoding —
        a UCP caused by dynamic loading becomes a *repair*, not a restart.

        Raises :class:`~repro.errors.PlanSwapError`, leaving the probe
        untouched, when the live state cannot be expressed under the new
        encoding (see :meth:`PlanUpdate.remap_snapshot`); the caller may
        retry at a later safe point or fall back to ``begin_execution``.
        """
        t_start = time.perf_counter()
        registry = obs.get_registry()
        try:
            with obs.span("probe.hot_swap", node=at_node):
                self._hot_swap(update, at_node)
        except PlanSwapError:
            registry.counter("probe.hot_swap_failures").inc()
            raise
        registry.counter("probe.hot_swaps").inc()
        registry.histogram("probe.hot_swap_us").observe(
            time.perf_counter() - t_start
        )

    def _hot_swap(self, update: PlanUpdate, at_node: str) -> None:
        if update.old_plan is not self.plan:
            raise PlanSwapError(
                "plan update was derived from a different plan than the "
                "one this probe is running"
            )
        if self.cpt and update.plan.zero_elided:
            raise RuntimeEncodingError(
                "call path tracking needs every instrumented site to "
                "write its expected SID; the repaired plan elides "
                "zero-AV sites"
            )
        remapped = update.remap_snapshot(at_node, tuple(self._stack), self._id)
        # Rewrite the per-call bookkeeping: each non-None record pairs
        # with one context event, in push (root-first) order.
        record_events = [
            event for event in remapped.events
            if event[0] == "rec" or event[3]
        ]
        new_records: List[object] = []
        index = 0
        for record in self._call_records:
            if record is None:
                new_records.append(None)
                continue
            if index >= len(record_events):
                raise PlanSwapError(
                    "more in-flight call records than decoded context "
                    "calls; probe state is inconsistent"
                )
            event = record_events[index]
            index += 1
            kind_or_av, _saved_sid, saved_key = record
            if (kind_or_av is _REC) != (event[0] == "rec"):
                raise PlanSwapError(
                    "in-flight call records disagree with the decoded "
                    "context about recursion"
                )
            new_value = _REC if kind_or_av is _REC else event[2]
            new_records.append(
                (new_value, self._remap_sid(update.plan, saved_key), saved_key)
            )
        if index != len(record_events):
            raise PlanSwapError(
                "decoded context contains calls with no in-flight record; "
                "probe state is inconsistent"
            )
        new_expected = self._remap_sid(update.plan, self._expected_key)
        # All checks passed: commit atomically.
        self._bind_plan(update.plan)
        self._stack = list(remapped.stack)
        self._id = remapped.current_id
        self._call_records = new_records
        if self.cpt:
            self._expected_sid = new_expected
        self.hot_swaps += 1

    def _remap_sid(self, plan: DeltaPathPlan, key) -> int:
        if not self.cpt:
            return 0
        if key is None:
            return plan.entry_sid
        try:
            return plan.site_sid[key]
        except KeyError:
            raise PlanSwapError(
                f"site {key} has no expected SID under the new plan"
            ) from None

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def snapshot(self, node: str) -> Tuple[Tuple[StackEntry, ...], int]:
        """The current encoding: ``(stack, ID)`` — hashable, decodable."""
        if self._id > self.max_id_seen:
            self.max_id_seen = self._id
        self._obs_n = n = self._obs_n + 1
        rate = self._obs_rate
        if rate and not n % rate:
            t0 = time.perf_counter()
            out = (tuple(self._stack), self._id)
            self._obs_hist.observe(time.perf_counter() - t0)
            tracer = self._obs_tracer
            if tracer.enabled:
                tracer.instant(
                    "probe.snapshot", node=node, stack_depth=len(out[0])
                )
            return out
        return tuple(self._stack), self._id

    def end_execution(self) -> None:
        """Flush the sampled-observation tallies into the registry."""
        if self._obs_rate and self._obs_n:
            obs.counter("probe.snapshots").inc(self._obs_n)
            self._obs_n = 0

    def context_metrics(self) -> dict:
        """Per-observation metrics for the Table 2 collector.

        ``stack_depth`` counts the paper's way directly: the entry
        function is always an anchor, so the stack's bottom element
        records the entry node ("ideally, the stack only contains one
        element") and ``len(stack)`` is the paper's depth.
        """
        ucp_entries = sum(1 for e in self._stack if e.kind is EntryKind.UCP)
        return {
            "stack_depth": len(self._stack),
            "ucp": ucp_entries,
            "id": self._id,
        }

    # ------------------------------------------------------------------
    def _pop(self, kind: EntryKind, node: str) -> StackEntry:
        if not self._stack:
            raise RuntimeEncodingError(
                f"encoding stack empty popping {kind.name} at {node!r}"
            )
        entry = self._stack.pop()
        if entry.kind is not kind:
            raise RuntimeEncodingError(
                f"expected {kind.name} on stack top at {node!r}, found "
                f"{entry.kind.name}"
            )
        return entry
