"""The DeltaPath runtime agent (probe).

Executes the paper's instrumentation at the boundaries the interpreter
reports:

* **call site** (instrumented): ``ID += AV``; with call path tracking
  (CPT), also store the expected SID. A dispatch onto a back-edge target
  instead pushes a RECURSION entry and resets the ID.
* **function entry** (instrumented): with CPT, compare the expected SID
  against the function's own — mismatch pushes a UCP entry and resets;
  then, if the function is an anchor, push an ANCHOR entry and reset.
* **function exit**: pop whatever this frame's entry pushed, restoring
  the saved ID.
* **after call**: undo the site's effect (``ID -= AV`` or pop the
  RECURSION entry).

Uninstrumented functions (dynamically loaded classes, excluded library
components) hit dictionary misses at the top of each hook and fall
straight through — no encoding work, mirroring the paper's agent, which
never rewrites those classes.

Two implementation notes relative to the paper's Section 4.1:

* The expected-SID register is written at instrumented sites and *saved
  and restored around each instrumented call* (the paper: the expected
  SID "along with the call site and the current encoding ID value is
  saved"), so after a call returns, the register again describes the
  caller's last outstanding expectation. Between instrumented sites the
  register goes stale on purpose; a stale value coincidentally matching
  an entered function's SID is a (rare) missed detection inherent to the
  mechanism being reproduced.
* Where the paper saves ``(expected SID, call site, ID)`` at every
  instrumented site and pushes that saved triple on detection, we keep an
  *owner stack*: the node whose piece-relative encoding value the current
  ID represents (pushed at instrumented calls, popped on return). A UCP
  entry records the owner at detection time, which makes decoding resume
  at the correct frame even when instrumented calls completed between the
  last site and the detection — a corner where the saved-triple scheme
  would resume at an already-popped sibling frame. Same per-call cost
  (one push/pop), strictly better decoding; see DESIGN.md.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Tuple

from repro.core.stackmodel import EntryKind, StackEntry
from repro.errors import RuntimeEncodingError
from repro.graph.callgraph import CallSite
from repro.runtime.plan import DeltaPathPlan
from repro.runtime.probes import Probe

__all__ = ["DeltaPathProbe"]

# Frame flags: which pops a function's exit owes.
_F_NONE = 0
_F_UCP = 1
_F_ANCHOR = 2

# Call-record sentinel for recursion sites.
_REC = "rec"


class DeltaPathProbe(Probe):
    """Runtime encoding state driven by a :class:`DeltaPathPlan`."""

    def __init__(self, plan: DeltaPathPlan, cpt: bool = True):
        if cpt and plan.zero_elided:
            raise RuntimeEncodingError(
                "call path tracking needs every instrumented site to "
                "write its expected SID; rebuild the plan without "
                "elide_zero_av_sites (or run with cpt=False)"
            )
        self.plan = plan
        self.cpt = cpt
        self.name = "deltapath+cpt" if cpt else "deltapath"
        # Hot-path lookup tables. One combined record per instrumented
        # site: (addition value or None, expected SID, first static
        # target, recursive targets or None).
        self._site_info = {}
        for key, av in plan.site_av.items():
            self._site_info[key] = (
                av,
                plan.site_sid[key],
                plan.site_target[key],
                plan.site_recursion.get(key),
            )
        for key, rec in plan.site_recursion.items():
            if key not in self._site_info:
                self._site_info[key] = (
                    None,
                    plan.site_sid[key],
                    plan.site_target[key],
                    rec,
                )
        self._node_info = plan.node_info
        self._anchor_nodes = frozenset(
            node for node, (_sid, is_anchor) in plan.node_info.items()
            if is_anchor
        )
        self._entry_node = plan.graph.entry
        # Mutable encoding state.
        self._id = 0
        self._stack: List[StackEntry] = []
        self._expected_sid = plan.entry_sid
        self._expected_key: Optional[Tuple[str, Hashable]] = None
        # Owner stack (CPT only): (node, executed) whose piece-relative
        # value the current ID represents.
        self._owner: List[Tuple[str, bool]] = [(self._entry_node, True)]
        self._call_records: List[object] = []
        # Frame records: (flags, replaced owner-top or None).
        self._frames: List[Tuple[int, Optional[Tuple[str, bool]]]] = []
        # Statistics.
        self.ucp_detections = 0
        self.max_stack_depth = 0
        self.max_id_seen = 0

    # ------------------------------------------------------------------
    # Probe hooks
    # ------------------------------------------------------------------
    def begin_execution(self, entry: str) -> None:
        self._id = 0
        self._stack.clear()
        self._call_records.clear()
        self._frames.clear()
        self._expected_sid = self.plan.entry_sid
        self._expected_key = None
        self._owner = [(self._entry_node, True)]

    def before_call(self, caller: str, label: Hashable, callee: str) -> None:
        key = (caller, label)
        info = self._site_info.get(key)
        if info is None:
            self._call_records.append(None)
            return
        av, sid, target, rec_targets = info
        if rec_targets is not None and callee in rec_targets:
            self._stack.append(
                StackEntry(
                    kind=EntryKind.RECURSION,
                    node=callee,
                    saved_id=self._id,
                    site=CallSite(caller, label),
                )
            )
            self._id = 0
            if self.cpt:
                self._call_records.append(
                    (_REC, self._expected_sid, self._expected_key)
                )
                self._expected_sid = sid
                self._expected_key = key
                self._owner.append((callee, False))
            else:
                self._call_records.append((_REC, 0, None))
            return
        if av is None:
            # A pure back-edge site dispatched to a non-recursive target
            # never happens (all its edges are back edges), but stay safe.
            self._call_records.append(None)
            return
        self._id += av
        if self.cpt:
            self._call_records.append(
                (av, self._expected_sid, self._expected_key)
            )
            self._expected_sid = sid
            self._expected_key = key
            # The owner must be a *static* target of the site (a dynamic
            # dispatch may land outside the encoded graph); all targets
            # share the addition value, so the first is arithmetically
            # exact. The callee's own entry corrects the name if it is
            # instrumented.
            self._owner.append((target, False))
        else:
            self._call_records.append((av, 0, None))

    def enter_function(self, node: str) -> None:
        if not self.cpt:
            # Without call path tracking only anchor entries/exits carry
            # any instrumentation (the paper's wo/CPT configuration).
            if node in self._anchor_nodes:
                self._stack.append(
                    StackEntry(
                        kind=EntryKind.ANCHOR, node=node, saved_id=self._id
                    )
                )
                self._id = 0
                depth = len(self._stack)
                if depth > self.max_stack_depth:
                    self.max_stack_depth = depth
            return
        info = self._node_info.get(node)
        if info is None:
            self._frames.append((_F_NONE, None))
            return
        sid, is_anchor = info
        flags = _F_NONE
        replaced: Optional[Tuple[str, bool]] = None
        if self.cpt:
            if self._expected_sid != sid:
                resume_node, resume_executed = self._owner[-1]
                self._stack.append(
                    StackEntry(
                        kind=EntryKind.UCP,
                        node=node,
                        saved_id=self._id,
                        site=(
                            CallSite(*self._expected_key)
                            if self._expected_key is not None
                            else None
                        ),
                        expected_sid=self._expected_sid,
                        resume_node=resume_node,
                        resume_executed=resume_executed,
                    )
                )
                self._id = 0
                self._owner.append((node, True))
                self.ucp_detections += 1
                flags |= _F_UCP
        if is_anchor:
            self._stack.append(
                StackEntry(kind=EntryKind.ANCHOR, node=node, saved_id=self._id)
            )
            self._id = 0
            if self.cpt:
                self._owner.append((node, True))
            flags |= _F_ANCHOR
        if self.cpt and flags == _F_NONE:
            # Plain instrumented entry: the current ID's value now belongs
            # to this (executing) function.
            replaced = self._owner[-1]
            self._owner[-1] = (node, True)
        self._frames.append((flags, replaced))
        depth = len(self._stack)
        if depth > self.max_stack_depth:
            self.max_stack_depth = depth

    def exit_function(self, node: str) -> None:
        if not self.cpt:
            if node in self._anchor_nodes:
                self._id = self._pop(EntryKind.ANCHOR, node).saved_id
            return
        if not self._frames:
            raise RuntimeEncodingError(f"unbalanced exit from {node!r}")
        flags, replaced = self._frames.pop()
        if flags & _F_ANCHOR:
            self._id = self._pop(EntryKind.ANCHOR, node).saved_id
            if self.cpt:
                self._owner.pop()
        if flags & _F_UCP:
            self._id = self._pop(EntryKind.UCP, node).saved_id
            if self.cpt:
                self._owner.pop()
        if replaced is not None:
            self._owner[-1] = replaced

    def after_call(self, caller: str, label: Hashable, callee: str) -> None:
        if not self._call_records:
            raise RuntimeEncodingError(
                f"unbalanced after_call at {caller}@{label}"
            )
        record = self._call_records.pop()
        if record is None:
            return
        kind_or_av, saved_sid, saved_key = record
        if kind_or_av is _REC:
            entry = self._stack.pop()
            if entry.kind is not EntryKind.RECURSION:
                raise RuntimeEncodingError(
                    f"expected RECURSION on stack top, found {entry.kind}"
                )
            self._id = entry.saved_id
        else:
            self._id -= kind_or_av
        if self.cpt:
            self._expected_sid = saved_sid
            self._expected_key = saved_key
            self._owner.pop()

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def snapshot(self, node: str) -> Tuple[Tuple[StackEntry, ...], int]:
        """The current encoding: ``(stack, ID)`` — hashable, decodable."""
        if self._id > self.max_id_seen:
            self.max_id_seen = self._id
        return tuple(self._stack), self._id

    def context_metrics(self) -> dict:
        """Per-observation metrics for the Table 2 collector.

        ``stack_depth`` counts the paper's way directly: the entry
        function is always an anchor, so the stack's bottom element
        records the entry node ("ideally, the stack only contains one
        element") and ``len(stack)`` is the paper's depth.
        """
        ucp_entries = sum(1 for e in self._stack if e.kind is EntryKind.UCP)
        return {
            "stack_depth": len(self._stack),
            "ucp": ucp_entries,
            "id": self._id,
        }

    # ------------------------------------------------------------------
    def _pop(self, kind: EntryKind, node: str) -> StackEntry:
        if not self._stack:
            raise RuntimeEncodingError(
                f"encoding stack empty popping {kind.name} at {node!r}"
            )
        entry = self._stack.pop()
        if entry.kind is not kind:
            raise RuntimeEncodingError(
                f"expected {kind.name} on stack top at {node!r}, found "
                f"{entry.kind.name}"
            )
        return entry
