"""Edge-frequency profiling (feeds the Section 8 hot-edge optimization).

PCCE "profiles the program and then picks hot edges as encoding free
ones, that is, those with the addition value as zero. DeltaPath can also
benefit from this strategy." The pieces:

* :class:`EdgeProfiler` — a probe that counts call-edge executions
  (a profiling run's output);
* :func:`edge_priority_from_counts` — turns the counts into the
  ``edge_priority`` callable the encoders accept: hot edges are
  processed first per node and therefore receive the small (usually
  zero) addition values;
* plans built with ``elide_zero_av_sites=True`` then drop zero-valued
  sites from the instrumentation table entirely — the hot path executes
  no encoding code at all. (Only valid without call path tracking: CPT
  writes the expected SID at every instrumented site, so eliding a site
  would silence its checks; :class:`~repro.runtime.agent.DeltaPathProbe`
  refuses the combination.)
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, Hashable, Tuple

from repro.graph.callgraph import CallEdge
from repro.runtime.probes import Probe

__all__ = ["EdgeProfiler", "edge_priority_from_counts"]

EdgeKey = Tuple[str, Hashable, str]


class EdgeProfiler(Probe):
    """Counts how often each (caller, label, callee) edge executes."""

    name = "edge-profiler"

    def __init__(self):
        self.counts: Counter = Counter()

    def before_call(self, caller: str, label: Hashable, callee: str) -> None:
        self.counts[(caller, label, callee)] += 1

    def snapshot(self, node: str) -> None:
        return None

    def hottest(self, n: int = 10):
        """The ``n`` most-executed edges, hottest first."""
        return self.counts.most_common(n)


def edge_priority_from_counts(
    counts: Dict[EdgeKey, int]
) -> Callable[[CallEdge], float]:
    """An ``edge_priority`` for the encoders: hotter edges first.

    Unprofiled edges get priority 0 (processed last, in graph order —
    the sort is stable), so a partial profile degrades gracefully.
    """

    def priority(edge: CallEdge) -> float:
        return float(counts.get((edge.caller, edge.label, edge.callee), 0))

    return priority
