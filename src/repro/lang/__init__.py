"""JIP: the mini object-oriented language the reproduction analyses/runs."""

from repro.lang.builder import BodyBuilder, ProgramBuilder
from repro.lang.inline import inlinable_methods, inline_methods
from repro.lang.model import (
    Branch,
    Event,
    Klass,
    Loop,
    Method,
    MethodRef,
    New,
    Program,
    StaticCall,
    Stmt,
    VirtualCall,
    Work,
    iter_stmts,
)
from repro.lang.parser import parse_program
from repro.lang.serialize import format_program, program_from_dict, program_to_dict

__all__ = [
    "BodyBuilder",
    "Branch",
    "Event",
    "Klass",
    "inlinable_methods",
    "inline_methods",
    "Loop",
    "Method",
    "MethodRef",
    "New",
    "Program",
    "ProgramBuilder",
    "StaticCall",
    "Stmt",
    "VirtualCall",
    "Work",
    "iter_stmts",
    "format_program",
    "parse_program",
    "program_from_dict",
    "program_to_dict",
]
