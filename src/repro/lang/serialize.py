"""JIP program serialization (JSON) and pretty-printing back to source.

Programs round-trip two ways:

* :func:`program_to_dict` / :func:`program_from_dict` — a JSON-stable
  structural form (fixtures, shipping workloads next to plans);
* :func:`format_program` — regenerates parseable JIP source text, the
  inverse of :func:`repro.lang.parser.parse_program` (useful to inspect
  generated benchmarks and to diff program transformations like
  inlining).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import ProgramError
from repro.lang.model import (
    Branch,
    Event,
    Klass,
    Loop,
    Method,
    MethodRef,
    New,
    Program,
    StaticCall,
    Stmt,
    VirtualCall,
    Work,
)

__all__ = ["program_to_dict", "program_from_dict", "format_program"]

_FORMAT = "jip-program-v1"


# ----------------------------------------------------------------------
# JSON form
# ----------------------------------------------------------------------
def _stmt_to_json(stmt: Stmt) -> dict:
    if isinstance(stmt, StaticCall):
        return {"op": "call", "target": str(stmt.target)}
    if isinstance(stmt, VirtualCall):
        return {"op": "vcall", "base": stmt.base, "method": stmt.method}
    if isinstance(stmt, New):
        return {"op": "new", "klass": stmt.klass}
    if isinstance(stmt, Work):
        return {"op": "work", "units": stmt.units}
    if isinstance(stmt, Event):
        return {"op": "event", "tag": stmt.tag}
    if isinstance(stmt, Loop):
        return {
            "op": "loop",
            "count": stmt.count,
            "body": [_stmt_to_json(s) for s in stmt.body],
        }
    if isinstance(stmt, Branch):
        return {
            "op": "branch",
            "weight": stmt.weight,
            "then": [_stmt_to_json(s) for s in stmt.then],
            "orelse": [_stmt_to_json(s) for s in stmt.orelse],
        }
    raise ProgramError(f"unserializable statement {stmt!r}")


def _stmt_from_json(data: dict) -> Stmt:
    op = data.get("op")
    if op == "call":
        return StaticCall(MethodRef.parse(data["target"]))
    if op == "vcall":
        return VirtualCall(data["base"], data["method"])
    if op == "new":
        return New(data["klass"])
    if op == "work":
        return Work(data["units"])
    if op == "event":
        return Event(data["tag"])
    if op == "loop":
        return Loop(
            data["count"], tuple(_stmt_from_json(s) for s in data["body"])
        )
    if op == "branch":
        return Branch(
            data["weight"],
            tuple(_stmt_from_json(s) for s in data["then"]),
            tuple(_stmt_from_json(s) for s in data["orelse"]),
        )
    raise ProgramError(f"unknown statement op {op!r}")


def program_to_dict(program: Program) -> dict:
    return {
        "format": _FORMAT,
        "entry": str(program.entry),
        "classes": [
            {
                "name": klass.name,
                "superclass": klass.superclass,
                "dynamic": klass.dynamic,
                "library": klass.library,
                "methods": [
                    {
                        "name": method.name,
                        "body": [_stmt_to_json(s) for s in method.body],
                    }
                    for method in klass.methods.values()
                ],
            }
            for klass in program.classes
        ],
    }


def program_from_dict(data: dict, validate: bool = True) -> Program:
    if data.get("format") != _FORMAT:
        raise ProgramError(
            f"not a serialized program (format={data.get('format')!r})"
        )
    program = Program(MethodRef.parse(data["entry"]))
    for class_data in data["classes"]:
        klass = Klass(
            name=class_data["name"],
            superclass=class_data.get("superclass"),
            dynamic=class_data.get("dynamic", False),
            library=class_data.get("library", False),
        )
        program.add_class(klass)
        for method_data in class_data["methods"]:
            klass.define(
                Method(
                    method_data["name"],
                    tuple(
                        _stmt_from_json(s) for s in method_data["body"]
                    ),
                )
            )
    if validate:
        program.validate()
    return program


# ----------------------------------------------------------------------
# Source form
# ----------------------------------------------------------------------
def _format_body(body: Sequence[Stmt], indent: int, out: List[str]) -> None:
    pad = "  " * indent
    for stmt in body:
        if isinstance(stmt, StaticCall):
            out.append(f"{pad}call {stmt.target}")
        elif isinstance(stmt, VirtualCall):
            out.append(f"{pad}vcall {stmt.base}.{stmt.method}")
        elif isinstance(stmt, New):
            out.append(f"{pad}new {stmt.klass}")
        elif isinstance(stmt, Work):
            out.append(f"{pad}work {stmt.units}")
        elif isinstance(stmt, Event):
            out.append(f"{pad}event {stmt.tag}")
        elif isinstance(stmt, Loop):
            out.append(f"{pad}loop {stmt.count}")
            _format_body(stmt.body, indent + 1, out)
            out.append(f"{pad}end")
        elif isinstance(stmt, Branch):
            out.append(f"{pad}branch {stmt.weight:g}")
            _format_body(stmt.then, indent + 1, out)
            if stmt.orelse:
                out.append(f"{pad}else")
                _format_body(stmt.orelse, indent + 1, out)
            out.append(f"{pad}end")
        else:
            raise ProgramError(f"unformattable statement {stmt!r}")


def format_program(program: Program) -> str:
    """Regenerate parseable JIP source for ``program``."""
    lines: List[str] = [f"program {program.entry}", ""]
    for klass in program.classes:
        declaration = f"class {klass.name}"
        if klass.superclass:
            declaration += f" extends {klass.superclass}"
        if klass.dynamic:
            declaration += " dynamic"
        if klass.library:
            declaration += " library"
        lines.append(declaration)
    lines.append("")
    for klass in program.classes:
        for method in klass.methods.values():
            lines.append(f"def {klass.name}.{method.name}")
            _format_body(method.body, 1, lines)
            lines.append("end")
            lines.append("")
    return "\n".join(lines)
