"""JIP — a mini object-oriented language ("Java-like Instrumented Programs").

The paper's system consumes Java bytecode; its encoding algorithms only
need (a) a call graph with call-site-labelled edges and per-site dispatch
sets, and (b) a runtime that executes calls/returns with dynamic dispatch
and dynamic class loading. JIP provides exactly that surface:

* classes with single inheritance, method overriding, and two flags —
  ``dynamic`` (loaded only at runtime, invisible to static analysis, the
  paper's dynamically loaded classes) and ``library`` (JDK-like, the unit
  selective encoding excludes);
* method bodies made of statements: static calls, virtual calls
  (dispatched on the runtime receiver type), allocations, loops, weighted
  branches, busy work, and event markers (context observation points).

Programs are pure data; :mod:`repro.analysis` builds call graphs from
them and :mod:`repro.runtime` executes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import DispatchError, ProgramError

__all__ = [
    "Stmt",
    "StaticCall",
    "VirtualCall",
    "New",
    "Loop",
    "Branch",
    "Work",
    "Event",
    "Method",
    "Klass",
    "Program",
    "MethodRef",
]


@dataclass(frozen=True, order=True)
class MethodRef:
    """A qualified method name ``Klass.method``."""

    klass: str
    method: str

    def __str__(self) -> str:
        return f"{self.klass}.{self.method}"

    @staticmethod
    def parse(text: str) -> "MethodRef":
        klass, sep, method = text.partition(".")
        if not sep or not klass or not method:
            raise ProgramError(f"bad method reference {text!r}")
        return MethodRef(klass, method)


class Stmt:
    """Base class for statements (empty; used for isinstance checks)."""

    __slots__ = ()


@dataclass(frozen=True)
class StaticCall(Stmt):
    """A call with a statically fixed target (static/private/final)."""

    target: MethodRef


@dataclass(frozen=True)
class VirtualCall(Stmt):
    """A call dispatched on the runtime receiver's class.

    ``base`` is the static receiver type; ``method`` the invoked method
    name. The actual target is ``resolve(runtime_class, method)``.
    """

    base: str
    method: str


@dataclass(frozen=True)
class New(Stmt):
    """Instantiate ``klass``: adds it to the runtime receiver pools and,
    if the class is dynamic, triggers its loading."""

    klass: str


@dataclass(frozen=True)
class Loop(Stmt):
    """Repeat ``body`` ``count`` times."""

    count: int
    body: Tuple[Stmt, ...]

    def __post_init__(self):
        if self.count < 0:
            raise ProgramError(f"negative loop count {self.count}")


@dataclass(frozen=True)
class Branch(Stmt):
    """Take ``then`` with probability ``weight`` (seeded), else ``orelse``."""

    weight: float
    then: Tuple[Stmt, ...]
    orelse: Tuple[Stmt, ...] = ()

    def __post_init__(self):
        if not 0.0 <= self.weight <= 1.0:
            raise ProgramError(f"branch weight {self.weight} outside [0, 1]")


@dataclass(frozen=True)
class Work(Stmt):
    """Busy work of ``units`` abstract cost (models non-call execution)."""

    units: int


@dataclass(frozen=True)
class Event(Stmt):
    """A context observation point (e.g. a logged system call)."""

    tag: str


@dataclass
class Method:
    """A method body belonging to a class."""

    name: str
    body: Tuple[Stmt, ...] = ()

    def __post_init__(self):
        self.body = tuple(self.body)


@dataclass
class Klass:
    """A class: name, optional superclass, methods, and loading flags."""

    name: str
    superclass: Optional[str] = None
    methods: Dict[str, Method] = field(default_factory=dict)
    dynamic: bool = False
    library: bool = False

    def define(self, method: Method) -> "Klass":
        if method.name in self.methods:
            raise ProgramError(
                f"duplicate method {self.name}.{method.name}"
            )
        self.methods[method.name] = method
        return self


class Program:
    """A closed JIP program: classes plus the entry method."""

    def __init__(self, entry: MethodRef):
        self.entry = entry
        self._classes: Dict[str, Klass] = {}
        self._subclasses: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_class(self, klass: Klass) -> Klass:
        if klass.name in self._classes:
            raise ProgramError(f"duplicate class {klass.name!r}")
        if klass.superclass is not None and klass.superclass not in self._classes:
            raise ProgramError(
                f"class {klass.name!r} extends unknown {klass.superclass!r} "
                f"(declare superclasses first)"
            )
        self._classes[klass.name] = klass
        self._subclasses.setdefault(klass.name, [])
        if klass.superclass is not None:
            self._subclasses[klass.superclass].append(klass.name)
        return klass

    # ------------------------------------------------------------------
    # Hierarchy queries
    # ------------------------------------------------------------------
    @property
    def classes(self) -> List[Klass]:
        return list(self._classes.values())

    def klass(self, name: str) -> Klass:
        try:
            return self._classes[name]
        except KeyError:
            raise ProgramError(f"unknown class {name!r}") from None

    def has_class(self, name: str) -> bool:
        return name in self._classes

    def direct_subclasses(self, name: str) -> List[str]:
        return list(self._subclasses.get(name, ()))

    def subtypes(self, name: str, include_dynamic: bool = True) -> List[str]:
        """``name`` and all transitive subclasses, declaration order."""
        self.klass(name)  # existence check
        result: List[str] = []
        stack = [name]
        while stack:
            current = stack.pop(0)
            klass = self._classes[current]
            if include_dynamic or not klass.dynamic:
                result.append(current)
            stack.extend(self._subclasses.get(current, ()))
        return result

    def supertypes(self, name: str) -> List[str]:
        """``name`` and its superclass chain, bottom-up."""
        chain = [name]
        current = self.klass(name)
        while current.superclass is not None:
            chain.append(current.superclass)
            current = self._classes[current.superclass]
        return chain

    def is_subtype(self, sub: str, base: str) -> bool:
        return base in self.supertypes(sub)

    # ------------------------------------------------------------------
    # Method resolution (Java-style)
    # ------------------------------------------------------------------
    def resolve(self, klass_name: str, method_name: str) -> MethodRef:
        """Find the method ``method_name`` visible on ``klass_name`` by
        walking up the superclass chain."""
        for candidate in self.supertypes(klass_name):
            if method_name in self._classes[candidate].methods:
                return MethodRef(candidate, method_name)
        raise DispatchError(
            f"class {klass_name!r} has no method {method_name!r} "
            f"(searched {self.supertypes(klass_name)})"
        )

    def method(self, ref: MethodRef) -> Method:
        klass = self.klass(ref.klass)
        try:
            return klass.methods[ref.method]
        except KeyError:
            raise ProgramError(f"unknown method {ref}") from None

    def has_method(self, ref: MethodRef) -> bool:
        return (
            ref.klass in self._classes
            and ref.method in self._classes[ref.klass].methods
        )

    def methods(self) -> Iterator[Tuple[MethodRef, Method]]:
        """All (ref, method) pairs in declaration order."""
        for klass in self._classes.values():
            for method in klass.methods.values():
                yield MethodRef(klass.name, method.name), method

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the program is closed and well-formed."""
        if not self.has_method(self.entry):
            raise ProgramError(f"entry method {self.entry} does not exist")
        if self.klass(self.entry.klass).dynamic:
            raise ProgramError("entry class cannot be dynamic")
        for ref, method in self.methods():
            for stmt in iter_stmts(method.body):
                self._validate_stmt(ref, stmt)

    def _validate_stmt(self, owner: MethodRef, stmt: Stmt) -> None:
        if isinstance(stmt, StaticCall):
            if not self.has_method(stmt.target):
                raise ProgramError(
                    f"{owner}: static call to unknown {stmt.target}"
                )
        elif isinstance(stmt, VirtualCall):
            if stmt.base not in self._classes:
                raise ProgramError(
                    f"{owner}: virtual call on unknown class {stmt.base!r}"
                )
            # At least one subtype (possibly dynamic) must resolve it.
            resolved = False
            for sub in self.subtypes(stmt.base):
                try:
                    self.resolve(sub, stmt.method)
                    resolved = True
                    break
                except DispatchError:
                    continue
            if not resolved:
                raise ProgramError(
                    f"{owner}: virtual call {stmt.base}.{stmt.method} has "
                    f"no resolvable target"
                )
        elif isinstance(stmt, New):
            if stmt.klass not in self._classes:
                raise ProgramError(
                    f"{owner}: new of unknown class {stmt.klass!r}"
                )


def iter_stmts(body: Sequence[Stmt]) -> Iterator[Stmt]:
    """Yield every statement in ``body``, recursing into loops/branches."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, Loop):
            yield from iter_stmts(stmt.body)
        elif isinstance(stmt, Branch):
            yield from iter_stmts(stmt.then)
            yield from iter_stmts(stmt.orelse)
