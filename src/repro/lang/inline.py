"""Method inlining for JIP programs (paper Section 8, "Optimizations").

The paper attributes most of its residual overhead to "a few small hot
functions" and notes it "can be largely reduced if the optimization of
combining instrumentations is performed for inlined functions" — i.e.
when the JIT inlines a callee, the callee's encoding additions fold into
the caller and the per-call probe trips disappear.

We realize the same effect at the IR level: :func:`inline_methods`
splices the bodies of selected (small, statically-bound) methods into
their callers. The instrumented call boundary vanishes, so the agent is
simply never invoked for it — exactly what a bytecode agent sees after
JIT inlining. Calling contexts are then defined modulo the inlined
frames, the same semantics the original PCC adopted inside Jikes RVM.

Only ``StaticCall`` sites are inlined (virtual dispatch would need
speculation); recursive targets and targets above ``max_body_size`` are
skipped; chains of inlinable calls are resolved by iterating to a
fixpoint with a pass limit.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.errors import ProgramError
from repro.lang.model import (
    Branch,
    Klass,
    Loop,
    Method,
    MethodRef,
    Program,
    StaticCall,
    Stmt,
    iter_stmts,
)

__all__ = ["inline_methods", "inlinable_methods"]


def _body_size(method: Method) -> int:
    return sum(1 for _ in iter_stmts(method.body))


def _is_self_recursive(ref: MethodRef, method: Method) -> bool:
    return any(
        isinstance(stmt, StaticCall) and stmt.target == ref
        for stmt in iter_stmts(method.body)
    )


def inlinable_methods(
    program: Program, max_body_size: int = 6
) -> Set[MethodRef]:
    """Heuristic inline candidates: small, non-recursive methods.

    A practical default for the "small hot functions" case; callers can
    also pass an explicit set to :func:`inline_methods` (e.g. from a
    profile).
    """
    candidates: Set[MethodRef] = set()
    for ref, method in program.methods():
        if ref == program.entry:
            continue
        if program.klass(ref.klass).dynamic:
            continue  # dynamic classes are not visible at compile time
        if _is_self_recursive(ref, method):
            continue
        if _body_size(method) <= max_body_size:
            candidates.add(ref)
    return candidates


def inline_methods(
    program: Program,
    targets: Iterable[MethodRef],
    max_passes: int = 8,
) -> Program:
    """A copy of ``program`` with static calls to ``targets`` inlined.

    Inlined methods keep their definitions (they may still be reached
    through virtual dispatch or from non-inlined sites elsewhere); only
    the *call sites* disappear. Each pass only substitutes bodies that
    are themselves already free of target calls, so mutually-recursive
    target sets are left uninlined (their sites survive) rather than
    expanded forever; ``max_passes`` is a safety net for pathological
    chains and raises :class:`ProgramError` when exceeded.
    """
    target_set = {ref for ref in targets}
    for ref in target_set:
        program.method(ref)  # existence check
        if ref == program.entry:
            raise ProgramError("cannot inline the entry method")

    bodies: Dict[MethodRef, Tuple[Stmt, ...]] = {
        ref: method.body for ref, method in program.methods()
    }

    def body_is_clean(body: Sequence[Stmt]) -> bool:
        return not any(
            isinstance(stmt, StaticCall) and stmt.target in target_set
            for stmt in iter_stmts(body)
        )

    def substitute(body: Sequence[Stmt]) -> Tuple[Tuple[Stmt, ...], bool]:
        """One pass: splice clean target bodies; returns (body, changed)."""
        out: List[Stmt] = []
        changed = False
        for stmt in body:
            if (
                isinstance(stmt, StaticCall)
                and stmt.target in target_set
                and body_is_clean(bodies[stmt.target])
            ):
                out.extend(bodies[stmt.target])
                changed = True
            elif isinstance(stmt, Loop):
                inner, inner_changed = substitute(stmt.body)
                out.append(Loop(stmt.count, inner) if inner_changed else stmt)
                changed |= inner_changed
            elif isinstance(stmt, Branch):
                then, then_changed = substitute(stmt.then)
                orelse, else_changed = substitute(stmt.orelse)
                if then_changed or else_changed:
                    out.append(Branch(stmt.weight, then, orelse))
                    changed = True
                else:
                    out.append(stmt)
            else:
                out.append(stmt)
        return tuple(out), changed

    for _ in range(max_passes):
        any_changed = False
        for ref in list(bodies):
            new_body, changed = substitute(bodies[ref])
            if changed:
                bodies[ref] = new_body
                any_changed = True
        if not any_changed:
            break
    else:
        raise ProgramError(
            f"inlining did not converge in {max_passes} passes "
            f"(mutually recursive targets?)"
        )

    # Rebuild the program with the new bodies.
    result = Program(program.entry)
    for klass in program.classes:
        result.add_class(
            Klass(
                name=klass.name,
                superclass=klass.superclass,
                dynamic=klass.dynamic,
                library=klass.library,
            )
        )
    for ref, body in bodies.items():
        result.klass(ref.klass).define(Method(ref.method, body))
    result.validate()
    return result
