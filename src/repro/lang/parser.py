"""A small textual format for JIP programs.

Grammar (line-oriented, ``#`` comments, blocks closed with ``end``)::

    program Main.main

    class Shape                      # base class
    class Circle extends Shape       # inheritance
    class Plugin extends Shape dynamic   # loaded only at runtime
    class Jdk library                # excludable (JDK-like) component

    def Main.main                    # method definition
      new Circle
      call Util.setup                # static call
      vcall Shape.draw               # virtual call: base class + method
      loop 10                        # repeat block 10 times
        work 5
      end
      branch 0.25                    # then-arm with probability 0.25
        event rare_path
      else
        call Util.fast
      end
    end

Class declarations may appear in any order relative to ``def`` blocks, but
a superclass must be declared before its subclasses (as in the model).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ProgramError
from repro.lang.model import (
    Branch,
    Event,
    Klass,
    Loop,
    Method,
    MethodRef,
    New,
    Program,
    StaticCall,
    Stmt,
    VirtualCall,
    Work,
)

__all__ = ["parse_program"]


def parse_program(text: str, validate: bool = True) -> Program:
    """Parse JIP source text into a :class:`~repro.lang.model.Program`."""
    parser = _Parser(text)
    return parser.parse(validate=validate)


class _Parser:
    def __init__(self, text: str):
        self._lines = _significant_lines(text)
        self._pos = 0

    # ------------------------------------------------------------------
    def parse(self, validate: bool) -> Program:
        entry = self._parse_header()
        program = Program(entry)
        pending_methods: List[Tuple[MethodRef, Method]] = []

        while not self._at_end():
            lineno, tokens = self._peek()
            keyword = tokens[0]
            if keyword == "class":
                program.add_class(self._parse_class())
            elif keyword == "def":
                pending_methods.append(self._parse_method())
            else:
                raise ProgramError(
                    f"line {lineno}: expected 'class' or 'def', got "
                    f"{keyword!r}"
                )

        for ref, method in pending_methods:
            program.klass(ref.klass).define(method)
        if validate:
            program.validate()
        return program

    # ------------------------------------------------------------------
    def _parse_header(self) -> MethodRef:
        lineno, tokens = self._next()
        if tokens[0] != "program" or len(tokens) != 2:
            raise ProgramError(
                f"line {lineno}: file must start with 'program Klass.method'"
            )
        return MethodRef.parse(tokens[1])

    def _parse_class(self) -> Klass:
        lineno, tokens = self._next()
        # class NAME [extends SUPER] [dynamic] [library]
        rest = tokens[1:]
        if not rest:
            raise ProgramError(f"line {lineno}: class needs a name")
        name = rest[0]
        superclass: Optional[str] = None
        dynamic = library = False
        i = 1
        while i < len(rest):
            word = rest[i]
            if word == "extends":
                if i + 1 >= len(rest):
                    raise ProgramError(
                        f"line {lineno}: 'extends' needs a class name"
                    )
                superclass = rest[i + 1]
                i += 2
            elif word == "dynamic":
                dynamic = True
                i += 1
            elif word == "library":
                library = True
                i += 1
            else:
                raise ProgramError(
                    f"line {lineno}: unexpected token {word!r} in class "
                    f"declaration"
                )
        return Klass(
            name=name, superclass=superclass, dynamic=dynamic, library=library
        )

    def _parse_method(self) -> Tuple[MethodRef, Method]:
        lineno, tokens = self._next()
        if len(tokens) != 2:
            raise ProgramError(f"line {lineno}: expected 'def Klass.method'")
        ref = MethodRef.parse(tokens[1])
        body = self._parse_block(terminators=("end",))
        self._expect("end")
        return ref, Method(ref.method, tuple(body))

    def _parse_block(self, terminators: Tuple[str, ...]) -> List[Stmt]:
        stmts: List[Stmt] = []
        while True:
            if self._at_end():
                raise ProgramError("unexpected end of file inside a block")
            lineno, tokens = self._peek()
            keyword = tokens[0]
            if keyword in terminators:
                return stmts
            self._next()
            stmts.append(self._parse_stmt(lineno, tokens))

    def _parse_stmt(self, lineno: int, tokens: List[str]) -> Stmt:
        keyword, args = tokens[0], tokens[1:]
        if keyword == "call":
            self._arity(lineno, keyword, args, 1)
            return StaticCall(MethodRef.parse(args[0]))
        if keyword == "vcall":
            self._arity(lineno, keyword, args, 1)
            ref = MethodRef.parse(args[0])
            return VirtualCall(ref.klass, ref.method)
        if keyword == "new":
            self._arity(lineno, keyword, args, 1)
            return New(args[0])
        if keyword == "work":
            self._arity(lineno, keyword, args, 1)
            return Work(self._int(lineno, args[0]))
        if keyword == "event":
            self._arity(lineno, keyword, args, 1)
            return Event(args[0])
        if keyword == "loop":
            self._arity(lineno, keyword, args, 1)
            count = self._int(lineno, args[0])
            body = self._parse_block(terminators=("end",))
            self._expect("end")
            return Loop(count, tuple(body))
        if keyword == "branch":
            self._arity(lineno, keyword, args, 1)
            weight = self._float(lineno, args[0])
            then = self._parse_block(terminators=("else", "end"))
            orelse: List[Stmt] = []
            _, next_tokens = self._peek()
            if next_tokens[0] == "else":
                self._next()
                orelse = self._parse_block(terminators=("end",))
            self._expect("end")
            return Branch(weight, tuple(then), tuple(orelse))
        raise ProgramError(f"line {lineno}: unknown statement {keyword!r}")

    # ------------------------------------------------------------------
    def _arity(self, lineno: int, keyword: str, args: List[str], n: int) -> None:
        if len(args) != n:
            raise ProgramError(
                f"line {lineno}: {keyword!r} takes {n} argument(s), got "
                f"{len(args)}"
            )

    def _int(self, lineno: int, text: str) -> int:
        try:
            return int(text)
        except ValueError:
            raise ProgramError(
                f"line {lineno}: expected an integer, got {text!r}"
            ) from None

    def _float(self, lineno: int, text: str) -> float:
        try:
            return float(text)
        except ValueError:
            raise ProgramError(
                f"line {lineno}: expected a number, got {text!r}"
            ) from None

    def _expect(self, keyword: str) -> None:
        lineno, tokens = self._next()
        if tokens[0] != keyword:
            raise ProgramError(
                f"line {lineno}: expected {keyword!r}, got {tokens[0]!r}"
            )

    def _peek(self) -> Tuple[int, List[str]]:
        return self._lines[self._pos]

    def _next(self) -> Tuple[int, List[str]]:
        line = self._lines[self._pos]
        self._pos += 1
        return line

    def _at_end(self) -> bool:
        return self._pos >= len(self._lines)


def _significant_lines(text: str) -> List[Tuple[int, List[str]]]:
    """Strip comments/blank lines; return (lineno, tokens) pairs."""
    result = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        code = raw.split("#", 1)[0].strip()
        if code:
            result.append((lineno, code.split()))
    return result
