"""Fluent construction of JIP programs.

Example
-------
::

    b = ProgramBuilder("Main.main")
    with b.klass("Main") as main:
        with main.method("main") as m:
            m.new("Circle")
            m.call("Util.log")
            with m.loop(10) as body:
                body.vcall("Shape", "draw")
    with b.klass("Shape") as shape:
        shape.method("draw").done()
    ...
    program = b.build()

Builders are plain helpers; they emit the frozen dataclasses of
:mod:`repro.lang.model`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.lang.model import (
    Branch,
    Event,
    Klass,
    Loop,
    Method,
    MethodRef,
    New,
    Program,
    StaticCall,
    Stmt,
    VirtualCall,
    Work,
)

__all__ = ["ProgramBuilder", "BodyBuilder"]


class BodyBuilder:
    """Accumulates statements for a method body or nested block."""

    def __init__(self):
        self._stmts: List[Stmt] = []

    # -- statement emitters --------------------------------------------
    def call(self, target: str) -> "BodyBuilder":
        """Static call; ``target`` is ``"Klass.method"``."""
        self._stmts.append(StaticCall(MethodRef.parse(target)))
        return self

    def vcall(self, base: str, method: str) -> "BodyBuilder":
        self._stmts.append(VirtualCall(base, method))
        return self

    def new(self, klass: str) -> "BodyBuilder":
        self._stmts.append(New(klass))
        return self

    def work(self, units: int = 1) -> "BodyBuilder":
        self._stmts.append(Work(units))
        return self

    def event(self, tag: str) -> "BodyBuilder":
        self._stmts.append(Event(tag))
        return self

    def loop(self, count: int) -> "_BlockContext":
        return _BlockContext(self, lambda body: Loop(count, tuple(body)))

    def branch(self, weight: float) -> "_BranchContext":
        return _BranchContext(self, weight)

    # -- finishing ------------------------------------------------------
    @property
    def statements(self) -> List[Stmt]:
        return list(self._stmts)

    def done(self) -> None:
        """No-op terminator so one-liners read naturally."""


class _BlockContext:
    """``with``-block that wraps accumulated statements on exit."""

    def __init__(self, parent: BodyBuilder, wrap):
        self._parent = parent
        self._wrap = wrap
        self._inner = BodyBuilder()

    def __enter__(self) -> BodyBuilder:
        return self._inner

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._parent._stmts.append(self._wrap(self._inner.statements))


class _BranchContext:
    """Two-armed ``with``-block: ``then`` arm now, ``orelse`` optional."""

    def __init__(self, parent: BodyBuilder, weight: float):
        self._parent = parent
        self._weight = weight
        self._then = BodyBuilder()
        self._orelse = BodyBuilder()
        self._entered_else = False

    def __enter__(self) -> "_BranchContext":
        return self

    @property
    def then(self) -> BodyBuilder:
        return self._then

    @property
    def orelse(self) -> BodyBuilder:
        self._entered_else = True
        return self._orelse

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._parent._stmts.append(
                Branch(
                    self._weight,
                    tuple(self._then.statements),
                    tuple(self._orelse.statements),
                )
            )


class _MethodBuilder:
    def __init__(self, klass_builder: "_KlassBuilder", name: str):
        self._klass_builder = klass_builder
        self.name = name
        self.body = BodyBuilder()

    def __enter__(self) -> BodyBuilder:
        return self.body

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._klass_builder._finish_method(self)

    def done(self) -> None:
        """Finish an empty (or already populated) method without a block."""
        self._klass_builder._finish_method(self)


class _KlassBuilder:
    def __init__(
        self,
        program_builder: "ProgramBuilder",
        name: str,
        extends: Optional[str],
        dynamic: bool,
        library: bool,
    ):
        self._program_builder = program_builder
        self._klass = Klass(
            name=name, superclass=extends, dynamic=dynamic, library=library
        )
        self._open_methods: List[str] = []

    def method(self, name: str) -> _MethodBuilder:
        return _MethodBuilder(self, name)

    def _finish_method(self, mb: _MethodBuilder) -> None:
        self._klass.define(Method(mb.name, tuple(mb.body.statements)))

    def __enter__(self) -> "_KlassBuilder":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._program_builder._finish_class(self._klass)


class ProgramBuilder:
    """Top-level builder; see module docstring for usage."""

    def __init__(self, entry: str):
        self._entry = MethodRef.parse(entry)
        self._classes: List[Klass] = []

    def klass(
        self,
        name: str,
        extends: Optional[str] = None,
        dynamic: bool = False,
        library: bool = False,
    ) -> _KlassBuilder:
        return _KlassBuilder(self, name, extends, dynamic, library)

    def _finish_class(self, klass: Klass) -> None:
        self._classes.append(klass)

    def build(self, validate: bool = True) -> Program:
        program = Program(self._entry)
        for klass in self._classes:
            program.add_class(klass)
        if validate:
            program.validate()
        return program
