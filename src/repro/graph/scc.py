"""Strongly connected components and back-edge classification.

Recursion appears as cycles in the call graph. The paper (following PCCE)
divides a recursive call path into acyclic sub-paths: back edges are
removed for the static encoding and handled at runtime by pushing the
current encoding ID onto a stack (Section 2 / Section 4.1).

Two tools live here:

* :func:`tarjan_sccs` — Tarjan's algorithm, iterative, deterministic.
* :func:`back_edges` — the set of edges whose removal makes the graph
  acyclic, computed by an entry-rooted DFS (edges to a node currently on
  the DFS stack). This matches the instrumentation point the paper needs:
  a *call site* known statically to re-enter an active function.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.graph.callgraph import CallEdge, CallGraph

__all__ = ["tarjan_sccs", "back_edges", "remove_recursion", "recursive_nodes"]


def tarjan_sccs(graph: CallGraph) -> List[List[str]]:
    """Strongly connected components in reverse topological order.

    Iterative Tarjan (no recursion limit issues on 10k-node graphs).
    """
    index_of: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = 0

    for root in graph.nodes:
        if root in index_of:
            continue
        work = [(root, 0)]
        while work:
            node, child_idx = work.pop()
            if child_idx == 0:
                index_of[node] = counter
                lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            successors = graph.successors(node)
            for i in range(child_idx, len(successors)):
                succ = successors[i]
                if succ not in index_of:
                    work.append((node, i + 1))
                    work.append((succ, 0))
                    recurse = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if recurse:
                continue
            if lowlink[node] == index_of[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return sccs


def back_edges(graph: CallGraph) -> List[CallEdge]:
    """Edges closing a cycle, found by DFS from the entry then all nodes.

    An edge is a back edge when its callee is on the current DFS stack.
    Removing exactly these edges yields an acyclic graph. Deterministic:
    DFS roots and successor order follow graph insertion order.
    """
    WHITE, GREY, BLACK = 0, 1, 2
    color: Dict[str, int] = {n: WHITE for n in graph.nodes}
    found: List[CallEdge] = []

    roots = [graph.entry] + [n for n in graph.nodes if n != graph.entry]
    for root in roots:
        if color[root] != WHITE:
            continue
        work = [(root, 0)]
        color[root] = GREY
        while work:
            node, edge_idx = work.pop()
            out = graph.out_edges(node)
            advanced = False
            for i in range(edge_idx, len(out)):
                edge = out[i]
                state = color[edge.callee]
                if state == GREY:
                    found.append(edge)
                elif state == WHITE:
                    work.append((node, i + 1))
                    color[edge.callee] = GREY
                    work.append((edge.callee, 0))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
    return found


def remove_recursion(graph: CallGraph) -> tuple:
    """Return ``(acyclic_graph, removed_back_edges)``.

    The acyclic graph keeps every node; only back edges are dropped. The
    removed edges are the call sites the runtime must treat as recursion
    points (push ID, reset to 0).
    """
    removed = back_edges(graph)
    return graph.without_edges(removed), removed


def recursive_nodes(graph: CallGraph) -> Set[str]:
    """Nodes on some cycle (members of a non-trivial SCC or self loop)."""
    result: Set[str] = set()
    for component in tarjan_sccs(graph):
        if len(component) > 1:
            result.update(component)
    for edge in graph.edges:
        if edge.caller == edge.callee:
            result.add(edge.caller)
    return result
