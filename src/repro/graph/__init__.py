"""Call-graph substrate: the input shape consumed by every encoder."""

from repro.graph.callgraph import CallEdge, CallGraph, CallSite
from repro.graph.contexts import (
    context_counts,
    context_nodes,
    count_contexts,
    enumerate_all_contexts,
    enumerate_contexts,
)
from repro.graph.dot import to_dot
from repro.graph.scc import back_edges, recursive_nodes, remove_recursion, tarjan_sccs
from repro.graph.topo import find_cycle, is_acyclic, topological_order

__all__ = [
    "CallEdge",
    "CallGraph",
    "CallSite",
    "back_edges",
    "context_counts",
    "context_nodes",
    "count_contexts",
    "enumerate_all_contexts",
    "enumerate_contexts",
    "find_cycle",
    "is_acyclic",
    "recursive_nodes",
    "remove_recursion",
    "tarjan_sccs",
    "to_dot",
    "topological_order",
]
