"""Call graph data structures.

The encoding algorithms in :mod:`repro.core` consume a call graph in the
exact shape the paper defines (Section 3.1, Algorithm 1):

    CG = <N, E> where each edge is a triple <caller, callee, label> and
    <caller, label> is a *call site* that may dispatch to several callees.

Nodes are function names (strings). A call site is identified by its caller
and a label (the paper uses the bytecode index; we use any hashable label,
typically an int or a string like ``"bb3:5"``). Multiple edges sharing one
call site model virtual dispatch.

All iteration orders are deterministic (insertion order) because the
encoding algorithms' outputs depend on the order in which incoming edges
are processed; determinism makes encodings reproducible across runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.errors import GraphError

__all__ = ["CallSite", "CallEdge", "CallGraph"]


@dataclass(frozen=True, order=True)
class CallSite:
    """A call site: a location inside ``caller`` that issues a call.

    ``label`` plays the role of the bytecode index in the paper; two call
    sites in the same caller are distinct iff their labels differ.
    """

    caller: str
    label: Hashable

    def __str__(self) -> str:
        return f"{self.caller}@{self.label}"


@dataclass(frozen=True, order=True)
class CallEdge:
    """A directed call edge ``<caller, callee, label>`` (paper's triple)."""

    caller: str
    callee: str
    label: Hashable

    @property
    def site(self) -> CallSite:
        return CallSite(self.caller, self.label)

    def __str__(self) -> str:
        return f"{self.caller}-[{self.label}]->{self.callee}"


class CallGraph:
    """A directed multigraph of functions connected by labelled call edges.

    Parameters
    ----------
    entry:
        Name of the entry function (``main`` in the paper). It is created
        automatically.

    Notes
    -----
    * Parallel edges are allowed only when their labels differ; the same
      triple may not be inserted twice.
    * Several edges with the same ``(caller, label)`` model a virtual call
      site with several dispatch targets.
    """

    def __init__(self, entry: str = "main"):
        self._entry = entry
        # node -> attribute dict (insertion ordered).
        self._nodes: Dict[str, dict] = {}
        # All edges in insertion order.
        self._edges: List[CallEdge] = []
        self._edge_set: Set[CallEdge] = set()
        # node -> incoming/outgoing edges, insertion ordered.
        self._in: Dict[str, List[CallEdge]] = {}
        self._out: Dict[str, List[CallEdge]] = {}
        # call site -> dispatch target edges, insertion ordered.
        self._site_edges: Dict[CallSite, List[CallEdge]] = {}
        self.add_node(entry)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, name: str, **attrs) -> None:
        """Add a function node. Re-adding merges attributes."""
        if name in self._nodes:
            self._nodes[name].update(attrs)
            return
        self._nodes[name] = dict(attrs)
        self._in[name] = []
        self._out[name] = []

    def add_edge(
        self, caller: str, callee: str, label: Hashable = None
    ) -> CallEdge:
        """Add a call edge; creates missing endpoint nodes.

        When ``label`` is None a fresh label unique within the caller is
        generated, producing a monomorphic call site.
        """
        if label is None:
            label = self._fresh_label(caller)
        edge = CallEdge(caller, callee, label)
        if edge in self._edge_set:
            raise GraphError(f"duplicate call edge {edge}")
        self.add_node(caller)
        self.add_node(callee)
        self._edges.append(edge)
        self._edge_set.add(edge)
        self._out[caller].append(edge)
        self._in[callee].append(edge)
        self._site_edges.setdefault(edge.site, []).append(edge)
        return edge

    def add_call(self, caller: str, targets: Iterable[str],
                 label: Hashable = None) -> CallSite:
        """Add one call site dispatching to every function in ``targets``.

        Convenience for building virtual call sites: all resulting edges
        share the same ``(caller, label)`` site.
        """
        targets = list(targets)
        if not targets:
            raise GraphError(f"call site in {caller!r} needs >= 1 target")
        if label is None:
            label = self._fresh_label(caller)
        for callee in targets:
            self.add_edge(caller, callee, label)
        return CallSite(caller, label)

    def remove_edge(self, edge: CallEdge) -> None:
        """Remove one call edge; endpoint nodes stay.

        Raises :class:`GraphError` when the edge is absent. Used by the
        incremental re-encoding path (:mod:`repro.analysis.incremental`)
        to apply deltas without rebuilding the whole graph.
        """
        if edge not in self._edge_set:
            raise GraphError(f"cannot remove missing edge {edge}")
        self._edges.remove(edge)
        self._edge_set.discard(edge)
        self._out[edge.caller].remove(edge)
        self._in[edge.callee].remove(edge)
        remaining = self._site_edges[edge.site]
        remaining.remove(edge)
        if not remaining:
            del self._site_edges[edge.site]

    def remove_node(self, name: str) -> None:
        """Remove a node and every edge incident to it.

        The entry node cannot be removed.
        """
        if name not in self._nodes:
            raise GraphError(f"cannot remove unknown node {name!r}")
        if name == self._entry:
            raise GraphError(f"cannot remove the entry node {name!r}")
        for edge in list(self._in[name]) + list(self._out[name]):
            if edge in self._edge_set:
                self.remove_edge(edge)
        del self._nodes[name]
        del self._in[name]
        del self._out[name]

    def _fresh_label(self, caller: str) -> int:
        used = {e.label for e in self._out.get(caller, ())}
        label = len(used)
        while label in used:
            label += 1
        return label

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def entry(self) -> str:
        return self._entry

    @property
    def nodes(self) -> List[str]:
        return list(self._nodes)

    @property
    def edges(self) -> List[CallEdge]:
        return list(self._edges)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def has_edge(self, edge: CallEdge) -> bool:
        """Whether this exact (caller, callee, label) edge is present."""
        return edge in self._edge_set

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def node_attrs(self, name: str) -> dict:
        return self._nodes[name]

    def in_edges(self, name: str) -> List[CallEdge]:
        """Incoming edges of ``name`` in insertion order."""
        return list(self._in[name])

    def out_edges(self, name: str) -> List[CallEdge]:
        """Outgoing edges of ``name`` in insertion order."""
        return list(self._out[name])

    def predecessors(self, name: str) -> List[str]:
        """Distinct callers of ``name`` in first-seen order."""
        seen: Dict[str, None] = {}
        for edge in self._in[name]:
            seen.setdefault(edge.caller)
        return list(seen)

    def successors(self, name: str) -> List[str]:
        """Distinct callees of ``name`` in first-seen order."""
        seen: Dict[str, None] = {}
        for edge in self._out[name]:
            seen.setdefault(edge.callee)
        return list(seen)

    @property
    def call_sites(self) -> List[CallSite]:
        return list(self._site_edges)

    def site_targets(self, site: CallSite) -> List[CallEdge]:
        """Dispatch edges of a call site, in insertion order."""
        try:
            return list(self._site_edges[site])
        except KeyError:
            raise GraphError(f"unknown call site {site}") from None

    def sites_in(self, caller: str) -> List[CallSite]:
        """Call sites located in ``caller``, in insertion order."""
        seen: Dict[CallSite, None] = {}
        for edge in self._out[caller]:
            seen.setdefault(edge.site)
        return list(seen)

    def is_virtual_site(self, site: CallSite) -> bool:
        """True when the site has more than one dispatch target."""
        return len(self._site_edges.get(site, ())) > 1

    @property
    def virtual_sites(self) -> List[CallSite]:
        return [s for s, es in self._site_edges.items() if len(es) > 1]

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, keep: Iterable[str], entry: Optional[str] = None) -> "CallGraph":
        """Project onto ``keep``; edges with either endpoint dropped vanish.

        Used by selective encoding (Section 4.2): excluded components are
        removed wholesale and the runtime's call path tracking copes with
        the resulting unexpected call paths.
        """
        keep_set = set(keep)
        new_entry = entry if entry is not None else self._entry
        if new_entry not in keep_set:
            keep_set.add(new_entry)
        sub = CallGraph(entry=new_entry)
        for name in self._nodes:
            if name in keep_set:
                sub.add_node(name, **self._nodes[name])
        for edge in self._edges:
            if edge.caller in keep_set and edge.callee in keep_set:
                sub.add_edge(edge.caller, edge.callee, edge.label)
        return sub

    def without_edges(self, drop: Iterable[CallEdge]) -> "CallGraph":
        """Copy of the graph without the given edges (keeps all nodes)."""
        drop_set = set(drop)
        out = CallGraph(entry=self._entry)
        for name in self._nodes:
            out.add_node(name, **self._nodes[name])
        for edge in self._edges:
            if edge not in drop_set:
                out.add_edge(edge.caller, edge.callee, edge.label)
        return out

    def copy(self) -> "CallGraph":
        return self.without_edges(())

    # ------------------------------------------------------------------
    # Queries used by the encoders
    # ------------------------------------------------------------------
    def reachable_from(self, start: str) -> Set[str]:
        """All nodes reachable from ``start`` (including it)."""
        if start not in self._nodes:
            raise GraphError(f"unknown node {start!r}")
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for edge in self._out[node]:
                if edge.callee not in seen:
                    seen.add(edge.callee)
                    stack.append(edge.callee)
        return seen

    def reaching(self, target: str) -> Set[str]:
        """All nodes from which ``target`` is reachable (including it)."""
        if target not in self._nodes:
            raise GraphError(f"unknown node {target!r}")
        seen = {target}
        stack = [target]
        while stack:
            node = stack.pop()
            for edge in self._in[node]:
                if edge.caller not in seen:
                    seen.add(edge.caller)
                    stack.append(edge.caller)
        return seen

    def validate(self) -> None:
        """Check internal consistency; raises :class:`GraphError`."""
        if self._entry not in self._nodes:
            raise GraphError(f"entry {self._entry!r} is not a node")
        if self._in[self._entry]:
            raise GraphError(
                f"entry {self._entry!r} has incoming edges: "
                f"{self._in[self._entry]}"
            )
        for edge in self._edges:
            if edge.caller not in self._nodes or edge.callee not in self._nodes:
                raise GraphError(f"edge {edge} has unknown endpoint")

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CallGraph(entry={self._entry!r}, nodes={len(self._nodes)}, "
            f"edges={len(self._edges)}, sites={len(self._site_edges)})"
        )

    def stats(self) -> dict:
        """Summary statistics in the shape of the paper's Table 1 columns."""
        return {
            "nodes": len(self._nodes),
            "edges": len(self._edges),
            "call_sites": len(self._site_edges),
            "virtual_call_sites": len(self.virtual_sites),
        }
