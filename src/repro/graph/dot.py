"""Graphviz DOT export for call graphs (debugging / documentation aid)."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.graph.callgraph import CallEdge, CallGraph

__all__ = ["to_dot"]


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def to_dot(
    graph: CallGraph,
    name: str = "callgraph",
    node_label: Optional[Callable[[str], str]] = None,
    edge_label: Optional[Callable[[CallEdge], str]] = None,
    highlight: Optional[Dict[str, str]] = None,
) -> str:
    """Render the graph as DOT text.

    ``node_label`` / ``edge_label`` customize annotations (e.g. show ICC
    values next to node names, addition values on edges, as the paper's
    figures do). ``highlight`` maps node name -> fill color (e.g. anchor
    nodes).
    """
    highlight = highlight or {}
    lines = [f"digraph {_quote(name)} {{", "  rankdir=TB;", "  node [shape=ellipse];"]
    for node in graph.nodes:
        label = node_label(node) if node_label else node
        attrs = [f"label={_quote(label)}"]
        if node in highlight:
            attrs.append(f'style=filled, fillcolor="{highlight[node]}"')
        if node == graph.entry:
            attrs.append("shape=doublecircle")
        lines.append(f"  {_quote(node)} [{', '.join(attrs)}];")
    for edge in graph.edges:
        attrs = []
        if edge_label:
            text = edge_label(edge)
            if text:
                attrs.append(f"label={_quote(text)}")
        suffix = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f"  {_quote(edge.caller)} -> {_quote(edge.callee)}{suffix};")
    lines.append("}")
    return "\n".join(lines) + "\n"
