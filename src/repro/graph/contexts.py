"""Calling-context enumeration utilities.

A *calling context* of node ``n`` is a path from the entry to ``n`` in the
call graph (paper, Section 1). These helpers enumerate and count contexts
on acyclic graphs; they are the ground-truth oracle for the encoders'
correctness tests ("every context gets a unique code, and decoding returns
the original path").

Counting follows the paper's NC definition: ``NC[main] = 1`` and ``NC[n]``
is the sum over *incoming edges* of the predecessor's NC (parallel edges
and distinct call sites count separately, since the call site is part of
the context).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import GraphError
from repro.graph.callgraph import CallEdge, CallGraph
from repro.graph.topo import topological_order

__all__ = [
    "context_counts",
    "count_contexts",
    "enumerate_contexts",
    "enumerate_all_contexts",
    "context_nodes",
]


def context_counts(graph: CallGraph) -> Dict[str, int]:
    """Paper's NC: number of calling contexts ending at each node.

    Unreachable nodes get NC 0. Requires an acyclic graph.
    """
    order = topological_order(graph)
    counts: Dict[str, int] = {n: 0 for n in graph.nodes}
    counts[graph.entry] = 1
    for node in order:
        if counts[node] == 0:
            continue
        for edge in graph.out_edges(node):
            counts[edge.callee] += counts[node]
    return counts


def count_contexts(graph: CallGraph, node: str) -> int:
    """NC of one node (convenience wrapper)."""
    if node not in graph:
        raise GraphError(f"unknown node {node!r}")
    return context_counts(graph)[node]


def enumerate_contexts(
    graph: CallGraph, node: str, limit: Optional[int] = None
) -> Iterator[Tuple[CallEdge, ...]]:
    """Yield every context ending at ``node`` as a tuple of edges.

    Contexts are yielded root-first (the first edge leaves the entry).
    A context of the entry itself is the empty tuple. ``limit`` bounds the
    number of yielded contexts (a guard for exponential graphs).

    The enumeration walks backwards from ``node``; on cyclic graphs it
    raises :class:`CycleError` rather than looping forever.
    """
    if node not in graph:
        raise GraphError(f"unknown node {node!r}")
    # Cheap cycle guard: topological_order raises CycleError when cyclic.
    topological_order(graph)

    produced = 0
    # Each stack frame: (current node, partial reversed edge list).
    stack: List[Tuple[str, List[CallEdge]]] = [(node, [])]
    while stack:
        current, suffix = stack.pop()
        if current == graph.entry:
            yield tuple(reversed(suffix))
            produced += 1
            if limit is not None and produced >= limit:
                return
            continue
        in_edges = graph.in_edges(current)
        # Push in reverse so the first incoming edge is explored first.
        for edge in reversed(in_edges):
            stack.append((edge.caller, suffix + [edge]))


def enumerate_all_contexts(
    graph: CallGraph, limit_per_node: Optional[int] = None
) -> Dict[str, List[Tuple[CallEdge, ...]]]:
    """All contexts of all reachable nodes, keyed by ending node."""
    reachable = graph.reachable_from(graph.entry)
    result: Dict[str, List[Tuple[CallEdge, ...]]] = {}
    for node in graph.nodes:
        if node not in reachable:
            continue
        result[node] = list(
            enumerate_contexts(graph, node, limit=limit_per_node)
        )
    return result


def context_nodes(context: Tuple[CallEdge, ...], entry: str = "main") -> List[str]:
    """Node sequence of a context, e.g. ``(AB, BD)`` -> ``[A, B, D]``."""
    if not context:
        return [entry]
    nodes = [context[0].caller]
    for edge in context:
        nodes.append(edge.callee)
    return nodes
