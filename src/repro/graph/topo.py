"""Topological ordering and cycle detection for call graphs.

The encoding algorithms visit nodes "in topological order; a node is
visited after all its predecessors have been visited" (paper, Section 3.1).
Both orderings here are deterministic: ties are broken by graph insertion
order, so encodings are bit-for-bit reproducible.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import CycleError
from repro.graph.callgraph import CallGraph

__all__ = ["topological_order", "find_cycle", "is_acyclic"]


def topological_order(graph: CallGraph) -> List[str]:
    """Kahn's algorithm over distinct predecessor relations.

    Parallel edges between the same pair of nodes count once. Raises
    :class:`CycleError` (with a concrete cycle) if the graph is cyclic.
    """
    indegree: Dict[str, int] = {n: 0 for n in graph.nodes}
    for node in graph.nodes:
        for pred in graph.predecessors(node):
            if pred != node:
                indegree[node] += 1
            else:
                # A self loop is a cycle of length one.
                raise CycleError(f"self loop at {node!r}", cycle=[node, node])

    ready = [n for n in graph.nodes if indegree[n] == 0]
    order: List[str] = []
    cursor = 0
    while cursor < len(ready):
        node = ready[cursor]
        cursor += 1
        order.append(node)
        for succ in graph.successors(node):
            if succ == node:
                continue
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)

    if len(order) != len(graph.nodes):
        cycle = find_cycle(graph)
        raise CycleError(
            f"call graph is cyclic ({len(graph.nodes) - len(order)} nodes "
            f"on cycles); remove back edges first",
            cycle=cycle,
        )
    return order


def find_cycle(graph: CallGraph) -> Optional[List[str]]:
    """Return one cycle as ``[n0, n1, ..., n0]``, or None if acyclic."""
    WHITE, GREY, BLACK = 0, 1, 2
    color: Dict[str, int] = {n: WHITE for n in graph.nodes}
    parent: Dict[str, Optional[str]] = {}

    for root in graph.nodes:
        if color[root] != WHITE:
            continue
        stack: List[tuple] = [(root, iter(graph.successors(root)))]
        color[root] = GREY
        parent[root] = None
        while stack:
            node, succs = stack[-1]
            advanced = False
            for succ in succs:
                if color.get(succ, WHITE) == GREY:
                    # Found a back edge node -> succ; reconstruct cycle.
                    cycle = [succ]
                    walker: Optional[str] = node
                    while walker is not None and walker != succ:
                        cycle.append(walker)
                        walker = parent[walker]
                    cycle.append(succ)
                    cycle.reverse()
                    return cycle
                if color.get(succ, WHITE) == WHITE:
                    color[succ] = GREY
                    parent[succ] = node
                    stack.append((succ, iter(graph.successors(succ))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return None


def is_acyclic(graph: CallGraph) -> bool:
    """True when the graph has no directed cycle."""
    return find_cycle(graph) is None
