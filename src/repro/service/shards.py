"""Sharded calling-context-tree aggregation, merged on read.

Workers aggregate decoded paths into N independent shards — each a
path histogram plus flat rollup counters behind its own lock — so
concurrent batches contend only when they hash to the same shard. Reads
(top-K, rollups, rendering) merge the shards into a fresh
:class:`~repro.postprocess.ContextTreeReport`; the write path never
blocks on a reader building a report.

Sharding is by context path hash, so all observations of one context
land in one shard and per-context counts never need cross-shard
reconciliation — merging is pure addition.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from repro.postprocess import ContextTreeReport

__all__ = ["ShardStats", "ShardedContextTree"]

Path = Tuple[str, ...]


class _Shard:
    """One lock-guarded slice of the aggregate state."""

    __slots__ = (
        "lock", "counts", "leaf_totals", "gap_counts", "gap_samples",
        "samples",
    )

    def __init__(self):
        self.lock = threading.Lock()
        #: path -> observation count (the histogram top-K reads).
        self.counts: Dict[Path, int] = {}
        #: leaf function -> observation count.
        self.leaf_totals: Dict[str, int] = {}
        #: path -> gap-crossing observation count (checkpointed so a
        #: recovery reproduces UCP accounting, not just totals).
        self.gap_counts: Dict[Path, int] = {}
        self.gap_samples = 0
        self.samples = 0


class ShardStats:
    """Read-side summary of shard balance."""

    def __init__(self, sizes: List[int]):
        self.sizes = sizes

    @property
    def total(self) -> int:
        return sum(self.sizes)

    @property
    def imbalance(self) -> float:
        """max/mean shard load (1.0 = perfectly even)."""
        if not self.sizes or not self.total:
            return 1.0
        mean = self.total / len(self.sizes)
        return max(self.sizes) / mean if mean else 1.0


class ShardedContextTree:
    """N calling-context-tree shards that merge on read."""

    def __init__(self, shards: int = 8):
        if shards < 1:
            raise ValueError("need at least one shard")
        self._shards = [_Shard() for _ in range(shards)]

    def _shard_for(self, path: Path) -> _Shard:
        return self._shards[hash(path) % len(self._shards)]

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def add(self, path: Path, has_gaps: bool = False, weight: int = 1) -> None:
        """Aggregate one decoded context path, ``weight`` times."""
        shard = self._shard_for(path)
        with shard.lock:
            shard.counts[path] = shard.counts.get(path, 0) + weight
            if path:
                leaf = path[-1]
                shard.leaf_totals[leaf] = (
                    shard.leaf_totals.get(leaf, 0) + weight
                )
            if has_gaps:
                shard.gap_counts[path] = shard.gap_counts.get(path, 0) + weight
                shard.gap_samples += weight
            shard.samples += weight

    # ------------------------------------------------------------------
    # Read path (merge on read)
    # ------------------------------------------------------------------
    def top_contexts(self, k: int = 10) -> List[Tuple[int, Path]]:
        """The ``k`` hottest contexts as (count, path), heaviest first."""
        merged: Dict[Path, int] = {}
        for shard in self._shards:
            with shard.lock:
                for path, count in shard.counts.items():
                    merged[path] = merged.get(path, 0) + count
        ranked = sorted(merged.items(), key=lambda item: (-item[1], item[0]))
        return [(count, path) for path, count in ranked[:k]]

    def function_totals(self, leaf_only: bool = False) -> Dict[str, int]:
        """Per-function rollups.

        ``leaf_only=True`` counts samples whose context *ends* at the
        function (exclusive/self counts); otherwise every function
        appearing anywhere in a context is credited once per observation
        (inclusive counts, the flame-graph number).
        """
        totals: Dict[str, int] = {}
        for shard in self._shards:
            with shard.lock:
                if leaf_only:
                    for leaf, count in shard.leaf_totals.items():
                        totals[leaf] = totals.get(leaf, 0) + count
                else:
                    for path, count in shard.counts.items():
                        for name in set(path):
                            totals[name] = totals.get(name, 0) + count
        return totals

    def merged_report(self) -> ContextTreeReport:
        """One tree containing every shard's contexts (a fresh copy)."""
        report = ContextTreeReport()
        for shard in self._shards:
            with shard.lock:
                for path, count in shard.counts.items():
                    report.add_path(path, count)
        return report

    @property
    def total_samples(self) -> int:
        return sum(s.samples for s in self._shards)

    @property
    def gap_samples(self) -> int:
        """Samples whose decode crossed a dynamic-loading gap (UCP)."""
        return sum(s.gap_samples for s in self._shards)

    @property
    def unique_contexts(self) -> int:
        return sum(len(s.counts) for s in self._shards)

    def shard_stats(self) -> ShardStats:
        return ShardStats([s.samples for s in self._shards])

    def count_of(self, path: Path) -> int:
        """The aggregated count of one exact context path."""
        shard = self._shard_for(path)
        with shard.lock:
            return shard.counts.get(path, 0)

    def clear(self) -> None:
        for shard in self._shards:
            with shard.lock:
                shard.counts.clear()
                shard.leaf_totals.clear()
                shard.gap_counts.clear()
                shard.gap_samples = 0
                shard.samples = 0

    # ------------------------------------------------------------------
    # Checkpoint surface
    # ------------------------------------------------------------------
    def rows(self) -> List[Tuple[Path, int, int]]:
        """A consistent-per-shard snapshot of ``(path, count, gap_count)``.

        The checkpoint serialization form: everything ``restore_rows``
        needs to rebuild counts, leaf rollups, and gap accounting.
        """
        out: List[Tuple[Path, int, int]] = []
        for shard in self._shards:
            with shard.lock:
                for path, count in shard.counts.items():
                    out.append((path, count, shard.gap_counts.get(path, 0)))
        return out

    def restore_rows(self, rows) -> int:
        """Merge checkpoint rows back in; returns samples restored.

        Rows land through the normal sharding function, so a restore
        into a tree with a different shard count still balances.
        """
        restored = 0
        for path, count, gap_count in rows:
            path = tuple(path)
            plain = count - gap_count
            if plain > 0:
                self.add(path, has_gaps=False, weight=plain)
                restored += plain
            if gap_count > 0:
                self.add(path, has_gaps=True, weight=gap_count)
                restored += gap_count
        return restored

    def render(self, min_total: int = 1, max_depth: Optional[int] = None) -> str:
        return self.merged_report().render(
            min_total=min_total, max_depth=max_depth
        )
