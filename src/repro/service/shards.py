"""Sharded calling-context-tree aggregation, merged on read.

Workers aggregate decoded paths into N independent shards — each a
histogram plus flat rollup counters behind its own lock — so concurrent
batches contend only when they hash to the same shard. Reads (top-K,
rollups, rendering) merge the shards into a fresh
:class:`~repro.postprocess.ContextTreeReport`; the write path never
blocks on a reader building a report.

Two things changed with the batch-first redesign:

* **Contexts are integers.** Retained paths live once, delta-encoded
  and block-compressed, in a shared
  :class:`~repro.service.store.ContextStore`; shards count integer pids
  instead of tuples of strings. Sharding is by pid, so all observations
  of one context land in one shard and merging stays pure addition.
* **Counts carry their epoch.** Every count is keyed ``(pid, epoch)``,
  so queries can answer "under which plan generation was this traffic
  observed" (``epoch=`` filters) without a second bookkeeping pass.

The batched write path (:meth:`add_counts`) applies a whole decoded
batch in one locked pass per shard — the per-group cost after
dedup-then-decode is a dict update, not a lock round trip.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Tuple

from repro.postprocess import ContextTreeReport
from repro.service.store import ContextStore

__all__ = ["ShardStats", "ShardedContextTree"]

Path = Tuple[str, ...]
#: One decoded, counted group: (path, has_gaps, weight, samples, epoch).
CountEntry = Tuple[Path, bool, int, int]


class _Shard:
    """One lock-guarded slice of the aggregate state."""

    __slots__ = (
        "lock", "counts", "leaf_totals", "gap_counts", "gap_samples",
        "samples",
    )

    def __init__(self):
        self.lock = threading.Lock()
        #: (pid, epoch) -> observation count (the histogram top-K reads).
        self.counts: Dict[Tuple[int, int], int] = {}
        #: (leaf name id, epoch) -> observation count.
        self.leaf_totals: Dict[Tuple[Optional[int], int], int] = {}
        #: (pid, epoch) -> gap-crossing observation count (checkpointed
        #: so a recovery reproduces UCP accounting, not just totals).
        self.gap_counts: Dict[Tuple[int, int], int] = {}
        self.gap_samples = 0
        self.samples = 0


class ShardStats:
    """Read-side summary of shard balance."""

    def __init__(self, sizes: List[int]):
        self.sizes = sizes

    @property
    def total(self) -> int:
        return sum(self.sizes)

    @property
    def imbalance(self) -> float:
        """max/mean shard load (1.0 = perfectly even)."""
        if not self.sizes or not self.total:
            return 1.0
        mean = self.total / len(self.sizes)
        return max(self.sizes) / mean if mean else 1.0


class ShardedContextTree:
    """N calling-context-tree shards over one compressed context store."""

    def __init__(self, shards: int = 8, store: Optional[ContextStore] = None):
        if shards < 1:
            raise ValueError("need at least one shard")
        self._shards = [_Shard() for _ in range(shards)]
        self.store = store if store is not None else ContextStore()

    def _shard_of(self, pid: int) -> _Shard:
        return self._shards[pid % len(self._shards)]

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def add(
        self,
        path: Path,
        has_gaps: bool = False,
        weight: int = 1,
        *,
        epoch: int = 0,
        samples: Optional[int] = None,
    ) -> None:
        """Aggregate one decoded context path, ``weight`` times.

        ``samples`` is the number of observations behind ``weight``
        (defaults to ``weight``) — the figure ``total_samples`` and
        shard-balance stats track.
        """
        self.add_counts([(tuple(path), has_gaps, weight, epoch)],
                        samples=samples)

    def add_counts(
        self,
        entries: Iterable[CountEntry],
        *,
        samples: Optional[int] = None,
    ) -> None:
        """Apply decoded (path, has_gaps, weight, epoch) groups.

        Paths are interned into the shared store first (outside any
        shard lock), then counts land with one lock acquisition per
        touched shard. ``samples`` overrides the per-entry observation
        count (summed weight by default) — the batch path passes the
        true sample total so weighted submissions stay accounted.
        """
        interned: Dict[int, List[Tuple[int, bool, int, int, Optional[int]]]] = {}
        n_shards = len(self._shards)
        total_entries = 0
        for path, has_gaps, weight, epoch in entries:
            pid = self.store.intern(tuple(path))
            leaf = self.store.leaf_name_id(pid)
            interned.setdefault(pid % n_shards, []).append(
                (pid, has_gaps, weight, epoch, leaf)
            )
            total_entries += 1
        for shard_index, rows in interned.items():
            shard = self._shards[shard_index]
            with shard.lock:
                for pid, has_gaps, weight, epoch, leaf in rows:
                    key = (pid, epoch)
                    shard.counts[key] = shard.counts.get(key, 0) + weight
                    leaf_key = (leaf, epoch)
                    shard.leaf_totals[leaf_key] = (
                        shard.leaf_totals.get(leaf_key, 0) + weight
                    )
                    if has_gaps:
                        shard.gap_counts[key] = (
                            shard.gap_counts.get(key, 0) + weight
                        )
                        shard.gap_samples += weight
                    if samples is None:
                        shard.samples += weight
        if samples is not None and total_entries:
            # One declared observation total for the whole batch; land
            # it on the first touched shard so sums stay exact.
            shard = self._shards[next(iter(interned))]
            with shard.lock:
                shard.samples += samples

    # ------------------------------------------------------------------
    # Read path (merge on read)
    # ------------------------------------------------------------------
    def _merged_counts(
        self, epoch: Optional[int] = None
    ) -> Dict[int, int]:
        """pid -> count, merged across shards (and epochs unless given)."""
        merged: Dict[int, int] = {}
        for shard in self._shards:
            with shard.lock:
                for (pid, row_epoch), count in shard.counts.items():
                    if epoch is not None and row_epoch != epoch:
                        continue
                    merged[pid] = merged.get(pid, 0) + count
        return merged

    def top_contexts(
        self,
        k: int = 10,
        *,
        epoch: Optional[int] = None,
        decoded: bool = True,
    ) -> List[Tuple[int, object]]:
        """The ``k`` hottest contexts as (count, path), heaviest first.

        ``epoch`` restricts to observations stamped with that plan
        epoch. ``decoded=False`` returns integer context ids (pids)
        instead of decoded paths — cheap handles for diffing or joining
        without touching the compressed store; resolve them later with
        ``tree.store.path(pid)``.
        """
        merged = self._merged_counts(epoch)
        if decoded:
            ranked = sorted(
                ((count, self.store.path(pid)) for pid, count in merged.items()),
                key=lambda item: (-item[0], item[1]),
            )
        else:
            ranked = sorted(
                ((count, pid) for pid, count in merged.items()),
                key=lambda item: (-item[0], item[1]),
            )
        return ranked[:k]

    def function_totals(
        self,
        leaf_only: bool = False,
        *,
        epoch: Optional[int] = None,
        decoded: bool = True,
    ) -> Dict[object, int]:
        """Per-function rollups.

        ``leaf_only=True`` counts samples whose context *ends* at the
        function (exclusive/self counts); otherwise every function
        appearing anywhere in a context is credited once per observation
        (inclusive counts, the flame-graph number). ``epoch`` filters as
        in :meth:`top_contexts`; ``decoded=False`` keys the result by
        interned name id (resolve with ``tree.store.name_of``).
        """
        totals: Dict[object, int] = {}
        if leaf_only:
            for shard in self._shards:
                with shard.lock:
                    for (leaf, row_epoch), count in shard.leaf_totals.items():
                        if epoch is not None and row_epoch != epoch:
                            continue
                        if leaf is None:
                            continue  # the empty context has no leaf
                        key = self.store.name_of(leaf) if decoded else leaf
                        totals[key] = totals.get(key, 0) + count
            return totals
        for pid, count in self._merged_counts(epoch).items():
            for name in set(self.store.path(pid)):
                key: object = name if decoded else self.store._name_ids[name]
                totals[key] = totals.get(key, 0) + count
        return totals

    def merged_report(self) -> ContextTreeReport:
        """One tree containing every shard's contexts (a fresh copy)."""
        report = ContextTreeReport()
        for pid, count in self._merged_counts().items():
            report.add_path(self.store.path(pid), count)
        return report

    @property
    def total_samples(self) -> int:
        return sum(s.samples for s in self._shards)

    def weight_total(self, *, epoch: Optional[int] = None) -> int:
        """Aggregated weight (all epochs, or one epoch's slice)."""
        if epoch is None:
            return sum(self._merged_counts().values())
        total = 0
        for shard in self._shards:
            with shard.lock:
                for (_pid, row_epoch), count in shard.counts.items():
                    if row_epoch == epoch:
                        total += count
        return total

    def gap_total(self, *, epoch: Optional[int] = None) -> int:
        """Gap-crossing observations (optionally one epoch's)."""
        if epoch is None:
            return sum(s.gap_samples for s in self._shards)
        total = 0
        for shard in self._shards:
            with shard.lock:
                for (_pid, row_epoch), count in shard.gap_counts.items():
                    if row_epoch == epoch:
                        total += count
        return total

    @property
    def gap_samples(self) -> int:
        """Samples whose decode crossed a dynamic-loading gap (UCP)."""
        return self.gap_total()

    @property
    def unique_contexts(self) -> int:
        seen = set()
        for shard in self._shards:
            with shard.lock:
                seen.update(pid for pid, _epoch in shard.counts)
        return len(seen)

    def shard_stats(self) -> ShardStats:
        return ShardStats([s.samples for s in self._shards])

    def count_of(self, path: Path, *, epoch: Optional[int] = None) -> int:
        """The aggregated count of one exact context path."""
        pid = self.store.lookup(tuple(path))
        if pid is None:
            return 0
        shard = self._shard_of(pid)
        total = 0
        with shard.lock:
            for (row_pid, row_epoch), count in shard.counts.items():
                if row_pid != pid:
                    continue
                if epoch is not None and row_epoch != epoch:
                    continue
                total += count
        return total

    def clear(self) -> None:
        for shard in self._shards:
            with shard.lock:
                shard.counts.clear()
                shard.leaf_totals.clear()
                shard.gap_counts.clear()
                shard.gap_samples = 0
                shard.samples = 0

    # ------------------------------------------------------------------
    # Checkpoint surface
    # ------------------------------------------------------------------
    def rows(self) -> List[Tuple[Path, int, int, int]]:
        """A consistent-per-shard snapshot of
        ``(path, count, gap_count, epoch)`` — everything
        :meth:`restore_rows` needs to rebuild counts, leaf rollups, gap
        accounting, and the per-epoch breakdown.

        Rows come back in a **stable** order — sorted by (path, epoch),
        never by trie-append or dict-insertion order — so two trees
        holding the same aggregate state snapshot to identical row
        lists regardless of how ingest interleaved. Checkpoints and
        query segments written from these rows are therefore
        byte-deterministic.
        """
        out: List[Tuple[Path, int, int, int]] = []
        for shard in self._shards:
            with shard.lock:
                rows = [
                    (pid, epoch, count, shard.gap_counts.get((pid, epoch), 0))
                    for (pid, epoch), count in shard.counts.items()
                ]
            for pid, epoch, count, gaps in rows:
                out.append((self.store.path(pid), count, gaps, epoch))
        out.sort(key=lambda row: (row[0], row[3]))
        return out

    def restore_rows(self, rows, *, default_epoch: int = 0) -> int:
        """Merge checkpoint rows back in; returns samples restored.

        Accepts both the current 4-tuple ``(path, count, gaps, epoch)``
        rows and the pre-batch 3-tuple ``(path, count, gaps)`` form
        (old checkpoints), which restores under ``default_epoch``.
        Rows land through the normal sharding function, so a restore
        into a tree with a different shard count still balances.
        """
        restored = 0
        for row in rows:
            path = tuple(row[0])
            count, gaps = int(row[1]), int(row[2])
            epoch = int(row[3]) if len(row) > 3 else default_epoch
            plain = count - gaps
            if plain > 0:
                self.add(path, has_gaps=False, weight=plain, epoch=epoch)
                restored += plain
            if gaps > 0:
                self.add(path, has_gaps=True, weight=gaps, epoch=epoch)
                restored += gaps
        return restored

    def render(self, min_total: int = 1, max_depth: Optional[int] = None) -> str:
        return self.merged_report().render(
            min_total=min_total, max_depth=max_depth
        )
