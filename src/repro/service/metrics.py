"""Service observability: counters and latency histograms.

Everything the service does is counted — samples submitted, dropped,
decoded, aggregated; batches drained; queue high-water mark; decode
errors; hot swaps — and the two latencies that matter (per-sample decode,
per-batch drain) go into power-of-two histograms. ``snapshot()`` flattens
the whole thing into a plain dict for benchmarks, tests and the CLI.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

__all__ = ["LatencyHistogram", "ServiceMetrics"]


class LatencyHistogram:
    """Log2-bucketed latency histogram over microseconds.

    Bucket ``i`` counts observations in ``[2**i, 2**(i+1))`` µs (bucket 0
    also absorbs sub-microsecond observations). Cheap enough for the hot
    path: one comparison loop over ~32 buckets, no allocation.
    """

    BUCKETS = 32

    def __init__(self):
        self._counts = [0] * self.BUCKETS
        self._total = 0
        self._sum_us = 0.0
        self._max_us = 0.0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        us = seconds * 1e6
        bucket = 0
        threshold = 2.0
        while us >= threshold and bucket < self.BUCKETS - 1:
            threshold *= 2.0
            bucket += 1
        with self._lock:
            self._counts[bucket] += 1
            self._total += 1
            self._sum_us += us
            if us > self._max_us:
                self._max_us = us

    @property
    def count(self) -> int:
        return self._total

    @property
    def mean_us(self) -> float:
        with self._lock:
            return self._sum_us / self._total if self._total else 0.0

    @property
    def max_us(self) -> float:
        return self._max_us

    def percentile_us(self, q: float) -> float:
        """Upper bucket bound holding the ``q``-quantile (0 < q <= 1)."""
        with self._lock:
            if not self._total:
                return 0.0
            rank = q * self._total
            seen = 0
            for bucket, count in enumerate(self._counts):
                seen += count
                if seen >= rank:
                    return float(2 ** (bucket + 1))
            return float(2 ** self.BUCKETS)  # pragma: no cover

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_us": round(self.mean_us, 3),
            "p50_us": self.percentile_us(0.50),
            "p99_us": self.percentile_us(0.99),
            "max_us": round(self._max_us, 3),
        }


class ServiceMetrics:
    """All of the service's counters behind one lock.

    The counters are plain attributes mutated under :meth:`count`;
    recent decode errors are kept in a bounded ring so operators can see
    *why* samples failed without the list growing with traffic.
    """

    ERROR_RING = 16

    def __init__(self):
        self._lock = threading.Lock()
        self.submitted = 0
        self.dropped = 0
        self.ingested = 0
        self.aggregated = 0
        self.decode_errors = 0
        self.epoch_mismatches = 0
        self.batches = 0
        self.queue_peak = 0
        self.hot_swaps = 0
        self.decode_latency = LatencyHistogram()
        self.batch_latency = LatencyHistogram()
        self._recent_errors: List[str] = []

    def count(self, name: str, delta: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + delta)

    def observe_queue_depth(self, depth: int) -> None:
        with self._lock:
            if depth > self.queue_peak:
                self.queue_peak = depth

    def record_error(self, message: str) -> None:
        with self._lock:
            self.decode_errors += 1
            self._recent_errors.append(message)
            del self._recent_errors[: -self.ERROR_RING]

    @property
    def recent_errors(self) -> List[str]:
        with self._lock:
            return list(self._recent_errors)

    def snapshot(self, queue_depth: Optional[int] = None) -> Dict[str, object]:
        with self._lock:
            out: Dict[str, object] = {
                "submitted": self.submitted,
                "dropped": self.dropped,
                "ingested": self.ingested,
                "aggregated": self.aggregated,
                "decode_errors": self.decode_errors,
                "epoch_mismatches": self.epoch_mismatches,
                "batches": self.batches,
                "queue_peak": self.queue_peak,
                "hot_swaps": self.hot_swaps,
                "recent_errors": list(self._recent_errors),
            }
        out["decode_latency"] = self.decode_latency.snapshot()
        out["batch_latency"] = self.batch_latency.snapshot()
        if queue_depth is not None:
            out["queue_depth"] = queue_depth
        return out
