"""Service observability: a thin shim over the shared metrics registry.

Historically this module owned its own counter and histogram classes;
they are now generalized into :mod:`repro.obs` and ``ServiceMetrics``
delegates every counter, gauge and latency histogram to a scoped
:class:`~repro.obs.MetricsRegistry` (named ``service``) which it
attaches to the process-wide registry — so service metrics share one
namespace and one export path (Prometheus / JSON / ``repro obs``) with
the encode, re-encode and probe metrics, with no duplicated counter
definitions.

The public surface is unchanged: the counters read as plain attributes,
``count(name)`` increments, ``record_error`` keeps a bounded ring of
recent messages, and ``snapshot()`` flattens everything into the same
dict shape as before. ``LatencyHistogram`` is re-exported from
:mod:`repro.obs` for compatibility (its ``observe`` is now O(1)).

Error cardinality is bounded twice over: the ring keeps the last
:data:`ServiceMetrics.ERROR_RING` messages, and the per-kind breakdown
(``errors_by_kind``) caps distinct keys at
:data:`ServiceMetrics.MAX_ERROR_KINDS` with an ``__other__`` overflow
bucket, so an error storm with unique messages cannot grow memory
without bound.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro import obs
from repro.obs.registry import LatencyHistogram, MetricsRegistry

__all__ = ["LatencyHistogram", "ServiceMetrics"]


class ServiceMetrics:
    """The service's counters, registry-backed.

    ``registry`` lets callers supply their own scope (tests); by default
    each instance gets a fresh ``MetricsRegistry("service")`` so two
    services never share counts, and the instance is attached to the
    process-wide :func:`repro.obs.get_registry` (latest wins) so the
    unified exporters see the live service.
    """

    ERROR_RING = 16
    #: Cap on distinct error-kind labels (overflow folds into __other__).
    MAX_ERROR_KINDS = 64
    #: Truncation length for error-kind labels.
    ERROR_KIND_CHARS = 120

    _COUNTERS = (
        "submitted",
        "dropped",
        "ingested",
        "aggregated",
        "decode_errors",
        "epoch_mismatches",
        "batches",
        "hot_swaps",
        # Resilience layer (PR 5): quarantine, retry, breaker fallback,
        # and truthful-deadline accounting.
        "dead_lettered",
        "retries",
        "fallback_retained",
        "fallback_replayed",
        "fallback_dropped",
        "flush_timeout",
        "recovered",
        # Batch-first ingest (dotted names flatten to service.batch.*).
        "batch.submitted",
        "batch.samples",
        "batch.groups",
        "batch.dedup_saved",
    )

    #: Context-store gauges mirrored into the registry (service.store.*).
    _STORE_GAUGES = (
        ("store.contexts", "contexts"),
        ("store.nodes", "nodes"),
        ("store.bytes", "bytes"),
        ("store.bytes_per_context", "bytes_per_context"),
        ("store.sealed_blocks", "sealed_blocks"),
        ("store.unseals", "unseals"),
        ("store.corruptions", "corruptions"),
    )

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        *,
        attach: bool = True,
    ):
        self.registry = (
            registry if registry is not None else MetricsRegistry("service")
        )
        if attach and self.registry is not obs.get_registry():
            obs.get_registry().attach(self.registry)
        self._lock = threading.Lock()
        self._recent_errors: List[str] = []
        for name in self._COUNTERS:
            self.registry.counter(name)
        self.registry.gauge("queue_peak")
        self.decode_latency = self.registry.histogram("decode_latency_us")
        self.batch_latency = self.registry.histogram("batch_latency_us")
        self._error_kinds = self.registry.labeled_counter(
            "errors_by_kind", max_labels=self.MAX_ERROR_KINDS
        )

    # ------------------------------------------------------------------
    # Compatibility surface
    # ------------------------------------------------------------------
    def __getattr__(self, name: str):
        # Only consulted for names not found normally: expose the
        # counters (and queue peak) as the plain attributes they were.
        if name in ServiceMetrics._COUNTERS:
            return self.registry.counter(name).value
        if name == "queue_peak":
            return int(self.registry.gauge(name).value)
        raise AttributeError(name)

    def count(self, name: str, delta: int = 1) -> None:
        self.registry.counter(name).inc(delta)

    def observe_queue_depth(self, depth: int) -> None:
        self.registry.gauge("queue_peak").set_max(depth)

    def observe_store(self, stats: Dict[str, object]) -> None:
        """Mirror :meth:`ContextStore.stats` into service.store.* gauges."""
        for gauge_name, stat_key in self._STORE_GAUGES:
            value = stats.get(stat_key)
            if value is not None:
                self.registry.gauge(gauge_name).set(float(value))

    def record_error(self, message: str) -> None:
        self.registry.counter("decode_errors").inc()
        self._error_kinds.inc(message[: self.ERROR_KIND_CHARS])
        with self._lock:
            self._recent_errors.append(message)
            del self._recent_errors[: -self.ERROR_RING]

    @property
    def recent_errors(self) -> List[str]:
        with self._lock:
            return list(self._recent_errors)

    def snapshot(self, queue_depth: Optional[int] = None) -> Dict[str, object]:
        out: Dict[str, object] = {
            name: self.registry.counter(name).value
            for name in self._COUNTERS
        }
        out["queue_peak"] = int(self.registry.gauge("queue_peak").value)
        out["recent_errors"] = self.recent_errors
        out["errors_by_kind"] = self._error_kinds.snapshot()
        out["decode_latency"] = self.decode_latency.snapshot()
        out["batch_latency"] = self.batch_latency.snapshot()
        if queue_depth is not None:
            out["queue_depth"] = queue_depth
        return out
