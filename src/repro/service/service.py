"""`ContextService`: the collection backend over DeltaPath encodings.

The paper makes a calling context a small integer precisely so the hot
path only does additions and the *decoding* can happen elsewhere. This
module is the "elsewhere", and it is **batch-first**: producers pack
observations into columnar :class:`~repro.service.batch.SampleBatch`
objects and hand them to :meth:`ContextService.submit_batch`; workers
drain whole batches, collapse them into distinct
``(epoch, node, anchor-stack, ID)`` groups, decode each group **once**
through the epoch-aware memoizing
:class:`~repro.service.engine.DecodeEngine`, and apply the counts to
:class:`~repro.service.shards.ShardedContextTree` in one locked pass
per shard. Retained contexts live delta-encoded in a shared
:class:`~repro.service.store.ContextStore`. Queries (top-K hot
contexts, per-function rollups, UCP counts) merge shards on read and
take a uniform keyword-only ``epoch=`` / ``decoded=`` contract.

The scalar calls (:meth:`submit`, :meth:`submit_many`, :meth:`sink`)
remain as thin compatibility shims over the batch path; each emits one
:class:`DeprecationWarning` per call site.

Hot swaps plug straight into PR 1's machinery: call
:meth:`ContextService.install_update` with the :class:`PlanUpdate` used
for ``probe.hot_swap`` and the service bumps its plan epoch. Samples are
stamped with their plan's epoch at submission, and decoding always uses
exactly the stamped epoch's plan — a swap therefore loses no queued
samples and can never serve a mixed-epoch decode.

Failure handling (PR 5) is governed by one conservation law::

    submitted == aggregated + dead_lettered + epoch_mismatches
                 + dropped + fallback_dropped + fallback_pending

Every submitted sample is either in the tree, quarantined in the
dead-letter queue with its exception, dropped by a *declared*
backpressure/shutdown policy, or retained raw in the fallback store
awaiting replay. Nothing vanishes silently. Passing
``resilience=ResilienceConfig(...)`` additionally arms worker
supervision (heartbeats + budgeted restarts), the decode circuit
breaker, and durable checkpoints; ``chaos=ChaosInjector(...)`` threads
fault injection through every one of those paths.

Typical wiring::

    service = ContextService(plan, ServiceConfig(workers=2, shards=8))
    service.start()
    collector = ContextCollector(sink=service.batch_sink())
    Interpreter(program, probe=probe, collector=collector).run()
    collector.close()              # flush the buffering sink
    service.flush()
    service.top_contexts(5)        # [(count, path), ...]
    service.function_totals()      # {function: inclusive count}
    service.stop()
"""

from __future__ import annotations

import os
import random
import sys
import threading
import time
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.errors import (
    CheckpointError,
    DecodingError,
    EpochError,
    QueryError,
    ServiceError,
)
from repro.postprocess import ContextTreeReport
from repro.runtime.plan import DeltaPathPlan, PlanUpdate
from repro.service.batch import SampleBatch
from repro.service.engine import DecodeEngine
from repro.service.ingest import (
    BoundedQueue,
    Sample,
    WorkerPool,
    iter_samples,
)
from repro.service.metrics import ServiceMetrics
from repro.service.shards import ShardedContextTree
from repro.service.store import ContextStore

__all__ = ["ServiceConfig", "ContextService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Every sizing knob of the service in one frozen place."""

    #: Number of aggregation shards (lock striping of the CCT).
    shards: int = 8
    #: Worker threads draining the ingestion queue.
    workers: int = 2
    #: Bounded-queue capacity (samples).
    queue_capacity: int = 4096
    #: Maximum samples per drained batch.
    batch_size: int = 256
    #: Overload policy: "block" | "drop-newest" | "drop-oldest" | "error".
    backpressure: str = "block"
    #: LRU capacity of the interned-piece cache (0 disables).
    piece_cache: int = 1 << 16
    #: LRU capacity of the whole-context cache (0 disables).
    context_cache: int = 1 << 16
    #: How many recent plan epochs stay decodable (None = all).
    retain_epochs: Optional[int] = None
    # -- batch-first knobs (pass as keywords; trailing-with-defaults is
    #    the 3.9-compatible spelling of keyword-only) -------------------
    #: Worker drain budget in samples for the batch path (None keeps
    #: ``batch_size``). Raise it so a worker turn swallows whole
    #: submitted batches instead of chopping the queue into crumbs.
    batch_max: Optional[int] = None
    #: How long (milliseconds) a worker lingers for more traffic when a
    #: drain comes back under budget — bounded latency for fuller,
    #: cheaper-per-sample batches. 0 disables.
    batch_linger_ms: float = 0.0
    #: Context-store compression for sealed blocks: "zlib" | "none".
    store_compression: str = "zlib"
    #: Directory for the durable query-segment store (None disables the
    #: ``repro.query`` layer: no SegmentWriter, ``query()`` raises).
    segment_dir: Optional[str] = None
    #: Bind an ``repro.obs.http`` scrape endpoint on this port while the
    #: service runs (0 = ephemeral port, None disables). Serves
    #: ``/metrics``, ``/health``, ``/ready``, ``/snapshot``, ``/profile``.
    http_port: Optional[int] = None
    #: Scrape-endpoint bind address. Loopback by default: exposing the
    #: surface off-box is a deployment decision, not a default.
    http_host: str = "127.0.0.1"
    #: Decode worker **processes** (0 = the in-process thread pool).
    #: When >= 1 the service fans ingestion out over shared-memory
    #: batch lanes to per-process shard owners (see
    #: :mod:`repro.service.workers`); hot swaps are unsupported in this
    #: topology and metrics/accounting merge at read time.
    worker_processes: int = 0
    #: Ring slots per shared-memory lane (one lane per worker process).
    lane_slots: int = 64
    #: Bytes per lane slot; one DPSB record must fit (oversized batches
    #: are split, an unsplittable record is dropped and counted).
    lane_slot_bytes: int = 1 << 20
    #: Root for worker heartbeat/status/checkpoint files (None = a
    #: private temp dir, removed when the pool is destroyed).
    worker_dir: Optional[str] = None
    #: Run the segment compactor after every N successful
    #: CheckpointDaemon segment flushes (0 disables automatic
    #: compaction; :meth:`ContextService.compact_segments` still works
    #: on demand). Each run merges accumulated delta segments into one
    #: cumulative generation and applies the retention caps below.
    compact_every: int = 0
    #: Retention caps enforced at compaction time (None = unbounded):
    #: live segment-file count, live on-disk bytes, and span age in
    #: seconds. Deletions are tombstoned and counted, never silent.
    retention_max_segments: Optional[int] = None
    retention_max_bytes: Optional[int] = None
    retention_max_age_s: Optional[float] = None

    @property
    def drain_budget(self) -> int:
        """Samples per worker drain (``batch_max`` or ``batch_size``)."""
        return self.batch_max if self.batch_max else self.batch_size


class ContextService:
    """Sharded, cached context-decode and ingestion service.

    ``resilience`` (a :class:`repro.resilience.ResilienceConfig`) arms
    supervision, the circuit breaker, and durable checkpoints. Without
    it the service still quarantines failing samples (dead-letter queue
    + retry) so the conservation law holds in every configuration.
    ``chaos`` (a :class:`repro.resilience.chaos.ChaosInjector`) threads
    fault injection through the worker loop, decode path, and
    checkpoint writes.
    """

    def __init__(
        self,
        plan: DeltaPathPlan,
        config: Optional[ServiceConfig] = None,
        *,
        resilience=None,
        chaos=None,
        **kwargs,
    ):
        if config is not None and kwargs:
            raise ServiceError(
                "pass either a ServiceConfig or config keywords, not both"
            )
        self.config = config if config is not None else ServiceConfig(**kwargs)
        self.engine = DecodeEngine(
            plan,
            piece_cache=self.config.piece_cache,
            context_cache=self.config.context_cache,
            retain_epochs=self.config.retain_epochs,
        )
        self.store = ContextStore(compression=self.config.store_compression)
        self.tree = ShardedContextTree(self.config.shards, store=self.store)
        self.metrics = ServiceMetrics()
        self._legacy_lock = threading.Lock()
        self._legacy_sites: Set[Tuple[str, str, int]] = set()

        # Resilience wiring. The imports are method-local because
        # repro.resilience imports repro.service.ingest — importing it
        # lazily (first service construction) breaks the package cycle.
        from repro.resilience.retry import (
            DeadLetterQueue,
            FallbackStore,
            RetryPolicy,
        )

        self.resilience = resilience
        self._chaos = chaos
        if resilience is not None:
            self._retry_policy = resilience.retry_policy()
            self._dlq = DeadLetterQueue(resilience.dead_letter_capacity)
            self._fallback = FallbackStore(resilience.fallback_capacity)
            self._breaker = resilience.make_breaker()
            self._retry_rng = random.Random(resilience.seed)
        else:
            self._retry_policy = RetryPolicy()
            self._dlq = DeadLetterQueue()
            self._fallback = FallbackStore()
            self._breaker = None
            self._retry_rng = random.Random(0)

        self._queue = BoundedQueue(
            self.config.queue_capacity, self.config.backpressure
        )
        self._pool = WorkerPool(
            self._queue,
            self._handle_items,
            workers=self.config.workers,
            batch_size=self.config.drain_budget,
            linger=self.config.batch_linger_ms / 1000.0,
            on_error=lambda exc: self.metrics.record_error(repr(exc)),
            fault=chaos.worker_fault if chaos is not None else None,
        )

        # Multi-process scale-out: decode worker processes behind
        # shared-memory lanes. The thread pool stays constructed (it is
        # the leftovers/replay engine at stop time) but never starts.
        self._procs = None
        if self.config.worker_processes:
            from repro.service.workers import ProcessWorkerPool

            self._procs = ProcessWorkerPool(plan, self.config)

        self._supervisor = None
        if resilience is not None and resilience.supervise:
            from repro.resilience.supervisor import Supervisor

            self._supervisor = Supervisor(
                self._procs if self._procs is not None else self._pool,
                config=resilience.supervisor_config(),
                on_degraded=self._enter_degraded,
            )

        self._store = None
        if resilience is not None and resilience.checkpoint_dir:
            from repro.resilience.checkpoint import CheckpointStore

            self._store = CheckpointStore(
                resilience.checkpoint_dir,
                retain=resilience.checkpoint_retain,
            )
        self._daemon = None
        self._checkpoints_written = 0

        # Durable query layer (repro.query). Lazy import for the same
        # package-cycle reason as the resilience wiring above.
        self._epoch_fingerprints: Dict[int, str] = {}
        self._segments = None
        self._query_engine = None
        if self.config.segment_dir:
            from repro.query.writer import SegmentWriter

            self._segments = SegmentWriter(
                self.tree,
                self.config.segment_dir,
                fingerprint=self._fingerprint_of(self.engine.epoch),
            )
        self._compactor = None
        self._flushes_since_compact = 0
        if self._segments is not None:
            from repro.query.compact import (
                CompactionPolicy,
                Compactor,
                RetentionPolicy,
            )

            self._compactor = Compactor(
                self._segments.store,
                CompactionPolicy(retention=RetentionPolicy(
                    max_segments=self.config.retention_max_segments,
                    max_bytes=self.config.retention_max_bytes,
                    max_age_s=self.config.retention_max_age_s,
                )),
            )
        # Epoch forensics: what each epoch's plan looked like and which
        # GraphDelta installed it — the join target for dead letters.
        self._epoch_history: Dict[int, dict] = {
            self.engine.epoch: {
                "fingerprint": self._fingerprint_of(self.engine.epoch),
                "delta": None,
                "installed_at": time.time(),
            }
        }

        self._degraded = False
        self._degraded_lock = threading.Lock()
        self._started = False
        self._stopped = False
        self._stop_result: Optional[bool] = None

        #: The live scrape endpoint (``repro.obs.http.ObsHttpServer``)
        #: while running with ``config.http_port`` set, else None.
        self.http = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ContextService":
        if self._stopped:
            raise ServiceError("service was stopped; build a new one")
        if not self._started:
            self._started = True
            if self._procs is not None:
                self._procs.start()
            else:
                self._pool.start()
            if self._supervisor is not None:
                self._supervisor.start()
            if (
                self._store is not None
                and self.resilience.checkpoint_interval > 0
            ):
                from repro.resilience.checkpoint import CheckpointDaemon

                self._daemon = CheckpointDaemon(
                    self, self.resilience.checkpoint_interval
                )
                self._daemon.start()
            if self.config.http_port is not None:
                from repro.obs.http import ObsHttpServer

                self.http = ObsHttpServer(
                    registry=obs.get_registry(),
                    service=self,
                    host=self.config.http_host,
                    port=self.config.http_port,
                ).start()
        return self

    def stop(self, drain: bool = True, timeout: float = 30.0) -> bool:
        """Close ingestion; with ``drain`` wait for queued samples.

        Returns True only when every submitted sample is accounted for
        at return (aggregated, dead-lettered, policy-dropped, or safely
        retained in the fallback store). A stalled worker that outlives
        ``timeout`` yields False and counts ``service.flush_timeout`` —
        a truthful status instead of the silent success it used to be.
        """
        if self._stopped:
            return self._stop_result if self._stop_result is not None else True
        self._stopped = True
        if self.http is not None:
            # Down first so load balancers stop routing before drain;
            # /ready already reports "service stopped" at this point.
            self.http.stop()
            self.http = None
        if self._supervisor is not None:
            self._supervisor.stop()
        if self._daemon is not None:
            self._daemon.stop()
        self._queue.close()
        ok = True
        if self._procs is not None:
            # Process topology: close the lanes, let workers drain and
            # exit (each writes its final checkpoint/segments/status),
            # then ingest inline whatever a dead worker left behind so
            # every sample still lands in a conservation bucket.
            leftovers = self._procs.stop(drain=self._started and drain,
                                         timeout=timeout)
            if self._started:
                for batch in leftovers:
                    self._handle_items([batch])
                if len(self._queue):
                    self._shed_queue_to_fallback()
                self.replay_fallback()
                ok = (
                    self._procs.alive() == 0
                    and not len(self._procs._queue)
                )
                if not ok and drain:
                    self.metrics.count("flush_timeout")
        elif self._started and drain:
            self._pool.join(timeout=timeout)
            if self._pool.alive() == 0:
                # All workers finished (normally or dead): anything the
                # pool left behind is retained raw, then replayed inline
                # unless the breaker is holding decode shut.
                if len(self._queue):
                    self._shed_queue_to_fallback()
                self.replay_fallback()
            ok = self._pool.alive() == 0 and not len(self._queue)
            if not ok:
                self.metrics.count("flush_timeout")
        elif self._started:
            ok = self._pool.alive() == 0 and not len(self._queue)
        if (
            ok
            and self._store is not None
            and self.resilience.checkpoint_on_stop
        ):
            try:
                self.checkpoint()
            except Exception:  # noqa: BLE001 - counted by the store
                pass
        if self._procs is not None:
            self._procs.destroy()
        self._stop_result = ok
        return ok

    def __enter__(self) -> "ContextService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Ingestion (producer side)
    # ------------------------------------------------------------------
    def submit_batch(
        self,
        batch: SampleBatch,
        *,
        timeout: Optional[float] = None,
    ) -> int:
        """Queue a columnar :class:`SampleBatch`; the primary ingest call.

        The batch is admitted, dropped, or (in degraded mode) retained
        **whole** — its sample count lands in exactly one accounting
        bucket, which is what keeps the conservation law exact for
        batch traffic. Epochs were stamped per sample when the batch
        was built (``SampleBatch.append(..., epoch=...)``). Returns the
        number of samples accepted (``len(batch)`` or 0); an iterable
        of :class:`Sample` objects is packed into a batch first.
        """
        if not self._started:
            raise ServiceError("service not started; call start() first")
        if self._stopped:
            raise ServiceError("service is stopped")
        if not isinstance(batch, SampleBatch):
            batch = SampleBatch.from_samples(batch)
        self.metrics.count("batch.submitted")
        count = len(batch)
        if count == 0:
            return 0
        self.metrics.count("submitted", count)
        self.metrics.count("batch.samples", count)
        self.metrics.observe_queue_depth(len(self._queue))
        if self._degraded:
            # The pool is retired: queueing would strand the samples, so
            # they go straight to bounded raw retention.
            retained = 0
            for sample in batch:
                if self._retain_fallback(sample):
                    retained += 1
            return retained
        if self._procs is not None:
            # Lane routing is by function name (stable across processes)
            # so each context always decodes on its shard owner; drops
            # are tallied per lane, by sample count.
            return self._procs.submit(batch, timeout=timeout)
        # Drops of every flavour (newest, oldest, timeout, error, and
        # closed-while-racing-stop) are tallied by the queue itself, by
        # sample count, so accounting stays exact even when the
        # discarded batch is not the one being submitted.
        if self._queue.put(batch, timeout=timeout, on_closed="drop"):
            return count
        return 0

    def batch_sink(self, batch_max: Optional[int] = None) -> Callable:
        """A buffering collector sink over :meth:`submit_batch`.

        The returned callable has the ``sink(node, snapshot, probe)``
        shape :class:`~repro.runtime.collector.ContextCollector`
        expects; it packs observations into a :class:`SampleBatch`
        (stamping each with its probe's plan epoch, so hot swaps
        mid-buffer are safe) and submits whenever ``batch_max`` samples
        accumulate. Call its ``flush()`` attribute — or
        ``collector.close()`` — after the run to submit the tail.
        """
        limit = batch_max if batch_max else self.config.drain_budget
        lock = threading.Lock()
        state = {"batch": SampleBatch()}

        def flush():
            with lock:
                batch, state["batch"] = state["batch"], SampleBatch()
            if len(batch):
                self.submit_batch(batch)

        def _sink(node, snapshot, probe=None):
            plan = getattr(probe, "plan", None)
            epoch = (
                self.engine.epoch if plan is None
                else self.engine.epoch_of(plan)
            )
            full = None
            with lock:
                batch = state["batch"]
                batch.append(node, snapshot, epoch=epoch)
                if len(batch) >= limit:
                    state["batch"] = SampleBatch()
                    full = batch
            if full is not None:
                self.submit_batch(full)

        _sink.flush = flush
        return _sink

    # -- scalar compatibility shims ------------------------------------
    def _warn_legacy(self, api: str, replacement: str) -> None:
        """One :class:`DeprecationWarning` per (api, call site)."""
        frame = sys._getframe(2)
        site = (api, frame.f_code.co_filename, frame.f_lineno)
        with self._legacy_lock:
            if site in self._legacy_sites:
                return
            self._legacy_sites.add(site)
        warnings.warn(
            f"ContextService.{api}() is a compatibility shim over the "
            f"batch-first API; prefer {replacement}",
            DeprecationWarning,
            stacklevel=3,
        )

    def submit(
        self,
        node: str,
        snapshot: Tuple[Sequence, int],
        *,
        plan: Optional[DeltaPathPlan] = None,
        weight: int = 1,
        timeout: Optional[float] = None,
    ) -> bool:
        """Queue one observation for ingestion (scalar shim).

        .. deprecated:: batch-first API
            Prefer :meth:`submit_batch` (or :meth:`batch_sink`); this
            shim feeds the same grouped decode path one sample at a
            time and warns once per call site.

        ``plan`` names the plan the snapshot was captured under (e.g.
        ``probe.plan``); it resolves to the epoch the sample is stamped
        with. Omitted, the current epoch is assumed — only correct when
        no hot swap can be in flight between capture and submission.
        Returns False when the sample was dropped by the backpressure
        policy (or retained raw in degraded mode without aggregation).
        """
        self._warn_legacy("submit", "submit_batch()")
        return self._submit_sample(
            node, snapshot, plan=plan, weight=weight, timeout=timeout
        )

    def _submit_sample(
        self,
        node: str,
        snapshot: Tuple[Sequence, int],
        *,
        plan: Optional[DeltaPathPlan] = None,
        weight: int = 1,
        timeout: Optional[float] = None,
    ) -> bool:
        if not self._started:
            raise ServiceError("service not started; call start() first")
        if self._stopped:
            raise ServiceError("service is stopped")
        epoch = (
            self.engine.epoch if plan is None else self.engine.epoch_of(plan)
        )
        stack, current_id = snapshot
        sample = Sample(
            node=node,
            stack=tuple(stack),
            current_id=current_id,
            epoch=epoch,
            weight=weight,
        )
        self.metrics.count("submitted")
        self.metrics.observe_queue_depth(len(self._queue))
        if self._degraded:
            return self._retain_fallback(sample)
        if self._procs is not None:
            packed = SampleBatch()
            packed.append(
                node, (stack, current_id), epoch=epoch, weight=weight
            )
            return self._procs.submit(packed, timeout=timeout) == 1
        return self._queue.put(sample, timeout=timeout, on_closed="drop")

    def submit_many(
        self,
        observations: Sequence[Tuple[str, Tuple[Sequence, int]]],
        *,
        plan: Optional[DeltaPathPlan] = None,
    ) -> int:
        """Submit many ``(node, snapshot)`` pairs; returns accepted count.

        .. deprecated:: batch-first API
            Prefer packing the observations with
            :meth:`SampleBatch.from_observations` and calling
            :meth:`submit_batch` — one queue item, one decode pass.
        """
        self._warn_legacy("submit_many", "submit_batch()")
        accepted = 0
        for node, snapshot in observations:
            if self._submit_sample(node, snapshot, plan=plan):
                accepted += 1
        return accepted

    def sink(self) -> Callable:
        """A per-observation collector sink (scalar shim).

        .. deprecated:: batch-first API
            Prefer :meth:`batch_sink`, which buffers observations into
            columnar batches (same epoch-stamping contract, one queue
            item per ``batch_max`` samples).

        The collector calls it as ``sink(node, snapshot, probe)``; the
        probe's current plan stamps the sample's epoch, so collection
        keeps working across hot swaps with no extra wiring.
        """
        self._warn_legacy("sink", "batch_sink()")

        def _sink(node, snapshot, probe=None):
            self._submit_sample(
                node, snapshot, plan=getattr(probe, "plan", None)
            )

        return _sink

    def flush(self, timeout: float = 30.0) -> None:
        """Block until everything submitted so far is accounted for.

        "Accounted" follows the conservation law: aggregated,
        dead-lettered, counted as an epoch mismatch, dropped by policy,
        or retained in the fallback store. While the breaker is closed,
        flush also replays the fallback so a post-storm flush leaves the
        tree complete. On timeout it counts ``service.flush_timeout``
        and raises — never a silent half-flush.
        """
        deadline = time.monotonic() + timeout
        if self._procs is not None:
            while time.monotonic() < deadline:
                if self._degraded:
                    self._drain_dead_lanes()
                remaining = max(0.01, deadline - time.monotonic())
                synced = self._procs.sync(timeout=remaining)
                if len(self._fallback):
                    self.replay_fallback()
                acct = self.accounting()
                done = (
                    acct["aggregated"]
                    + acct["dead_lettered"]
                    + acct["epoch_mismatches"]
                    + acct["dropped"]
                    + acct["fallback_dropped"]
                    + acct["fallback_pending"]
                )
                if synced and done >= acct["submitted"]:
                    return
                time.sleep(0.002)
            self.metrics.count("flush_timeout")
            raise ServiceError(f"flush timed out after {timeout}s")
        while time.monotonic() < deadline:
            if self._degraded:
                # No workers left: the flushing thread does the work.
                self._shed_queue_to_fallback()
            if len(self._fallback):
                self.replay_fallback()
            snap = self.metrics.snapshot()
            done = (
                snap["aggregated"]
                + snap["dead_lettered"]
                + snap["epoch_mismatches"]
                + self._queue.dropped
                + snap["fallback_dropped"]
                + len(self._fallback)
            )
            if not len(self._queue) and done >= snap["submitted"]:
                return
            time.sleep(0.002)
        self.metrics.count("flush_timeout")
        raise ServiceError(f"flush timed out after {timeout}s")

    # ------------------------------------------------------------------
    # Hot swap
    # ------------------------------------------------------------------
    def install_update(self, update: PlanUpdate) -> int:
        """Adopt a repaired plan (PR 1 ``apply_delta`` output).

        Returns the new epoch. Samples already queued under older epochs
        still decode under their own plans; new submissions against the
        repaired plan stamp the new epoch.
        """
        self._reject_multiproc_swap()
        epoch = self.engine.install_update(update)
        self.metrics.count("hot_swaps")
        delta = update.delta
        self._record_epoch(epoch, {
            "added_nodes": sorted(delta.added_nodes),
            "removed_nodes": sorted(delta.removed_nodes),
            "added_edges": len(delta.added_edges),
            "removed_edges": len(delta.removed_edges),
        })
        return epoch

    def install_plan(self, plan: DeltaPathPlan) -> int:
        """Adopt a full rebuild as the next epoch."""
        self._reject_multiproc_swap()
        epoch = self.engine.install(plan)
        self.metrics.count("hot_swaps")
        self._record_epoch(epoch, None)
        return epoch

    def _reject_multiproc_swap(self) -> None:
        """Hot swaps are a single-process feature, for now.

        Worker processes decode with the plan they were forked with;
        installing a new epoch in the parent only would stamp samples
        with epochs the workers cannot resolve, turning every
        post-swap sample into a dead letter. Until a cross-process
        plan-distribution protocol exists, the swap is refused loudly.
        """
        if self._procs is not None:
            raise ServiceError(
                "hot swaps are not supported with worker_processes >= 1; "
                "decode workers hold the plan they were spawned with — "
                "stop the fleet and start a new one on the new plan"
            )

    def _fingerprint_of(self, epoch: int) -> str:
        """The SHA-256 plan fingerprint of ``epoch`` ("" once pruned).

        Memoized: quarantine stamps it on every dead letter, and the
        fingerprint of a retained epoch never changes.
        """
        cached = self._epoch_fingerprints.get(epoch)
        if cached is not None:
            return cached
        from repro.resilience.checkpoint import plan_fingerprint

        try:
            fingerprint = plan_fingerprint(self.engine.plan_for(epoch))
        except EpochError:
            fingerprint = ""
        self._epoch_fingerprints[epoch] = fingerprint
        return fingerprint

    def _record_epoch(self, epoch: int, delta_summary) -> None:
        self._epoch_history[epoch] = {
            "fingerprint": self._fingerprint_of(epoch),
            "delta": delta_summary,
            "installed_at": time.time(),
        }
        if self._segments is not None:
            self._segments.set_fingerprint(self._fingerprint_of(epoch))

    def epoch_history(self) -> Dict[int, dict]:
        """Every installed epoch's fingerprint + GraphDelta summary."""
        return {epoch: dict(rec) for epoch, rec in self._epoch_history.items()}

    @property
    def epoch(self) -> int:
        return self.engine.epoch

    @property
    def plan(self) -> DeltaPathPlan:
        return self.engine.plan

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _handle_items(self, items: Sequence) -> None:
        """Drain handler: dedup-then-decode a batch of queue items.

        ``items`` mixes loose :class:`Sample` objects and whole
        :class:`SampleBatch` columns. Everything is collapsed into
        distinct ``(epoch, node, stack, id)`` groups first; each group
        decodes once. With the breaker or chaos armed, groups walk the
        full per-group retry ladder (so fault injection and breaker
        state machines see every group); otherwise the fast path decodes
        the whole group set and lands the counts with one locked pass
        per shard.
        """
        start = time.perf_counter()
        total = 0
        # key -> [n_samples, weight, sources]; a source is either a
        # Sample or a (batch, group-key) pair — materialized only if
        # the group fails and its samples must be quarantined/retained.
        groups: Dict[Tuple, list] = {}
        for item in items:
            if isinstance(item, SampleBatch):
                total += len(item)
                for key, (n, w) in item.groups().items():
                    gkey = (
                        key[0], item.node_of(key), item.stack_of(key), key[3]
                    )
                    slot = groups.get(gkey)
                    if slot is None:
                        groups[gkey] = [n, w, [(item, key)]]
                    else:
                        slot[0] += n
                        slot[1] += w
                        slot[2].append((item, key))
            else:
                total += 1
                gkey = (item.epoch, item.node, item.stack, item.current_id)
                slot = groups.get(gkey)
                if slot is None:
                    groups[gkey] = [1, item.weight, [item]]
                else:
                    slot[0] += 1
                    slot[1] += item.weight
                    slot[2].append(item)
        with obs.span("service.batch", samples=total, groups=len(groups)):
            self.metrics.count("ingested", total)
            self.metrics.count("batch.groups", len(groups))
            self.metrics.count("batch.dedup_saved", total - len(groups))
            if self._breaker is not None or self._chaos is not None:
                for gkey, (n, w, sources) in groups.items():
                    self._ingest_group(gkey, n, w, sources)
            else:
                self._ingest_groups_fast(groups)
            self.metrics.count("batches")
            self.metrics.batch_latency.observe(time.perf_counter() - start)

    @staticmethod
    def _materialize(sources) -> List[Sample]:
        """The actual samples behind a group's sources (failure path)."""
        out: List[Sample] = []
        for src in sources:
            if isinstance(src, tuple):
                batch, key = src
                out.extend(batch.sample(i) for i in batch.indices_of(key))
            else:
                out.append(src)
        return out

    def _ingest_groups_fast(self, groups: Dict[Tuple, list]) -> None:
        """Un-armed path: one decode pass, one shard pass."""
        t0 = time.perf_counter()
        entries = []
        aggregated = 0
        for key, decoded, exc in self.engine.decode_batch(list(groups)):
            n, weight, sources = groups[key]
            if exc is not None:
                if isinstance(exc, (DecodingError, EpochError)):
                    # Deterministic: retrying cannot change the outcome.
                    self.metrics.record_error(
                        f"{key[1]}@epoch{key[0]}: {exc}"
                    )
                    for sample in self._materialize(sources):
                        self._dlq.quarantine(
                            sample, exc, 1,
                            fingerprint=self._fingerprint_of(key[0]),
                        )
                    self.metrics.count("dead_lettered", n)
                    obs.counter("resilience.dead_letters").inc(n)
                elif self._retry_policy.max_attempts <= 1:
                    self.metrics.record_error(
                        f"{key[1]}@epoch{key[0]} (after 1 attempts): {exc!r}"
                    )
                    for sample in self._materialize(sources):
                        self._dlq.quarantine(
                            sample, exc, 1,
                            fingerprint=self._fingerprint_of(key[0]),
                        )
                    self.metrics.count("dead_lettered", n)
                    obs.counter("resilience.dead_letters").inc(n)
                else:
                    # Presumed transient: hand the group to the retry
                    # ladder, crediting the failed decode as attempt 1.
                    self.metrics.count("retries")
                    obs.counter("resilience.retries").inc()
                    time.sleep(self._retry_policy.delay(1, self._retry_rng))
                    self._ingest_group(key, n, weight, sources, attempts=1)
                continue
            path, has_gaps, used_epoch = decoded
            if used_epoch != key[0]:  # pragma: no cover - invariant
                self.metrics.count("epoch_mismatches", n)
                continue
            entries.append((path, has_gaps, weight, key[0]))
            aggregated += n
        if entries:
            self.tree.add_counts(entries)
            self.metrics.count("aggregated", aggregated)
        self.metrics.decode_latency.observe(time.perf_counter() - t0)

    def _ingest_group(
        self, key: Tuple, n: int, weight: int, sources, attempts: int = 0
    ) -> None:
        """Armed path: the scalar retry ladder, applied per group.

        Identical semantics to :meth:`_ingest_sample`, but one decode
        covers all ``n`` samples of the group — every accounting
        outcome (aggregate, dead-letter, retain) moves the whole group,
        keeping the conservation law's induction step intact.
        ``attempts`` credits decode attempts already burned by the fast
        path before it handed the group over.
        """
        epoch, node, stack, current_id = key
        breaker = self._breaker
        if breaker is not None and not breaker.allow():
            for sample in self._materialize(sources):
                self._retain_fallback(sample)
            return
        while True:
            attempts += 1
            t0 = time.perf_counter()
            try:
                if self._chaos is not None:
                    self._chaos.decode_fault()
                path, has_gaps, used_epoch = self.engine.decode_path(
                    node, (stack, current_id), epoch=epoch
                )
            except (DecodingError, EpochError) as exc:
                if breaker is not None:
                    breaker.record_failure()
                self.metrics.record_error(f"{node}@epoch{epoch}: {exc}")
                for sample in self._materialize(sources):
                    self._dlq.quarantine(
                        sample, exc, attempts,
                        fingerprint=self._fingerprint_of(epoch),
                    )
                self.metrics.count("dead_lettered", n)
                obs.counter("resilience.dead_letters").inc(n)
                return
            except Exception as exc:  # noqa: BLE001 - presumed transient
                if breaker is not None:
                    breaker.record_failure()
                    if breaker.state == "open":
                        for sample in self._materialize(sources):
                            self._retain_fallback(sample)
                        return
                if attempts >= self._retry_policy.max_attempts:
                    self.metrics.record_error(
                        f"{node}@epoch{epoch} (after "
                        f"{attempts} attempts): {exc!r}"
                    )
                    for sample in self._materialize(sources):
                        self._dlq.quarantine(sample, exc, attempts)
                    self.metrics.count("dead_lettered", n)
                    obs.counter("resilience.dead_letters").inc(n)
                    return
                self.metrics.count("retries")
                obs.counter("resilience.retries").inc()
                time.sleep(self._retry_policy.delay(attempts, self._retry_rng))
                continue
            break
        self.metrics.decode_latency.observe(time.perf_counter() - t0)
        if breaker is not None:
            breaker.record_success()
        if used_epoch != epoch:  # pragma: no cover - invariant
            self.metrics.count("epoch_mismatches", n)
            return
        self.tree.add(path, has_gaps, weight, epoch=epoch)
        self.metrics.count("aggregated", n)

    def _ingest_sample(self, sample: Sample) -> None:
        """Decode and aggregate one sample, or account for its failure.

        The failure ladder: breaker-open sheds to raw retention;
        deterministic decode failures dead-letter immediately;
        transient exceptions retry with backoff, then dead-letter.
        Exactly one accounting outcome happens per call — that is the
        conservation law's induction step.
        """
        breaker = self._breaker
        if breaker is not None and not breaker.allow():
            self._retain_fallback(sample)
            return
        attempts = 0
        while True:
            attempts += 1
            t0 = time.perf_counter()
            try:
                if self._chaos is not None:
                    self._chaos.decode_fault()
                path, has_gaps, used_epoch = self.engine.decode_path(
                    sample.node, sample.snapshot, epoch=sample.epoch
                )
            except (DecodingError, EpochError) as exc:
                # Deterministic: the snapshot cannot decode under its
                # epoch's plan, and retrying will not change that.
                if breaker is not None:
                    breaker.record_failure()
                self.metrics.record_error(
                    f"{sample.node}@epoch{sample.epoch}: {exc}"
                )
                self._quarantine(sample, exc, attempts)
                return
            except Exception as exc:  # noqa: BLE001 - presumed transient
                if breaker is not None:
                    breaker.record_failure()
                    if breaker.state == "open":
                        # Tripped mid-retry: stop burning attempts, the
                        # sample waits out the storm in raw retention.
                        self._retain_fallback(sample)
                        return
                if attempts >= self._retry_policy.max_attempts:
                    self.metrics.record_error(
                        f"{sample.node}@epoch{sample.epoch} (after "
                        f"{attempts} attempts): {exc!r}"
                    )
                    self._quarantine(sample, exc, attempts)
                    return
                self.metrics.count("retries")
                obs.counter("resilience.retries").inc()
                time.sleep(self._retry_policy.delay(attempts, self._retry_rng))
                continue
            break
        self.metrics.decode_latency.observe(time.perf_counter() - t0)
        if breaker is not None:
            breaker.record_success()
        if used_epoch != sample.epoch:  # pragma: no cover - invariant
            self.metrics.count("epoch_mismatches")
            return
        self.tree.add(path, has_gaps, sample.weight, epoch=sample.epoch)
        self.metrics.count("aggregated")

    def _quarantine(
        self, sample: Sample, exc: BaseException, attempts: int
    ) -> None:
        self._dlq.quarantine(
            sample, exc, attempts,
            fingerprint=self._fingerprint_of(sample.epoch),
        )
        self.metrics.count("dead_lettered")
        obs.counter("resilience.dead_letters").inc()

    def _retain_fallback(self, sample: Sample) -> bool:
        if self._fallback.retain(sample):
            self.metrics.count("fallback_retained")
            return True
        self.metrics.count("fallback_dropped")
        return False

    def _shed_queue_to_fallback(self) -> int:
        """Drain whatever sits in the queue into raw retention."""
        shed = 0
        while True:
            items = self._queue.get_batch(256, timeout=0)
            if not items:
                return shed
            for sample in iter_samples(items):
                self._retain_fallback(sample)
                shed += 1

    def _enter_degraded(self) -> None:
        """Supervisor callback: restart budget exhausted.

        Ingestion is declared degraded: the queue is shed into the raw
        fallback store and new submissions bypass the (dead) pool. The
        service stays queryable and the raw samples stay replayable.
        """
        with self._degraded_lock:
            if self._degraded:
                return
            self._degraded = True
        obs.gauge("resilience.degraded").set(1)
        self._shed_queue_to_fallback()
        if self._procs is not None:
            self._drain_dead_lanes()

    def _drain_dead_lanes(self) -> int:
        """Retain raw whatever dead workers left queued in their lanes."""
        shed = 0
        for batch in self._procs.drain_leftovers(only_dead=True):
            for sample in batch:
                self._retain_fallback(sample)
                shed += 1
        return shed

    @property
    def degraded(self) -> bool:
        return self._degraded

    # ------------------------------------------------------------------
    # Fallback replay / quarantine inspection
    # ------------------------------------------------------------------
    def replay_fallback(self, limit: Optional[int] = None) -> int:
        """Re-ingest retained raw samples through the normal decode path.

        No-op while the breaker is open (that is what the retention is
        *for*). Replay happens on the calling thread; each replayed
        sample ends aggregated or dead-lettered. Returns replay count.
        """
        if self._breaker is not None and self._breaker.state == "open":
            return 0
        replayed = 0
        for sample in self._fallback.drain(limit):
            self.metrics.count("fallback_replayed")
            obs.counter("resilience.fallback_replays").inc()
            self._ingest_sample(sample)
            replayed += 1
        return replayed

    def dead_letters(self) -> List:
        """The quarantined samples (newest-bounded; see DeadLetterQueue)."""
        return self._dlq.letters()

    # ------------------------------------------------------------------
    # Durable checkpoints
    # ------------------------------------------------------------------
    def checkpoint(self, directory: Optional[str] = None) -> str:
        """Write a durable snapshot; returns the checkpoint file path.

        Uses the configured store by default; ``directory`` overrides it
        for one-off snapshots. The snapshot carries the CCT rows, the
        current epoch, and the plan fingerprint that :meth:`recover`
        verifies.
        """
        from repro.resilience.checkpoint import (
            CheckpointState,
            CheckpointStore,
            plan_fingerprint,
        )

        store = self._store
        if directory is not None:
            retain = (
                self.resilience.checkpoint_retain
                if self.resilience is not None
                else 3
            )
            store = CheckpointStore(directory, retain=retain)
        if store is None:
            raise CheckpointError(
                "no checkpoint directory configured; pass directory= or "
                "set ResilienceConfig.checkpoint_dir"
            )
        if self._procs is not None and self._started and not self._stopped:
            # Workers checkpoint their own shards when they ack the
            # sync; the parent snapshot below covers only parent-side
            # rows (leftover re-ingest, fallback replay).
            self._procs.sync(timeout=10.0)
        state = CheckpointState(
            epoch=self.engine.epoch,
            fingerprint=plan_fingerprint(self.engine.plan),
            rows=tuple(self.tree.rows()),
        )
        fault = (
            self._chaos.checkpoint_fault() if self._chaos is not None else None
        )
        with obs.span("resilience.checkpoint", rows=len(state.rows)):
            path = store.write(state, fault=fault)
        self._checkpoints_written += 1
        return path

    def flush_segments(self) -> Optional[str]:
        """Flush the aggregation delta into one durable query segment.

        Returns the new ``seg-*.dpqs`` path, or None when nothing new
        accumulated since the last flush. The CheckpointDaemon calls
        this on its interval; call it manually for explicit flush
        points (the chaos harness does, so a stop() can model a crash
        without an implicit flush hiding un-persisted samples).
        Raises :class:`QueryError` when no ``segment_dir`` is
        configured; chaos checkpoint faults are threaded through so a
        flush can "crash" mid-write like any other durable write.
        """
        if self._segments is None:
            raise QueryError(
                "no segment directory configured; set "
                "ServiceConfig.segment_dir to enable the query layer"
            )
        if self._procs is not None and self._started and not self._stopped:
            # Workers flush their own segment stores on the sync ack.
            self._procs.sync(timeout=10.0)
        fault = (
            self._chaos.checkpoint_fault() if self._chaos is not None else None
        )
        return self._segments.flush(fault=fault)

    def compact_segments(
        self, force: bool = True, fault=None
    ) -> Optional[dict]:
        """Run one generation swap over the segment store.

        Merges accumulated delta segments into one cumulative segment
        and applies the configured retention caps; returns the
        compactor's report dict, or None when nothing was due
        (``force=False``). Chaos compaction faults are threaded
        through so a swap can "crash" at any byte like every other
        durable write. Raises :class:`QueryError` when no
        ``segment_dir`` is configured.
        """
        if self._compactor is None:
            raise QueryError(
                "no segment directory configured; set "
                "ServiceConfig.segment_dir to enable the query layer"
            )
        if fault is None and self._chaos is not None:
            fault = self._chaos.compaction_fault()
        return self._compactor.compact(fault=fault, force=force)

    def maybe_compact_segments(self) -> Optional[dict]:
        """CheckpointDaemon hook: compact every ``compact_every`` flushes.

        Returns the report of a swap that ran, else None. Never raises
        for "not configured" — the daemon calls this unconditionally.
        """
        if self._compactor is None or self.config.compact_every <= 0:
            return None
        self._flushes_since_compact += 1
        if self._flushes_since_compact < self.config.compact_every:
            return None
        self._flushes_since_compact = 0
        fault = (
            self._chaos.compaction_fault() if self._chaos is not None else None
        )
        return self._compactor.compact(fault=fault, force=False)

    def recover(self, source, *, allow_mismatch: bool = False) -> Dict:
        """Replay the newest valid checkpoint from ``source``.

        ``source`` is a checkpoint directory (or a
        :class:`~repro.resilience.checkpoint.CheckpointStore`). Must be
        called on a fresh service — before :meth:`start`, with an empty
        tree — so recovered counts never mix with live ones
        untraceably. The checkpoint's plan fingerprint must match the
        installed plan (``allow_mismatch=True`` skips the check, for
        forensics on a changed binary). Returns a summary dict.
        """
        from repro.resilience.checkpoint import (
            CheckpointStore,
            plan_fingerprint,
        )

        if self._started:
            raise CheckpointError("recover() must run before start()")
        if self.tree.total_samples:
            raise CheckpointError(
                "recover() needs an empty tree; this service already "
                "aggregated samples"
            )
        if isinstance(source, str) and os.path.isdir(source):
            worker_stores = sorted(
                entry.path
                for entry in os.scandir(source)
                if entry.is_dir()
                and entry.name.startswith("worker-")
                and os.path.isdir(os.path.join(entry.path, "checkpoints"))
            )
            if worker_stores:
                return self._recover_worker_fleet(
                    worker_stores, allow_mismatch=allow_mismatch
                )
        store = (
            source
            if isinstance(source, CheckpointStore)
            else CheckpointStore(source)
        )
        t0 = time.perf_counter()
        found = store.load_newest()
        if found is None:
            raise CheckpointError(
                f"no valid checkpoint in {store.directory!r}"
            )
        path, state = found
        fingerprint = plan_fingerprint(self.engine.plan)
        if state.fingerprint != fingerprint and not allow_mismatch:
            raise CheckpointError(
                f"checkpoint {path!r} was written under a different plan "
                f"(fingerprint {state.fingerprint[:12]}… vs installed "
                f"{fingerprint[:12]}…); pass allow_mismatch=True to force"
            )
        restored = self.tree.restore_rows(state.rows)
        self.metrics.count("recovered", restored)
        self.engine.advance_epoch_to(state.epoch)
        if self._segments is not None:
            # A compaction swap the dead process left half-done is
            # resolved first (roll forward when its output is fully
            # durable, back otherwise), so the reconciliation below
            # sees exactly one generation.
            if self._compactor is not None:
                from repro.query.locks import LockHeldError

                try:
                    self._compactor.recover()
                except LockHeldError:
                    pass  # a live mutator owns the swap; reads stay safe
            # Rebase against the durable segments themselves: counts
            # they already hold are never re-emitted, and recovered
            # counts that never reached a segment (checkpoint ran ahead
            # of the flush cadence) go out with the next flush.
            self._segments.rebase(self.tree.rows(), reconcile_store=True)
            self._segments.set_fingerprint(
                self._fingerprint_of(self.engine.epoch)
            )
        obs.counter("resilience.recoveries").inc()
        obs.histogram("resilience.recover_us").observe_us(
            (time.perf_counter() - t0) * 1e6
        )
        return {
            "path": path,
            "epoch": state.epoch,
            "rows": len(state.rows),
            "samples": restored,
        }

    def _recover_worker_fleet(
        self, worker_dirs: List[str], *, allow_mismatch: bool
    ) -> Dict:
        """Reassemble a multi-process fleet's state from its pool root.

        Each ``worker-N/checkpoints`` holds that worker's newest
        snapshot of its *disjoint* shard set, so restoring them
        additively into one tree reconstructs the fleet total exactly
        (row keys never collide across workers; colliding keys from an
        old pre-crash generation sum correctly because
        :meth:`ShardedContextTree.restore_rows` is additive).  The
        segment baseline is rebuilt from the durable segments of every
        store (parent + per-worker), so the first post-recovery flush
        emits exactly the counts that never reached a segment.
        """
        from repro.resilience.checkpoint import (
            CheckpointStore,
            plan_fingerprint,
        )

        t0 = time.perf_counter()
        fingerprint = plan_fingerprint(self.engine.plan)
        restored = 0
        rows_seen = 0
        epoch = self.engine.epoch
        loaded: List[str] = []
        for directory in worker_dirs:
            found = CheckpointStore(
                os.path.join(directory, "checkpoints")
            ).load_newest()
            if found is None:
                continue
            path, state = found
            if state.fingerprint != fingerprint and not allow_mismatch:
                raise CheckpointError(
                    f"worker checkpoint {path!r} was written under a "
                    f"different plan (fingerprint "
                    f"{state.fingerprint[:12]}… vs installed "
                    f"{fingerprint[:12]}…); pass allow_mismatch=True"
                )
            restored += self.tree.restore_rows(state.rows)
            rows_seen += len(state.rows)
            epoch = max(epoch, state.epoch)
            loaded.append(path)
        if not loaded:
            raise CheckpointError(
                f"no valid worker checkpoint under {worker_dirs!r}"
            )
        self.metrics.count("recovered", restored)
        self.engine.advance_epoch_to(epoch)
        if self._segments is not None:
            self._segments.rebase(self._durable_segment_rows())
            self._segments.set_fingerprint(
                self._fingerprint_of(self.engine.epoch)
            )
        obs.counter("resilience.recoveries").inc()
        obs.histogram("resilience.recover_us").observe_us(
            (time.perf_counter() - t0) * 1e6
        )
        return {
            "path": loaded[0],
            "paths": loaded,
            "workers": len(loaded),
            "epoch": epoch,
            "rows": rows_seen,
            "samples": restored,
        }

    def _worker_segment_dirs(self) -> List[str]:
        """Per-worker segment stores under ``segment_dir`` (sorted)."""
        root = self.config.segment_dir
        if not root or not os.path.isdir(root):
            return []
        return sorted(
            entry.path
            for entry in os.scandir(root)
            if entry.is_dir() and entry.name.startswith("worker-")
        )

    def _durable_segment_rows(self) -> List[tuple]:
        """Every durable segment row across parent + worker stores."""
        from repro.query.manifest import SegmentStore

        stores = [self._segments.store]
        stores.extend(
            SegmentStore(path) for path in self._worker_segment_dirs()
        )
        rows: List[tuple] = []
        for store in stores:
            store.refresh()
            for seg in store.segments():
                rows.extend(seg.rows)
        return rows

    # ------------------------------------------------------------------
    # Query API — uniform keyword-only ``epoch=`` / ``decoded=`` contract
    # ------------------------------------------------------------------
    def top_contexts(
        self,
        k: int = 10,
        *,
        epoch: Optional[int] = None,
        decoded: bool = True,
    ) -> List[Tuple[int, object]]:
        """The ``k`` hottest calling contexts as (count, node path).

        ``epoch`` restricts the ranking to samples stamped with that
        plan epoch; ``decoded=False`` returns compact integer context
        ids in place of paths (resolve with ``service.store.path``).
        """
        return self._merged_tree().top_contexts(
            k, epoch=epoch, decoded=decoded
        )

    def _merged_tree(self):
        """The tree the query views read: local, or fleet-merged.

        Single-process, this is ``self.tree``.  With worker processes
        it is a fresh tree holding the parent rows plus every worker's
        latest reported rows (each worker's shard set appears exactly
        once — see :meth:`ProcessWorkerPool.merged_rows`).  A running
        fleet is synced first so the merged view is exact at a
        quiescent point rather than trailing the last heavy status.
        """
        if self._procs is None:
            return self.tree
        if self._started and not self._stopped:
            self._procs.sync(timeout=5.0)
        merged = ShardedContextTree(
            self.config.shards,
            store=ContextStore(compression=self.config.store_compression),
        )
        merged.restore_rows(self.tree.rows())
        merged.restore_rows(self._procs.merged_rows())
        return merged

    def function_totals(
        self,
        leaf_only: bool = False,
        *,
        epoch: Optional[int] = None,
        decoded: bool = True,
    ) -> Dict[object, int]:
        """Per-function rollups (see :meth:`ShardedContextTree.function_totals`)."""
        return self._merged_tree().function_totals(
            leaf_only=leaf_only, epoch=epoch, decoded=decoded
        )

    def ucp_stats(
        self,
        *,
        epoch: Optional[int] = None,
        decoded: bool = True,
    ) -> Dict[str, int]:
        """How much traffic crossed dynamic-loading gaps.

        ``epoch`` restricts the totals to that plan epoch's samples.
        ``decoded`` is accepted for signature uniformity with the other
        queries; the stats are purely numeric, so it has no effect.
        """
        tree = self._merged_tree()
        if epoch is None:
            total = tree.total_samples
        else:
            total = tree.weight_total(epoch=epoch)
        gaps = tree.gap_total(epoch=epoch)
        return {
            "samples": total,
            "gap_samples": gaps,
            "gap_free_samples": total - gaps,
        }

    def query(self):
        """The durable :class:`~repro.query.engine.QueryEngine`.

        Answers come from the flushed segments (refreshed on every
        call), not from process memory: time-windowed top-K, window
        diffs, rollups, flame-graph export — see ``docs/QUERY.md``.
        Raises :class:`QueryError` without a ``segment_dir``.
        """
        if self._segments is None:
            raise QueryError(
                "no segment directory configured; set "
                "ServiceConfig.segment_dir to enable the query layer"
            )
        worker_dirs = tuple(self._worker_segment_dirs())
        if (
            self._query_engine is None
            or worker_dirs != getattr(self, "_query_dirs", None)
        ):
            from repro.query.engine import QueryEngine

            store = self._segments.store
            if worker_dirs:
                from repro.query.manifest import (
                    CompositeSegmentStore,
                    SegmentStore,
                )

                store = CompositeSegmentStore(
                    [store] + [SegmentStore(d) for d in worker_dirs]
                )
            self._query_engine = QueryEngine(store)
            self._query_dirs = worker_dirs
        return self._query_engine.refresh()

    def forensics(self) -> List[dict]:
        """Dead letters joined to the plan epoch that explains them.

        Groups the quarantine queue by (epoch, plan fingerprint) and
        attaches each epoch's recorded :class:`GraphDelta` summary plus
        the segments carrying traffic decoded under the same plan —
        the UCP forensics query, served without a segment store too
        (the segment join is just empty then).
        """
        from repro.query.engine import ucp_forensics

        segments = (
            self._segments.store.segments()
            if self._segments is not None
            else None
        )
        return ucp_forensics(
            self.dead_letters(),
            epoch_history=self._epoch_history,
            segments=segments,
        )

    def report(self) -> ContextTreeReport:
        """The merged calling-context tree (a fresh copy)."""
        return self._merged_tree().merged_report()

    def render_report(
        self, min_total: int = 1, max_depth: Optional[int] = None
    ) -> str:
        return self._merged_tree().render(
            min_total=min_total, max_depth=max_depth
        )

    def accounting(self) -> Dict[str, int]:
        """The conservation-law terms, in one place.

        ``submitted == aggregated + dead_lettered + epoch_mismatches +
        dropped + fallback_dropped + fallback_pending`` must hold at any
        quiescent point (post-``flush`` or post-``stop``); the chaos
        oracles assert exactly this dict.
        """
        counters = self.metrics.snapshot()
        out = {
            "submitted": counters["submitted"],
            "aggregated": counters["aggregated"],
            "dead_lettered": counters["dead_lettered"],
            "epoch_mismatches": counters["epoch_mismatches"],
            "dropped": self._queue.dropped,
            "fallback_dropped": counters["fallback_dropped"],
            "fallback_pending": len(self._fallback),
            "decode_errors": counters["decode_errors"],
            "recovered": counters["recovered"],
        }
        if self._procs is not None:
            # The parent owns ``submitted`` and its own buckets
            # (leftover re-ingest, fallback replay); workers own the
            # decode-side buckets, merged from sealed generations and
            # live statuses.  ``crash_lost`` (samples a SIGKILL ate
            # between lane pop and status write) is already folded into
            # the pool's dead_lettered, and lane drops into dropped.
            fleet = self._procs.accounting()
            for bucket in (
                "aggregated",
                "dead_lettered",
                "epoch_mismatches",
                "dropped",
                "fallback_dropped",
                "fallback_pending",
                "decode_errors",
                "recovered",
            ):
                out[bucket] += fleet.get(bucket, 0)
            out["crash_lost"] = fleet.get("crash_lost", 0)
        return out

    def resilience_stats(self) -> Dict[str, object]:
        """Supervisor / breaker / quarantine / checkpoint state."""
        return {
            "degraded": self._degraded,
            "supervisor": (
                self._supervisor.snapshot()
                if self._supervisor is not None
                else None
            ),
            "breaker": (
                self._breaker.snapshot() if self._breaker is not None else None
            ),
            "dead_letter": {
                "pending": len(self._dlq),
                "total": self._dlq.total,
                "evicted": self._dlq.evicted,
            },
            "fallback": {
                "pending": len(self._fallback),
                "retained": self._fallback.retained,
                "dropped": self._fallback.dropped,
            },
            "checkpoints_written": self._checkpoints_written,
            "workers": (
                self._procs.stats() if self._procs is not None else None
            ),
        }

    def service_metrics(self) -> Dict[str, object]:
        """Counters + latency histograms + cache + shard balance."""
        out = self.metrics.snapshot(queue_depth=len(self._queue))
        out["dropped"] = self._queue.dropped
        out["caches"] = self.engine.cache_stats()
        stats = self.tree.shard_stats()
        out["shards"] = {
            "count": self.config.shards,
            "samples": stats.sizes,
            "imbalance": round(stats.imbalance, 3),
        }
        out["epochs_retained"] = self.engine.retained_epochs()
        out["unique_contexts"] = self.tree.unique_contexts
        store_stats = self.store.stats()
        self.metrics.observe_store(store_stats)
        out["store"] = store_stats
        out["resilience"] = self.resilience_stats()
        out["segments"] = (
            self._segments.stats() if self._segments is not None else None
        )
        out["compaction"] = (
            self._compactor.stats() if self._compactor is not None else None
        )
        return out

    @property
    def http_port(self) -> Optional[int]:
        """The scrape endpoint's actually-bound port while it serves.

        With ``http_port=0`` the OS picks an ephemeral port; this
        resolves it so callers (tests, service discovery) never need to
        reach into ``service.http``. None while no endpoint is up.
        """
        if self.http is None:
            return None
        return self.http.port

    def merged_registry_snapshot(self) -> Optional[Dict[str, object]]:
        """The parent registry snapshot merged with every worker's.

        None in single-process topology (the live registry is already
        the whole truth).  With worker processes, merges the parent's
        snapshot with the sealed final snapshot of every dead worker
        generation plus the latest heavy snapshot of every live one
        (:meth:`MetricsRegistry.merge` semantics: counters sum, gauges
        max, histogram buckets sum exactly), and grafts a synthetic
        ``workers`` child carrying per-slot counters so scrapes can
        tell the workers apart.
        """
        if self._procs is None:
            return None
        from repro.obs.registry import MetricsRegistry

        snaps = [obs.get_registry().snapshot()]
        snaps.extend(self._procs.registry_snapshots())
        merged = MetricsRegistry.merge(*snaps)
        children = merged.setdefault("children", {})
        children["workers"] = self._procs.worker_labels()
        return merged

    def stats(self) -> Dict[str, object]:
        """:meth:`service_metrics` plus the flat registry namespace.

        ``registry`` holds the same dotted names
        (``service.submitted``, ``service.decode_latency_us.p99_us``,
        ...) that the process-wide exporters (``repro obs``,
        ``--metrics-out``, Prometheus) publish — one metric namespace
        shared by ``BENCH_serve.json`` and ``BENCH_obs.json``.
        """
        out = self.service_metrics()
        registry = self.metrics.registry
        out["registry"] = {
            f"{registry.name}.{key}": value
            for key, value in registry.flatten().items()
        }
        out["http_port"] = self.http_port
        out["accounting"] = self.accounting()
        return out
