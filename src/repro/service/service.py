"""`ContextService`: the collection backend over DeltaPath encodings.

The paper makes a calling context a small integer precisely so the hot
path only does additions and the *decoding* can happen elsewhere. This
module is the "elsewhere": probes submit ``(node, snapshot)``
observations; producer threads feed a bounded queue; workers drain
batches, decode them through the epoch-aware memoizing
:class:`~repro.service.engine.DecodeEngine`, and aggregate into
:class:`~repro.service.shards.ShardedContextTree`; queries (top-K hot
contexts, per-function rollups, UCP counts) merge shards on read.

Hot swaps plug straight into PR 1's machinery: call
:meth:`ContextService.install_update` with the :class:`PlanUpdate` used
for ``probe.hot_swap`` and the service bumps its plan epoch. Samples are
stamped with their plan's epoch at submission, and decoding always uses
exactly the stamped epoch's plan — a swap therefore loses no queued
samples and can never serve a mixed-epoch decode.

Failure handling (PR 5) is governed by one conservation law::

    submitted == aggregated + dead_lettered + epoch_mismatches
                 + dropped + fallback_dropped + fallback_pending

Every submitted sample is either in the tree, quarantined in the
dead-letter queue with its exception, dropped by a *declared*
backpressure/shutdown policy, or retained raw in the fallback store
awaiting replay. Nothing vanishes silently. Passing
``resilience=ResilienceConfig(...)`` additionally arms worker
supervision (heartbeats + budgeted restarts), the decode circuit
breaker, and durable checkpoints; ``chaos=ChaosInjector(...)`` threads
fault injection through every one of those paths.

Typical wiring::

    service = ContextService(plan, ServiceConfig(workers=2, shards=8))
    service.start()
    collector = ContextCollector(sink=service.sink())
    Interpreter(program, probe=probe, collector=collector).run()
    service.flush()
    service.top_contexts(5)        # [(count, path), ...]
    service.function_totals()      # {function: inclusive count}
    service.stop()
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import (
    CheckpointError,
    DecodingError,
    EpochError,
    ServiceError,
)
from repro.postprocess import ContextTreeReport
from repro.runtime.plan import DeltaPathPlan, PlanUpdate
from repro.service.engine import DecodeEngine
from repro.service.ingest import BoundedQueue, Sample, WorkerPool
from repro.service.metrics import ServiceMetrics
from repro.service.shards import ShardedContextTree

__all__ = ["ServiceConfig", "ContextService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Every sizing knob of the service in one frozen place."""

    #: Number of aggregation shards (lock striping of the CCT).
    shards: int = 8
    #: Worker threads draining the ingestion queue.
    workers: int = 2
    #: Bounded-queue capacity (samples).
    queue_capacity: int = 4096
    #: Maximum samples per drained batch.
    batch_size: int = 256
    #: Overload policy: "block" | "drop-newest" | "drop-oldest" | "error".
    backpressure: str = "block"
    #: LRU capacity of the interned-piece cache (0 disables).
    piece_cache: int = 1 << 16
    #: LRU capacity of the whole-context cache (0 disables).
    context_cache: int = 1 << 16
    #: How many recent plan epochs stay decodable (None = all).
    retain_epochs: Optional[int] = None


class ContextService:
    """Sharded, cached context-decode and ingestion service.

    ``resilience`` (a :class:`repro.resilience.ResilienceConfig`) arms
    supervision, the circuit breaker, and durable checkpoints. Without
    it the service still quarantines failing samples (dead-letter queue
    + retry) so the conservation law holds in every configuration.
    ``chaos`` (a :class:`repro.resilience.chaos.ChaosInjector`) threads
    fault injection through the worker loop, decode path, and
    checkpoint writes.
    """

    def __init__(
        self,
        plan: DeltaPathPlan,
        config: Optional[ServiceConfig] = None,
        *,
        resilience=None,
        chaos=None,
        **kwargs,
    ):
        if config is not None and kwargs:
            raise ServiceError(
                "pass either a ServiceConfig or config keywords, not both"
            )
        self.config = config if config is not None else ServiceConfig(**kwargs)
        self.engine = DecodeEngine(
            plan,
            piece_cache=self.config.piece_cache,
            context_cache=self.config.context_cache,
            retain_epochs=self.config.retain_epochs,
        )
        self.tree = ShardedContextTree(self.config.shards)
        self.metrics = ServiceMetrics()

        # Resilience wiring. The imports are method-local because
        # repro.resilience imports repro.service.ingest — importing it
        # lazily (first service construction) breaks the package cycle.
        from repro.resilience.retry import (
            DeadLetterQueue,
            FallbackStore,
            RetryPolicy,
        )

        self.resilience = resilience
        self._chaos = chaos
        if resilience is not None:
            self._retry_policy = resilience.retry_policy()
            self._dlq = DeadLetterQueue(resilience.dead_letter_capacity)
            self._fallback = FallbackStore(resilience.fallback_capacity)
            self._breaker = resilience.make_breaker()
            self._retry_rng = random.Random(resilience.seed)
        else:
            self._retry_policy = RetryPolicy()
            self._dlq = DeadLetterQueue()
            self._fallback = FallbackStore()
            self._breaker = None
            self._retry_rng = random.Random(0)

        self._queue = BoundedQueue(
            self.config.queue_capacity, self.config.backpressure
        )
        self._pool = WorkerPool(
            self._queue,
            self._handle_batch,
            workers=self.config.workers,
            batch_size=self.config.batch_size,
            on_error=lambda exc: self.metrics.record_error(repr(exc)),
            fault=chaos.worker_fault if chaos is not None else None,
        )

        self._supervisor = None
        if resilience is not None and resilience.supervise:
            from repro.resilience.supervisor import Supervisor

            self._supervisor = Supervisor(
                self._pool,
                config=resilience.supervisor_config(),
                on_degraded=self._enter_degraded,
            )

        self._store = None
        if resilience is not None and resilience.checkpoint_dir:
            from repro.resilience.checkpoint import CheckpointStore

            self._store = CheckpointStore(
                resilience.checkpoint_dir,
                retain=resilience.checkpoint_retain,
            )
        self._daemon = None
        self._checkpoints_written = 0

        self._degraded = False
        self._degraded_lock = threading.Lock()
        self._started = False
        self._stopped = False
        self._stop_result: Optional[bool] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ContextService":
        if self._stopped:
            raise ServiceError("service was stopped; build a new one")
        if not self._started:
            self._started = True
            self._pool.start()
            if self._supervisor is not None:
                self._supervisor.start()
            if (
                self._store is not None
                and self.resilience.checkpoint_interval > 0
            ):
                from repro.resilience.checkpoint import CheckpointDaemon

                self._daemon = CheckpointDaemon(
                    self, self.resilience.checkpoint_interval
                )
                self._daemon.start()
        return self

    def stop(self, drain: bool = True, timeout: float = 30.0) -> bool:
        """Close ingestion; with ``drain`` wait for queued samples.

        Returns True only when every submitted sample is accounted for
        at return (aggregated, dead-lettered, policy-dropped, or safely
        retained in the fallback store). A stalled worker that outlives
        ``timeout`` yields False and counts ``service.flush_timeout`` —
        a truthful status instead of the silent success it used to be.
        """
        if self._stopped:
            return self._stop_result if self._stop_result is not None else True
        self._stopped = True
        if self._supervisor is not None:
            self._supervisor.stop()
        if self._daemon is not None:
            self._daemon.stop()
        self._queue.close()
        ok = True
        if self._started and drain:
            self._pool.join(timeout=timeout)
            if self._pool.alive() == 0:
                # All workers finished (normally or dead): anything the
                # pool left behind is retained raw, then replayed inline
                # unless the breaker is holding decode shut.
                if len(self._queue):
                    self._shed_queue_to_fallback()
                self.replay_fallback()
            ok = self._pool.alive() == 0 and not len(self._queue)
            if not ok:
                self.metrics.count("flush_timeout")
        elif self._started:
            ok = self._pool.alive() == 0 and not len(self._queue)
        if (
            ok
            and self._store is not None
            and self.resilience.checkpoint_on_stop
        ):
            try:
                self.checkpoint()
            except Exception:  # noqa: BLE001 - counted by the store
                pass
        self._stop_result = ok
        return ok

    def __enter__(self) -> "ContextService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Ingestion (producer side)
    # ------------------------------------------------------------------
    def submit(
        self,
        node: str,
        snapshot: Tuple[Sequence, int],
        *,
        plan: Optional[DeltaPathPlan] = None,
        weight: int = 1,
        timeout: Optional[float] = None,
    ) -> bool:
        """Queue one observation for ingestion.

        ``plan`` names the plan the snapshot was captured under (e.g.
        ``probe.plan``); it resolves to the epoch the sample is stamped
        with. Omitted, the current epoch is assumed — only correct when
        no hot swap can be in flight between capture and submission.
        Returns False when the sample was dropped by the backpressure
        policy (or retained raw in degraded mode without aggregation).
        """
        if not self._started:
            raise ServiceError("service not started; call start() first")
        if self._stopped:
            raise ServiceError("service is stopped")
        epoch = (
            self.engine.epoch if plan is None else self.engine.epoch_of(plan)
        )
        stack, current_id = snapshot
        sample = Sample(
            node=node,
            stack=tuple(stack),
            current_id=current_id,
            epoch=epoch,
            weight=weight,
        )
        self.metrics.count("submitted")
        self.metrics.observe_queue_depth(len(self._queue))
        if self._degraded:
            # The pool is retired: queueing would strand the sample, so
            # it goes straight to bounded raw retention.
            return self._retain_fallback(sample)
        # Drops of every flavour (newest, oldest, timeout, error, and
        # closed-while-racing-stop) are tallied by the queue itself so
        # accounting stays exact even when the discarded sample is not
        # the one being submitted.
        return self._queue.put(sample, timeout=timeout, on_closed="drop")

    def submit_many(
        self,
        observations: Sequence[Tuple[str, Tuple[Sequence, int]]],
        *,
        plan: Optional[DeltaPathPlan] = None,
    ) -> int:
        """Submit many ``(node, snapshot)`` pairs; returns accepted count."""
        accepted = 0
        for node, snapshot in observations:
            if self.submit(node, snapshot, plan=plan):
                accepted += 1
        return accepted

    def sink(self) -> Callable:
        """A :class:`~repro.runtime.collector.ContextCollector` sink.

        The collector calls it as ``sink(node, snapshot, probe)``; the
        probe's current plan stamps the sample's epoch, so collection
        keeps working across hot swaps with no extra wiring.
        """

        def _sink(node, snapshot, probe=None):
            self.submit(
                node, snapshot, plan=getattr(probe, "plan", None)
            )

        return _sink

    def flush(self, timeout: float = 30.0) -> None:
        """Block until everything submitted so far is accounted for.

        "Accounted" follows the conservation law: aggregated,
        dead-lettered, counted as an epoch mismatch, dropped by policy,
        or retained in the fallback store. While the breaker is closed,
        flush also replays the fallback so a post-storm flush leaves the
        tree complete. On timeout it counts ``service.flush_timeout``
        and raises — never a silent half-flush.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self._degraded:
                # No workers left: the flushing thread does the work.
                self._shed_queue_to_fallback()
            if len(self._fallback):
                self.replay_fallback()
            snap = self.metrics.snapshot()
            done = (
                snap["aggregated"]
                + snap["dead_lettered"]
                + snap["epoch_mismatches"]
                + self._queue.dropped
                + snap["fallback_dropped"]
                + len(self._fallback)
            )
            if not len(self._queue) and done >= snap["submitted"]:
                return
            time.sleep(0.002)
        self.metrics.count("flush_timeout")
        raise ServiceError(f"flush timed out after {timeout}s")

    # ------------------------------------------------------------------
    # Hot swap
    # ------------------------------------------------------------------
    def install_update(self, update: PlanUpdate) -> int:
        """Adopt a repaired plan (PR 1 ``apply_delta`` output).

        Returns the new epoch. Samples already queued under older epochs
        still decode under their own plans; new submissions against the
        repaired plan stamp the new epoch.
        """
        epoch = self.engine.install_update(update)
        self.metrics.count("hot_swaps")
        return epoch

    def install_plan(self, plan: DeltaPathPlan) -> int:
        """Adopt a full rebuild as the next epoch."""
        epoch = self.engine.install(plan)
        self.metrics.count("hot_swaps")
        return epoch

    @property
    def epoch(self) -> int:
        return self.engine.epoch

    @property
    def plan(self) -> DeltaPathPlan:
        return self.engine.plan

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _handle_batch(self, batch: Sequence[Sample]) -> None:
        start = time.perf_counter()
        with obs.span("service.batch", samples=len(batch)):
            for sample in batch:
                self.metrics.count("ingested")
                self._ingest_sample(sample)
            self.metrics.count("batches")
            self.metrics.batch_latency.observe(time.perf_counter() - start)

    def _ingest_sample(self, sample: Sample) -> None:
        """Decode and aggregate one sample, or account for its failure.

        The failure ladder: breaker-open sheds to raw retention;
        deterministic decode failures dead-letter immediately;
        transient exceptions retry with backoff, then dead-letter.
        Exactly one accounting outcome happens per call — that is the
        conservation law's induction step.
        """
        breaker = self._breaker
        if breaker is not None and not breaker.allow():
            self._retain_fallback(sample)
            return
        attempts = 0
        while True:
            attempts += 1
            t0 = time.perf_counter()
            try:
                if self._chaos is not None:
                    self._chaos.decode_fault()
                path, has_gaps, used_epoch = self.engine.decode_path(
                    sample.node, sample.snapshot, epoch=sample.epoch
                )
            except (DecodingError, EpochError) as exc:
                # Deterministic: the snapshot cannot decode under its
                # epoch's plan, and retrying will not change that.
                if breaker is not None:
                    breaker.record_failure()
                self.metrics.record_error(
                    f"{sample.node}@epoch{sample.epoch}: {exc}"
                )
                self._quarantine(sample, exc, attempts)
                return
            except Exception as exc:  # noqa: BLE001 - presumed transient
                if breaker is not None:
                    breaker.record_failure()
                    if breaker.state == "open":
                        # Tripped mid-retry: stop burning attempts, the
                        # sample waits out the storm in raw retention.
                        self._retain_fallback(sample)
                        return
                if attempts >= self._retry_policy.max_attempts:
                    self.metrics.record_error(
                        f"{sample.node}@epoch{sample.epoch} (after "
                        f"{attempts} attempts): {exc!r}"
                    )
                    self._quarantine(sample, exc, attempts)
                    return
                self.metrics.count("retries")
                obs.counter("resilience.retries").inc()
                time.sleep(self._retry_policy.delay(attempts, self._retry_rng))
                continue
            break
        self.metrics.decode_latency.observe(time.perf_counter() - t0)
        if breaker is not None:
            breaker.record_success()
        if used_epoch != sample.epoch:  # pragma: no cover - invariant
            self.metrics.count("epoch_mismatches")
            return
        self.tree.add(path, has_gaps, sample.weight)
        self.metrics.count("aggregated")

    def _quarantine(
        self, sample: Sample, exc: BaseException, attempts: int
    ) -> None:
        self._dlq.quarantine(sample, exc, attempts)
        self.metrics.count("dead_lettered")
        obs.counter("resilience.dead_letters").inc()

    def _retain_fallback(self, sample: Sample) -> bool:
        if self._fallback.retain(sample):
            self.metrics.count("fallback_retained")
            return True
        self.metrics.count("fallback_dropped")
        return False

    def _shed_queue_to_fallback(self) -> int:
        """Drain whatever sits in the queue into raw retention."""
        shed = 0
        while True:
            batch = self._queue.get_batch(256, timeout=0)
            if not batch:
                return shed
            for sample in batch:
                self._retain_fallback(sample)
                shed += 1

    def _enter_degraded(self) -> None:
        """Supervisor callback: restart budget exhausted.

        Ingestion is declared degraded: the queue is shed into the raw
        fallback store and new submissions bypass the (dead) pool. The
        service stays queryable and the raw samples stay replayable.
        """
        with self._degraded_lock:
            if self._degraded:
                return
            self._degraded = True
        obs.gauge("resilience.degraded").set(1)
        self._shed_queue_to_fallback()

    @property
    def degraded(self) -> bool:
        return self._degraded

    # ------------------------------------------------------------------
    # Fallback replay / quarantine inspection
    # ------------------------------------------------------------------
    def replay_fallback(self, limit: Optional[int] = None) -> int:
        """Re-ingest retained raw samples through the normal decode path.

        No-op while the breaker is open (that is what the retention is
        *for*). Replay happens on the calling thread; each replayed
        sample ends aggregated or dead-lettered. Returns replay count.
        """
        if self._breaker is not None and self._breaker.state == "open":
            return 0
        replayed = 0
        for sample in self._fallback.drain(limit):
            self.metrics.count("fallback_replayed")
            obs.counter("resilience.fallback_replays").inc()
            self._ingest_sample(sample)
            replayed += 1
        return replayed

    def dead_letters(self) -> List:
        """The quarantined samples (newest-bounded; see DeadLetterQueue)."""
        return self._dlq.letters()

    # ------------------------------------------------------------------
    # Durable checkpoints
    # ------------------------------------------------------------------
    def checkpoint(self, directory: Optional[str] = None) -> str:
        """Write a durable snapshot; returns the checkpoint file path.

        Uses the configured store by default; ``directory`` overrides it
        for one-off snapshots. The snapshot carries the CCT rows, the
        current epoch, and the plan fingerprint that :meth:`recover`
        verifies.
        """
        from repro.resilience.checkpoint import (
            CheckpointState,
            CheckpointStore,
            plan_fingerprint,
        )

        store = self._store
        if directory is not None:
            retain = (
                self.resilience.checkpoint_retain
                if self.resilience is not None
                else 3
            )
            store = CheckpointStore(directory, retain=retain)
        if store is None:
            raise CheckpointError(
                "no checkpoint directory configured; pass directory= or "
                "set ResilienceConfig.checkpoint_dir"
            )
        state = CheckpointState(
            epoch=self.engine.epoch,
            fingerprint=plan_fingerprint(self.engine.plan),
            rows=tuple(self.tree.rows()),
        )
        fault = (
            self._chaos.checkpoint_fault() if self._chaos is not None else None
        )
        with obs.span("resilience.checkpoint", rows=len(state.rows)):
            path = store.write(state, fault=fault)
        self._checkpoints_written += 1
        return path

    def recover(self, source, *, allow_mismatch: bool = False) -> Dict:
        """Replay the newest valid checkpoint from ``source``.

        ``source`` is a checkpoint directory (or a
        :class:`~repro.resilience.checkpoint.CheckpointStore`). Must be
        called on a fresh service — before :meth:`start`, with an empty
        tree — so recovered counts never mix with live ones
        untraceably. The checkpoint's plan fingerprint must match the
        installed plan (``allow_mismatch=True`` skips the check, for
        forensics on a changed binary). Returns a summary dict.
        """
        from repro.resilience.checkpoint import (
            CheckpointStore,
            plan_fingerprint,
        )

        if self._started:
            raise CheckpointError("recover() must run before start()")
        if self.tree.total_samples:
            raise CheckpointError(
                "recover() needs an empty tree; this service already "
                "aggregated samples"
            )
        store = (
            source
            if isinstance(source, CheckpointStore)
            else CheckpointStore(source)
        )
        t0 = time.perf_counter()
        found = store.load_newest()
        if found is None:
            raise CheckpointError(
                f"no valid checkpoint in {store.directory!r}"
            )
        path, state = found
        fingerprint = plan_fingerprint(self.engine.plan)
        if state.fingerprint != fingerprint and not allow_mismatch:
            raise CheckpointError(
                f"checkpoint {path!r} was written under a different plan "
                f"(fingerprint {state.fingerprint[:12]}… vs installed "
                f"{fingerprint[:12]}…); pass allow_mismatch=True to force"
            )
        restored = self.tree.restore_rows(state.rows)
        self.metrics.count("recovered", restored)
        self.engine.advance_epoch_to(state.epoch)
        obs.counter("resilience.recoveries").inc()
        obs.histogram("resilience.recover_us").observe_us(
            (time.perf_counter() - t0) * 1e6
        )
        return {
            "path": path,
            "epoch": state.epoch,
            "rows": len(state.rows),
            "samples": restored,
        }

    # ------------------------------------------------------------------
    # Query API
    # ------------------------------------------------------------------
    def top_contexts(self, k: int = 10) -> List[Tuple[int, Tuple[str, ...]]]:
        """The ``k`` hottest calling contexts as (count, node path)."""
        return self.tree.top_contexts(k)

    def function_totals(self, leaf_only: bool = False) -> Dict[str, int]:
        """Per-function rollups (see :meth:`ShardedContextTree.function_totals`)."""
        return self.tree.function_totals(leaf_only=leaf_only)

    def ucp_stats(self) -> Dict[str, int]:
        """How much traffic crossed dynamic-loading gaps."""
        total = self.tree.total_samples
        gaps = self.tree.gap_samples
        return {
            "samples": total,
            "gap_samples": gaps,
            "gap_free_samples": total - gaps,
        }

    def report(self) -> ContextTreeReport:
        """The merged calling-context tree (a fresh copy)."""
        return self.tree.merged_report()

    def render_report(
        self, min_total: int = 1, max_depth: Optional[int] = None
    ) -> str:
        return self.tree.render(min_total=min_total, max_depth=max_depth)

    def accounting(self) -> Dict[str, int]:
        """The conservation-law terms, in one place.

        ``submitted == aggregated + dead_lettered + epoch_mismatches +
        dropped + fallback_dropped + fallback_pending`` must hold at any
        quiescent point (post-``flush`` or post-``stop``); the chaos
        oracles assert exactly this dict.
        """
        counters = self.metrics.snapshot()
        return {
            "submitted": counters["submitted"],
            "aggregated": counters["aggregated"],
            "dead_lettered": counters["dead_lettered"],
            "epoch_mismatches": counters["epoch_mismatches"],
            "dropped": self._queue.dropped,
            "fallback_dropped": counters["fallback_dropped"],
            "fallback_pending": len(self._fallback),
            "decode_errors": counters["decode_errors"],
            "recovered": counters["recovered"],
        }

    def resilience_stats(self) -> Dict[str, object]:
        """Supervisor / breaker / quarantine / checkpoint state."""
        return {
            "degraded": self._degraded,
            "supervisor": (
                self._supervisor.snapshot()
                if self._supervisor is not None
                else None
            ),
            "breaker": (
                self._breaker.snapshot() if self._breaker is not None else None
            ),
            "dead_letter": {
                "pending": len(self._dlq),
                "total": self._dlq.total,
                "evicted": self._dlq.evicted,
            },
            "fallback": {
                "pending": len(self._fallback),
                "retained": self._fallback.retained,
                "dropped": self._fallback.dropped,
            },
            "checkpoints_written": self._checkpoints_written,
        }

    def service_metrics(self) -> Dict[str, object]:
        """Counters + latency histograms + cache + shard balance."""
        out = self.metrics.snapshot(queue_depth=len(self._queue))
        out["dropped"] = self._queue.dropped
        out["caches"] = self.engine.cache_stats()
        stats = self.tree.shard_stats()
        out["shards"] = {
            "count": self.config.shards,
            "samples": stats.sizes,
            "imbalance": round(stats.imbalance, 3),
        }
        out["epochs_retained"] = self.engine.retained_epochs()
        out["unique_contexts"] = self.tree.unique_contexts
        out["resilience"] = self.resilience_stats()
        return out

    def stats(self) -> Dict[str, object]:
        """:meth:`service_metrics` plus the flat registry namespace.

        ``registry`` holds the same dotted names
        (``service.submitted``, ``service.decode_latency_us.p99_us``,
        ...) that the process-wide exporters (``repro obs``,
        ``--metrics-out``, Prometheus) publish — one metric namespace
        shared by ``BENCH_serve.json`` and ``BENCH_obs.json``.
        """
        out = self.service_metrics()
        registry = self.metrics.registry
        out["registry"] = {
            f"{registry.name}.{key}": value
            for key, value in registry.flatten().items()
        }
        return out
