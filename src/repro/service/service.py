"""`ContextService`: the collection backend over DeltaPath encodings.

The paper makes a calling context a small integer precisely so the hot
path only does additions and the *decoding* can happen elsewhere. This
module is the "elsewhere": probes submit ``(node, snapshot)``
observations; producer threads feed a bounded queue; workers drain
batches, decode them through the epoch-aware memoizing
:class:`~repro.service.engine.DecodeEngine`, and aggregate into
:class:`~repro.service.shards.ShardedContextTree`; queries (top-K hot
contexts, per-function rollups, UCP counts) merge shards on read.

Hot swaps plug straight into PR 1's machinery: call
:meth:`ContextService.install_update` with the :class:`PlanUpdate` used
for ``probe.hot_swap`` and the service bumps its plan epoch. Samples are
stamped with their plan's epoch at submission, and decoding always uses
exactly the stamped epoch's plan — a swap therefore loses no queued
samples and can never serve a mixed-epoch decode.

Typical wiring::

    service = ContextService(plan, ServiceConfig(workers=2, shards=8))
    service.start()
    collector = ContextCollector(sink=service.sink())
    Interpreter(program, probe=probe, collector=collector).run()
    service.flush()
    service.top_contexts(5)        # [(count, path), ...]
    service.function_totals()      # {function: inclusive count}
    service.stop()
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import DecodingError, EpochError, ServiceError
from repro.postprocess import ContextTreeReport
from repro.runtime.plan import DeltaPathPlan, PlanUpdate
from repro.service.engine import DecodeEngine
from repro.service.ingest import BoundedQueue, Sample, WorkerPool
from repro.service.metrics import ServiceMetrics
from repro.service.shards import ShardedContextTree

__all__ = ["ServiceConfig", "ContextService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Every sizing knob of the service in one frozen place."""

    #: Number of aggregation shards (lock striping of the CCT).
    shards: int = 8
    #: Worker threads draining the ingestion queue.
    workers: int = 2
    #: Bounded-queue capacity (samples).
    queue_capacity: int = 4096
    #: Maximum samples per drained batch.
    batch_size: int = 256
    #: Overload policy: "block" | "drop-newest" | "drop-oldest" | "error".
    backpressure: str = "block"
    #: LRU capacity of the interned-piece cache (0 disables).
    piece_cache: int = 1 << 16
    #: LRU capacity of the whole-context cache (0 disables).
    context_cache: int = 1 << 16
    #: How many recent plan epochs stay decodable (None = all).
    retain_epochs: Optional[int] = None


class ContextService:
    """Sharded, cached context-decode and ingestion service."""

    def __init__(
        self,
        plan: DeltaPathPlan,
        config: Optional[ServiceConfig] = None,
        **kwargs,
    ):
        if config is not None and kwargs:
            raise ServiceError(
                "pass either a ServiceConfig or config keywords, not both"
            )
        self.config = config if config is not None else ServiceConfig(**kwargs)
        self.engine = DecodeEngine(
            plan,
            piece_cache=self.config.piece_cache,
            context_cache=self.config.context_cache,
            retain_epochs=self.config.retain_epochs,
        )
        self.tree = ShardedContextTree(self.config.shards)
        self.metrics = ServiceMetrics()
        self._queue = BoundedQueue(
            self.config.queue_capacity, self.config.backpressure
        )
        self._pool = WorkerPool(
            self._queue,
            self._handle_batch,
            workers=self.config.workers,
            batch_size=self.config.batch_size,
            on_error=lambda exc: self.metrics.record_error(repr(exc)),
        )
        self._started = False
        self._stopped = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ContextService":
        if self._stopped:
            raise ServiceError("service was stopped; build a new one")
        if not self._started:
            self._started = True
            self._pool.start()
        return self

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Close ingestion; with ``drain`` wait for queued samples."""
        if self._stopped:
            return
        self._stopped = True
        self._queue.close()
        if self._started and drain:
            self._pool.join(timeout=timeout)

    def __enter__(self) -> "ContextService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Ingestion (producer side)
    # ------------------------------------------------------------------
    def submit(
        self,
        node: str,
        snapshot: Tuple[Sequence, int],
        *,
        plan: Optional[DeltaPathPlan] = None,
        weight: int = 1,
        timeout: Optional[float] = None,
    ) -> bool:
        """Queue one observation for ingestion.

        ``plan`` names the plan the snapshot was captured under (e.g.
        ``probe.plan``); it resolves to the epoch the sample is stamped
        with. Omitted, the current epoch is assumed — only correct when
        no hot swap can be in flight between capture and submission.
        Returns False when the sample was dropped by the backpressure
        policy.
        """
        if not self._started:
            raise ServiceError("service not started; call start() first")
        epoch = (
            self.engine.epoch if plan is None else self.engine.epoch_of(plan)
        )
        stack, current_id = snapshot
        sample = Sample(
            node=node,
            stack=tuple(stack),
            current_id=current_id,
            epoch=epoch,
            weight=weight,
        )
        self.metrics.count("submitted")
        self.metrics.observe_queue_depth(len(self._queue))
        # Drops of every flavour (newest, oldest, timeout, error) are
        # tallied by the queue itself so accounting stays exact even when
        # the discarded sample is not the one being submitted.
        return self._queue.put(sample, timeout=timeout)

    def submit_many(
        self,
        observations: Sequence[Tuple[str, Tuple[Sequence, int]]],
        *,
        plan: Optional[DeltaPathPlan] = None,
    ) -> int:
        """Submit many ``(node, snapshot)`` pairs; returns accepted count."""
        accepted = 0
        for node, snapshot in observations:
            if self.submit(node, snapshot, plan=plan):
                accepted += 1
        return accepted

    def sink(self) -> Callable:
        """A :class:`~repro.runtime.collector.ContextCollector` sink.

        The collector calls it as ``sink(node, snapshot, probe)``; the
        probe's current plan stamps the sample's epoch, so collection
        keeps working across hot swaps with no extra wiring.
        """

        def _sink(node, snapshot, probe=None):
            self.submit(
                node, snapshot, plan=getattr(probe, "plan", None)
            )

        return _sink

    def flush(self, timeout: float = 30.0) -> None:
        """Block until everything submitted so far is aggregated."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            snap = self.metrics.snapshot()
            done = (
                snap["aggregated"]
                + snap["decode_errors"]
                + snap["epoch_mismatches"]
                + self._queue.dropped
            )
            if not len(self._queue) and done >= snap["submitted"]:
                return
            time.sleep(0.002)
        raise ServiceError(f"flush timed out after {timeout}s")

    # ------------------------------------------------------------------
    # Hot swap
    # ------------------------------------------------------------------
    def install_update(self, update: PlanUpdate) -> int:
        """Adopt a repaired plan (PR 1 ``apply_delta`` output).

        Returns the new epoch. Samples already queued under older epochs
        still decode under their own plans; new submissions against the
        repaired plan stamp the new epoch.
        """
        epoch = self.engine.install_update(update)
        self.metrics.count("hot_swaps")
        return epoch

    def install_plan(self, plan: DeltaPathPlan) -> int:
        """Adopt a full rebuild as the next epoch."""
        epoch = self.engine.install(plan)
        self.metrics.count("hot_swaps")
        return epoch

    @property
    def epoch(self) -> int:
        return self.engine.epoch

    @property
    def plan(self) -> DeltaPathPlan:
        return self.engine.plan

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _handle_batch(self, batch: Sequence[Sample]) -> None:
        start = time.perf_counter()
        with obs.span("service.batch", samples=len(batch)):
            for sample in batch:
                self.metrics.count("ingested")
                t0 = time.perf_counter()
                try:
                    path, has_gaps, used_epoch = self.engine.decode_path(
                        sample.node, sample.snapshot, epoch=sample.epoch
                    )
                except (DecodingError, EpochError) as exc:
                    self.metrics.record_error(
                        f"{sample.node}@epoch{sample.epoch}: {exc}"
                    )
                    continue
                self.metrics.decode_latency.observe(time.perf_counter() - t0)
                if used_epoch != sample.epoch:  # pragma: no cover - invariant
                    self.metrics.count("epoch_mismatches")
                    continue
                self.tree.add(path, has_gaps, sample.weight)
                self.metrics.count("aggregated")
            self.metrics.count("batches")
            self.metrics.batch_latency.observe(time.perf_counter() - start)

    # ------------------------------------------------------------------
    # Query API
    # ------------------------------------------------------------------
    def top_contexts(self, k: int = 10) -> List[Tuple[int, Tuple[str, ...]]]:
        """The ``k`` hottest calling contexts as (count, node path)."""
        return self.tree.top_contexts(k)

    def function_totals(self, leaf_only: bool = False) -> Dict[str, int]:
        """Per-function rollups (see :meth:`ShardedContextTree.function_totals`)."""
        return self.tree.function_totals(leaf_only=leaf_only)

    def ucp_stats(self) -> Dict[str, int]:
        """How much traffic crossed dynamic-loading gaps."""
        total = self.tree.total_samples
        gaps = self.tree.gap_samples
        return {
            "samples": total,
            "gap_samples": gaps,
            "gap_free_samples": total - gaps,
        }

    def report(self) -> ContextTreeReport:
        """The merged calling-context tree (a fresh copy)."""
        return self.tree.merged_report()

    def render_report(
        self, min_total: int = 1, max_depth: Optional[int] = None
    ) -> str:
        return self.tree.render(min_total=min_total, max_depth=max_depth)

    def service_metrics(self) -> Dict[str, object]:
        """Counters + latency histograms + cache + shard balance."""
        out = self.metrics.snapshot(queue_depth=len(self._queue))
        out["dropped"] = self._queue.dropped
        out["caches"] = self.engine.cache_stats()
        stats = self.tree.shard_stats()
        out["shards"] = {
            "count": self.config.shards,
            "samples": stats.sizes,
            "imbalance": round(stats.imbalance, 3),
        }
        out["epochs_retained"] = self.engine.retained_epochs()
        out["unique_contexts"] = self.tree.unique_contexts
        return out

    def stats(self) -> Dict[str, object]:
        """:meth:`service_metrics` plus the flat registry namespace.

        ``registry`` holds the same dotted names
        (``service.submitted``, ``service.decode_latency_us.p99_us``,
        ...) that the process-wide exporters (``repro obs``,
        ``--metrics-out``, Prometheus) publish — one metric namespace
        shared by ``BENCH_serve.json`` and ``BENCH_obs.json``.
        """
        out = self.service_metrics()
        registry = self.metrics.registry
        out["registry"] = {
            f"{registry.name}.{key}": value
            for key, value in registry.flatten().items()
        }
        return out
