"""Shared-memory batch lanes: fixed-slot rings carrying DPSB v1 records.

One :class:`ShmLane` is a single-producer / single-consumer ring over a
``multiprocessing.shared_memory`` block.  The parent process pushes
``SampleBatch.to_bytes()`` payloads (the DPSB v1 wire form — magic,
version, columnar int64 payload, CRC32 trailer); exactly one decode
worker pops them.  The lane adds its *own* integrity layer on top of the
record's trailer: a per-slot sequence number (the consumer verifies the
slot it reads is the slot it expected) and a per-slot CRC32 over the
payload bytes (torn or stale writes are detected before
``SampleBatch.from_bytes`` ever sees them).

Accounting is sample-denominated, exactly like
:class:`~repro.service.ingest.BoundedQueue`: ``queued``, ``consumed``
and ``dropped`` all count *samples*, not records, so the service's
conservation law (``submitted == aggregated + dead_lettered +
epoch_mismatches + dropped + …``) extends across the process boundary
without unit conversions.  Backpressure reuses the BoundedQueue policy
names and contracts:

``"block"``
    poll until a slot frees; a ``timeout`` that elapses drops the
    record (counted).
``"drop-newest"``
    full lane drops the incoming record (counted).
``"drop-oldest"``
    full lane evicts the oldest queued record (counted by *its* stored
    sample count) to admit the new one.
``"error"``
    full lane counts the record dropped, then raises
    :class:`~repro.errors.IngestOverflowError`.

Layout (all little-endian)::

    header  [96 bytes]
      0  magic        4s   b"DPLN"
      4  version      B    1
      8  nslots       I
     12  slot_bytes   I
     16  head         Q    monotonic; next slot index to write
     24  tail         Q    monotonic; next slot index to read
     32  queued       Q    samples currently in the ring
     40  consumed     Q    samples popped by the worker, ever
     48  dropped      Q    samples dropped by policy, ever
     56  closed       I    producer has closed the lane
     60  sync_req     I    parent's sync generation (see Lane.sync_req)
     64  pushed_recs  Q
     72  popped_recs  Q
     80  dropped_recs Q
     88  reserved     Q
    slot    [24-byte header + payload capacity]
      0  seq          Q    monotonic index this slot currently holds
      8  length       I    payload byte length
     12  samples      I    sample count carried by the payload
     16  crc32        I    zlib.crc32(payload)
     20  reserved     I

Mutual exclusion is one ``multiprocessing.Lock`` per lane; both sides
hold it only for counter arithmetic and ``memoryview`` copies, never
while sleeping.
"""

from __future__ import annotations

import struct
import time
import zlib
from multiprocessing import shared_memory
from typing import Optional, Tuple

from repro.errors import IngestOverflowError, ServiceError, StoreCorruptionError
from repro.service.ingest import POLICIES

__all__ = ["ShmLane", "LANE_MAGIC", "LANE_VERSION"]

LANE_MAGIC = b"DPLN"
LANE_VERSION = 1

_HEADER = struct.Struct("<4sB3xIIQQQQQIIQQQQ")
_HEADER_SIZE = _HEADER.size  # 96
_SLOT = struct.Struct("<QIIII")
_SLOT_HEADER = _SLOT.size  # 24

# header field offsets for the single-field accessors
_OFF_HEAD = 16
_OFF_TAIL = 24
_OFF_QUEUED = 32
_OFF_CONSUMED = 40
_OFF_DROPPED = 48
_OFF_CLOSED = 56
_OFF_SYNC = 60
_OFF_PUSHED = 64
_OFF_POPPED = 72
_OFF_DROPPED_RECS = 80

_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")

_POLL_S = 0.0005


class ShmLane:
    """A fixed-slot SPSC ring over ``multiprocessing.shared_memory``.

    Create with ``ShmLane(nslots=…, slot_bytes=…, lock=…)`` on the
    parent side; attach from a worker with :meth:`attach` (fork
    children inherit the object and need neither).  ``lock`` must be a
    ``multiprocessing.Lock`` created from the same context that spawns
    the worker.
    """

    def __init__(
        self,
        nslots: int = 64,
        slot_bytes: int = 1 << 20,
        lock=None,
        *,
        _attach_name: Optional[str] = None,
    ) -> None:
        if lock is None:
            import multiprocessing

            lock = multiprocessing.Lock()
        self._lock = lock
        if _attach_name is not None:
            self._shm = shared_memory.SharedMemory(name=_attach_name)
            self._owner = False
            magic, version, nslots, slot_bytes = _HEADER.unpack_from(
                self._shm.buf, 0
            )[:4]
            if magic != LANE_MAGIC or version != LANE_VERSION:
                raise StoreCorruptionError(
                    f"lane {_attach_name!r} has bad magic/version "
                    f"({magic!r}, {version})"
                )
        else:
            if nslots < 1:
                raise ServiceError("lane needs at least one slot")
            if slot_bytes <= _SLOT_HEADER:
                raise ServiceError(
                    f"slot_bytes must exceed the {_SLOT_HEADER}-byte "
                    f"slot header"
                )
            size = _HEADER_SIZE + nslots * slot_bytes
            self._shm = shared_memory.SharedMemory(create=True, size=size)
            self._owner = True
            self._shm.buf[:_HEADER_SIZE] = b"\x00" * _HEADER_SIZE
            _HEADER.pack_into(
                self._shm.buf, 0, LANE_MAGIC, LANE_VERSION, nslots,
                slot_bytes, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
            )
        self.nslots = nslots
        self.slot_bytes = slot_bytes
        self.capacity_bytes = slot_bytes - _SLOT_HEADER

    # -- plumbing ---------------------------------------------------------

    @property
    def name(self) -> str:
        """The shared-memory block name (pass to :meth:`attach`)."""
        return self._shm.name

    @classmethod
    def attach(cls, name: str, lock) -> "ShmLane":
        """Attach to an existing lane from another process."""
        return cls(lock=lock, _attach_name=name)

    def _u64(self, off: int) -> int:
        return _U64.unpack_from(self._shm.buf, off)[0]

    def _set_u64(self, off: int, value: int) -> None:
        _U64.pack_into(self._shm.buf, off, value)

    def _u32(self, off: int) -> int:
        return _U32.unpack_from(self._shm.buf, off)[0]

    def _set_u32(self, off: int, value: int) -> None:
        _U32.pack_into(self._shm.buf, off, value)

    def _slot_off(self, index: int) -> int:
        return _HEADER_SIZE + (index % self.nslots) * self.slot_bytes

    # -- counters ---------------------------------------------------------

    @property
    def queued_samples(self) -> int:
        return self._u64(_OFF_QUEUED)

    @property
    def consumed_samples(self) -> int:
        return self._u64(_OFF_CONSUMED)

    @property
    def dropped(self) -> int:
        """Samples dropped by backpressure policy (BoundedQueue parity)."""
        return self._u64(_OFF_DROPPED)

    @property
    def pushed_records(self) -> int:
        return self._u64(_OFF_PUSHED)

    @property
    def popped_records(self) -> int:
        return self._u64(_OFF_POPPED)

    @property
    def closed(self) -> bool:
        return bool(self._u32(_OFF_CLOSED))

    def __len__(self) -> int:
        """Queued depth in samples, mirroring ``BoundedQueue.__len__``."""
        return self.queued_samples

    # -- sync generations -------------------------------------------------

    @property
    def sync_req(self) -> int:
        """Parent-owned sync generation the worker acknowledges in its
        status file once every record pushed before the bump has been
        consumed *and* accounted."""
        return self._u32(_OFF_SYNC)

    def request_sync(self) -> int:
        with self._lock:
            gen = self._u32(_OFF_SYNC) + 1
            self._set_u32(_OFF_SYNC, gen)
            return gen

    # -- producer ---------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._set_u32(_OFF_CLOSED, 1)

    def push(
        self,
        payload: bytes,
        samples: int,
        policy: str = "block",
        timeout: Optional[float] = None,
        on_closed: str = "drop",
    ) -> bool:
        """Enqueue one DPSB record.

        Returns True when queued, False when dropped (always counted,
        by sample count).  Policy semantics match ``BoundedQueue.put``;
        a closed lane counts the samples dropped and, under
        ``on_closed="raise"``, raises :class:`ServiceError`.
        """
        if policy not in POLICIES:
            raise ServiceError(
                f"backpressure must be one of {POLICIES}, not {policy!r}"
            )
        if len(payload) > self.capacity_bytes:
            raise IngestOverflowError(
                f"record of {len(payload)} bytes exceeds the "
                f"{self.capacity_bytes}-byte lane slot; split the batch"
            )
        if samples == 0:
            return True
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                if self._u32(_OFF_CLOSED):
                    self._set_u64(
                        _OFF_DROPPED, self._u64(_OFF_DROPPED) + samples
                    )
                    self._set_u64(
                        _OFF_DROPPED_RECS, self._u64(_OFF_DROPPED_RECS) + 1
                    )
                    if on_closed == "raise":
                        raise ServiceError("lane is closed")
                    return False
                head = self._u64(_OFF_HEAD)
                tail = self._u64(_OFF_TAIL)
                if head - tail < self.nslots:
                    self._write_slot(head, payload, samples)
                    return True
                if policy == "drop-oldest":
                    self._evict_oldest(tail)
                    self._write_slot(self._u64(_OFF_HEAD), payload, samples)
                    return True
                if policy == "drop-newest":
                    self._count_drop(samples)
                    return False
                if policy == "error":
                    self._count_drop(samples)
                    raise IngestOverflowError(
                        f"lane full ({self.nslots} slots)"
                    )
            # "block": poll outside the lock.
            if deadline is not None and time.monotonic() >= deadline:
                with self._lock:
                    self._count_drop(samples)
                return False
            time.sleep(_POLL_S)

    def count_dropped(self, samples: int) -> None:
        """Charge a drop the producer decided on (e.g. a record too
        large for any slot) to this lane's conservation accounting."""
        with self._lock:
            self._count_drop(samples)

    def _count_drop(self, samples: int) -> None:
        self._set_u64(_OFF_DROPPED, self._u64(_OFF_DROPPED) + samples)
        self._set_u64(_OFF_DROPPED_RECS, self._u64(_OFF_DROPPED_RECS) + 1)

    def _evict_oldest(self, tail: int) -> None:
        off = self._slot_off(tail)
        _seq, _length, samples, _crc, _ = _SLOT.unpack_from(
            self._shm.buf, off
        )
        self._set_u64(_OFF_TAIL, tail + 1)
        self._set_u64(
            _OFF_QUEUED, max(0, self._u64(_OFF_QUEUED) - samples)
        )
        self._count_drop(samples)

    def _write_slot(self, head: int, payload: bytes, samples: int) -> None:
        off = self._slot_off(head)
        _SLOT.pack_into(
            self._shm.buf, off, head, len(payload), samples,
            zlib.crc32(payload) & 0xFFFFFFFF, 0,
        )
        start = off + _SLOT_HEADER
        self._shm.buf[start:start + len(payload)] = payload
        self._set_u64(_OFF_HEAD, head + 1)
        self._set_u64(_OFF_QUEUED, self._u64(_OFF_QUEUED) + samples)
        self._set_u64(_OFF_PUSHED, self._u64(_OFF_PUSHED) + 1)

    # -- consumer ---------------------------------------------------------

    def pop(self, timeout: Optional[float] = None) -> Optional[Tuple[bytes, int]]:
        """Dequeue one record as ``(payload, samples)``.

        Blocks (polling) up to ``timeout``; returns None when the lane
        stays empty — callers distinguish idle from shutdown via
        :attr:`closed`.  A sequence or CRC mismatch raises
        :class:`StoreCorruptionError`: shared memory is same-host and
        lock-protected, so a torn record is a bug, not weather.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                head = self._u64(_OFF_HEAD)
                tail = self._u64(_OFF_TAIL)
                if tail < head:
                    return self._read_slot(tail)
                if self._u32(_OFF_CLOSED):
                    return None
            if deadline is not None and time.monotonic() >= deadline:
                return None
            time.sleep(_POLL_S)

    def _read_slot(self, tail: int) -> Tuple[bytes, int]:
        off = self._slot_off(tail)
        seq, length, samples, crc, _ = _SLOT.unpack_from(self._shm.buf, off)
        if seq != tail:
            raise StoreCorruptionError(
                f"lane slot sequence mismatch: expected {tail}, "
                f"slot holds {seq}"
            )
        if length > self.capacity_bytes:
            raise StoreCorruptionError(
                f"lane slot claims {length} bytes in a "
                f"{self.capacity_bytes}-byte slot"
            )
        start = off + _SLOT_HEADER
        payload = bytes(self._shm.buf[start:start + length])
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            raise StoreCorruptionError(
                f"lane slot {tail} failed its CRC check"
            )
        self._set_u64(_OFF_TAIL, tail + 1)
        self._set_u64(
            _OFF_QUEUED, max(0, self._u64(_OFF_QUEUED) - samples)
        )
        self._set_u64(_OFF_CONSUMED, self._u64(_OFF_CONSUMED) + samples)
        self._set_u64(_OFF_POPPED, self._u64(_OFF_POPPED) + 1)
        return payload, samples

    # -- teardown ---------------------------------------------------------

    def detach(self) -> None:
        """Close this process's mapping (worker-side teardown)."""
        try:
            self._shm.close()
        except (OSError, BufferError):
            pass

    def destroy(self) -> None:
        """Close and unlink the shared block (parent-side teardown)."""
        self.detach()
        if self._owner:
            try:
                self._shm.unlink()
            except (OSError, FileNotFoundError):
                pass

    def stats(self) -> dict:
        return {
            "nslots": self.nslots,
            "slot_bytes": self.slot_bytes,
            "queued_samples": self.queued_samples,
            "consumed_samples": self.consumed_samples,
            "dropped": self.dropped,
            "pushed_records": self.pushed_records,
            "popped_records": self.popped_records,
            "closed": self.closed,
        }
