"""Epoch-keyed LRU caching for the decode service.

Decoding is the service's hot path and it is *piecewise*: a context is a
stack of pieces, each fully determined by ``(plan epoch, piece start,
node, residual value)``. Hot contexts share pieces — every context below
an anchor shares that anchor's outer pieces — so the cache interns
decoded pieces once and lets thousands of distinct contexts reuse them.

Keys carry the plan epoch. A hot swap installs a new epoch; entries of
the old epoch stop matching immediately (correctness) and are reclaimed
either lazily by LRU eviction or eagerly by :meth:`LRUCache.drop_epoch`
(memory). Nothing ever serves a decode across epochs.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional

__all__ = ["CacheStats", "LRUCache"]


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time view of one cache's counters."""

    size: int
    capacity: int
    hits: int
    misses: int
    evictions: int
    epoch_drops: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache:
    """A small thread-safe LRU map with epoch-aware invalidation.

    Keys are tuples whose **first element is the plan epoch**; values are
    immutable decode results. ``capacity <= 0`` disables caching (every
    ``get`` misses), which is how the benchmark measures the uncached
    baseline through identical code paths.
    """

    def __init__(self, capacity: int = 1 << 16):
        self.capacity = capacity
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._epoch_drops = 0

    def get(self, key: Hashable) -> Optional[object]:
        """The cached value, or None. Refreshes LRU recency on hit."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self._misses += 1
                return None
            self._data.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: object) -> None:
        if self.capacity <= 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._data[key] = value
                return
            self._data[key] = value
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self._evictions += 1

    def drop_epoch(self, epoch: int) -> int:
        """Eagerly evict every entry of ``epoch``; returns the count."""
        with self._lock:
            stale = [k for k in self._data if k[0] == epoch]
            for key in stale:
                del self._data[key]
            self._epoch_drops += len(stale)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                size=len(self._data),
                capacity=self.capacity,
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                epoch_drops=self._epoch_drops,
            )
