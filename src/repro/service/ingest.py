"""Batched ingestion: a bounded queue with explicit backpressure.

Producer threads (probes, collectors, network frontends) call
:meth:`BoundedQueue.put`; worker threads drain *batches* and hand them to
an aggregation callback. The queue is deliberately explicit about what
happens under overload — the four policies every real collection backend
ends up choosing between:

``"block"``
    Producers wait for space (lossless backpressure; the default).
``"drop-newest"``
    The incoming sample is discarded (cheapest, biased against bursts).
``"drop-oldest"``
    The oldest queued sample is discarded to make room (keeps the
    freshest traffic).
``"error"``
    Raise :class:`~repro.errors.IngestOverflowError` at the producer.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.stackmodel import StackEntry
from repro.errors import IngestOverflowError, ServiceError

__all__ = ["Sample", "BoundedQueue", "WorkerPool", "POLICIES"]

POLICIES = ("block", "drop-newest", "drop-oldest", "error")


@dataclass(frozen=True)
class Sample:
    """One context observation on its way into the aggregator.

    ``epoch`` is stamped at submission time with the epoch of the plan
    the snapshot was captured under; the decode engine uses exactly that
    epoch's plan, which is what makes a hot swap race-free: pre-swap
    samples decode under the pre-swap plan even if they are drained
    after the swap.
    """

    node: str
    stack: Tuple[StackEntry, ...]
    current_id: int
    epoch: int
    weight: int = 1
    meta: Optional[dict] = field(default=None, compare=False)

    @property
    def snapshot(self) -> Tuple[Tuple[StackEntry, ...], int]:
        return (self.stack, self.current_id)


class BoundedQueue:
    """A thread-safe bounded FIFO of :class:`Sample` with drop policies."""

    def __init__(self, capacity: int = 4096, policy: str = "block"):
        if capacity < 1:
            raise ServiceError("queue capacity must be at least 1")
        if policy not in POLICIES:
            raise ServiceError(
                f"unknown backpressure policy {policy!r}; expected one of "
                f"{', '.join(POLICIES)}"
            )
        self.capacity = capacity
        self.policy = policy
        self._items: "deque[Sample]" = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self.dropped = 0

    # ------------------------------------------------------------------
    def put(self, sample: Sample, timeout: Optional[float] = None) -> bool:
        """Enqueue ``sample`` under the configured policy.

        Returns True when the sample was queued, False when it (or an
        older sample, under ``"drop-oldest"``) was dropped. ``"block"``
        with a ``timeout`` that elapses drops the sample (counted).
        """
        with self._not_full:
            if self._closed:
                raise ServiceError("queue is closed")
            if len(self._items) >= self.capacity:
                if self.policy == "error":
                    self.dropped += 1
                    raise IngestOverflowError(
                        f"ingestion queue full ({self.capacity} samples)"
                    )
                if self.policy == "drop-newest":
                    self.dropped += 1
                    return False
                if self.policy == "drop-oldest":
                    self._items.popleft()
                    self.dropped += 1
                else:  # block
                    if not self._not_full.wait_for(
                        lambda: len(self._items) < self.capacity
                        or self._closed,
                        timeout=timeout,
                    ):
                        self.dropped += 1
                        return False
                    if self._closed:
                        raise ServiceError("queue is closed")
            self._items.append(sample)
            self._not_empty.notify()
            return True

    def get_batch(
        self, max_batch: int, timeout: Optional[float] = None
    ) -> List[Sample]:
        """Up to ``max_batch`` samples; [] on close-and-empty or timeout."""
        with self._not_empty:
            if not self._not_empty.wait_for(
                lambda: self._items or self._closed, timeout=timeout
            ):
                return []
            batch: List[Sample] = []
            while self._items and len(batch) < max_batch:
                batch.append(self._items.popleft())
            if batch:
                self._not_full.notify_all()
            return batch

    def close(self) -> None:
        """No more puts; pending samples remain drainable."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)


class WorkerPool:
    """N daemon threads draining one queue into a batch handler.

    The handler receives each drained batch (a non-empty list of
    samples). Handler exceptions are routed to ``on_error`` — one bad
    batch must not kill a worker — and the pool keeps draining.
    """

    def __init__(
        self,
        queue: BoundedQueue,
        handler: Callable[[Sequence[Sample]], None],
        *,
        workers: int = 2,
        batch_size: int = 256,
        on_error: Optional[Callable[[BaseException], None]] = None,
        poll_interval: float = 0.05,
    ):
        if workers < 1:
            raise ServiceError("need at least one worker")
        if batch_size < 1:
            raise ServiceError("batch size must be at least 1")
        self._queue = queue
        self._handler = handler
        self._batch_size = batch_size
        self._on_error = on_error
        self._poll = poll_interval
        self._threads = [
            threading.Thread(
                target=self._run, name=f"repro-ingest-{i}", daemon=True
            )
            for i in range(workers)
        ]
        self._started = False

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for thread in self._threads:
            thread.start()

    def _run(self) -> None:
        while True:
            batch = self._queue.get_batch(self._batch_size, timeout=self._poll)
            if not batch:
                if self._queue.closed and not len(self._queue):
                    return
                continue
            try:
                self._handler(batch)
            except BaseException as exc:  # noqa: BLE001 - keep draining
                if self._on_error is not None:
                    self._on_error(exc)

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for workers to finish (call after ``queue.close()``)."""
        for thread in self._threads:
            thread.join(timeout=timeout)

    @property
    def alive(self) -> bool:
        return any(t.is_alive() for t in self._threads)
