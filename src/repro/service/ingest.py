"""Batched ingestion: a bounded queue with explicit backpressure.

Producer threads (probes, collectors, network frontends) call
:meth:`BoundedQueue.put`; worker threads drain *batches* and hand them to
an aggregation callback. The queue is deliberately explicit about what
happens under overload — the four policies every real collection backend
ends up choosing between:

``"block"``
    Producers wait for space (lossless backpressure; the default).
``"drop-newest"``
    The incoming sample is discarded (cheapest, biased against bursts).
``"drop-oldest"``
    The oldest queued sample is discarded to make room (keeps the
    freshest traffic).
``"error"``
    Raise :class:`~repro.errors.IngestOverflowError` at the producer.

Shutdown is part of the contract too. A ``put`` that *starts* after
``close()`` is a caller bug and raises by default, but a producer that
was already blocked (or raced the close) holds a live sample that must
not silently vanish: with ``on_closed="drop"`` every closed-queue
rejection is counted in :attr:`BoundedQueue.dropped` and reported as
``False``, so the accounting conservation law (every submitted sample is
aggregated, dead-lettered, or counted dropped) survives a shutdown
racing live producers.

:class:`WorkerPool` is supervision-ready: each worker slot stamps a
monotonic heartbeat every drain iteration, records whether it exited
*normally* (queue closed and drained) or *died* (an escaped exception,
e.g. an injected :class:`WorkerKilled`), and dead slots can be restarted
in place — the machinery :class:`repro.resilience.Supervisor` drives.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.stackmodel import StackEntry
from repro.errors import IngestOverflowError, ServiceError

__all__ = [
    "Sample",
    "BoundedQueue",
    "WorkerPool",
    "WorkerKilled",
    "WorkerState",
    "POLICIES",
]

POLICIES = ("block", "drop-newest", "drop-oldest", "error")


class WorkerKilled(BaseException):
    """Kills one ingestion worker thread (chaos injection).

    Deliberately a ``BaseException``: the worker loop's batch handler
    guard catches ``BaseException`` so one poisoned batch cannot kill a
    worker, and this must pierce that guard — it models an exception
    escaping the drain loop itself, the failure the Supervisor exists to
    repair.
    """


@dataclass(frozen=True)
class Sample:
    """One context observation on its way into the aggregator.

    ``epoch`` is stamped at submission time with the epoch of the plan
    the snapshot was captured under; the decode engine uses exactly that
    epoch's plan, which is what makes a hot swap race-free: pre-swap
    samples decode under the pre-swap plan even if they are drained
    after the swap.
    """

    node: str
    stack: Tuple[StackEntry, ...]
    current_id: int
    epoch: int
    weight: int = 1
    meta: Optional[dict] = field(default=None, compare=False)

    @property
    def snapshot(self) -> Tuple[Tuple[StackEntry, ...], int]:
        return (self.stack, self.current_id)


class BoundedQueue:
    """A thread-safe bounded FIFO of :class:`Sample` with drop policies."""

    def __init__(self, capacity: int = 4096, policy: str = "block"):
        if capacity < 1:
            raise ServiceError("queue capacity must be at least 1")
        if policy not in POLICIES:
            raise ServiceError(
                f"unknown backpressure policy {policy!r}; expected one of "
                f"{', '.join(POLICIES)}"
            )
        self.capacity = capacity
        self.policy = policy
        self._items: "deque[Sample]" = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self.dropped = 0

    # ------------------------------------------------------------------
    def put(
        self,
        sample: Sample,
        timeout: Optional[float] = None,
        on_closed: str = "raise",
    ) -> bool:
        """Enqueue ``sample`` under the configured policy.

        Returns True when the sample was queued, False when it (or an
        older sample, under ``"drop-oldest"``) was dropped. ``"block"``
        with a ``timeout`` that elapses drops the sample (counted).

        ``on_closed`` decides what a closed queue does to the sample:
        ``"raise"`` (default) raises :class:`~repro.errors.ServiceError`
        — but still counts the sample as dropped first, so accounting
        never leaks; ``"drop"`` counts it dropped and returns False
        (the declared-shutdown-drop contract the service uses, so a
        ``stop()`` racing live producers stays a policy drop rather
        than an exception storm).
        """
        if on_closed not in ("raise", "drop"):
            raise ServiceError(
                f"on_closed must be 'raise' or 'drop', not {on_closed!r}"
            )
        with self._not_full:
            if self._closed:
                return self._reject_closed(on_closed)
            if len(self._items) >= self.capacity:
                if self.policy == "error":
                    self.dropped += 1
                    raise IngestOverflowError(
                        f"ingestion queue full ({self.capacity} samples)"
                    )
                if self.policy == "drop-newest":
                    self.dropped += 1
                    return False
                if self.policy == "drop-oldest":
                    self._items.popleft()
                    self.dropped += 1
                else:  # block
                    if not self._not_full.wait_for(
                        lambda: len(self._items) < self.capacity
                        or self._closed,
                        timeout=timeout,
                    ):
                        self.dropped += 1
                        return False
                    if self._closed:
                        # Closed while we were blocked: the sample was
                        # legitimately in flight, so it is a declared
                        # shutdown drop, never a silent loss.
                        return self._reject_closed(on_closed)
            self._items.append(sample)
            self._not_empty.notify()
            return True

    def _reject_closed(self, on_closed: str) -> bool:
        """Account a closed-queue rejection (caller holds the lock)."""
        self.dropped += 1
        if on_closed == "raise":
            raise ServiceError("queue is closed")
        return False

    def get_batch(
        self, max_batch: int, timeout: Optional[float] = None
    ) -> List[Sample]:
        """Up to ``max_batch`` samples; [] on close-and-empty or timeout."""
        with self._not_empty:
            if not self._not_empty.wait_for(
                lambda: self._items or self._closed, timeout=timeout
            ):
                return []
            batch: List[Sample] = []
            while self._items and len(batch) < max_batch:
                batch.append(self._items.popleft())
            if batch:
                self._not_full.notify_all()
            return batch

    def close(self) -> None:
        """No more puts; pending samples remain drainable."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)


@dataclass(frozen=True)
class WorkerState:
    """Supervisor-facing view of one worker slot."""

    slot: int
    #: The slot's current thread is running.
    alive: bool
    #: The slot returned normally (queue closed and fully drained).
    exited: bool
    #: ``time.monotonic()`` of the slot's last drain-loop iteration.
    heartbeat: float

    @property
    def dead(self) -> bool:
        """Died abnormally: not running, and not a normal exit."""
        return not self.alive and not self.exited


class WorkerPool:
    """N daemon threads draining one queue into a batch handler.

    The handler receives each drained batch (a non-empty list of
    samples). Handler exceptions are routed to ``on_error`` — one bad
    batch must not kill a worker — and the pool keeps draining. The one
    exception that *does* kill a worker is :class:`WorkerKilled` (chaos
    injection / an escape from the drain loop itself); such deaths are
    visible through :meth:`worker_states` and repairable through
    :meth:`restart_worker`.

    ``fault`` is the chaos hook: called as ``fault(slot)`` once per
    drain iteration *before* a batch is taken (so a kill never strands
    an in-hand batch); it may sleep (slow consumer) or raise
    :class:`WorkerKilled`.
    """

    def __init__(
        self,
        queue: BoundedQueue,
        handler: Callable[[Sequence[Sample]], None],
        *,
        workers: int = 2,
        batch_size: int = 256,
        on_error: Optional[Callable[[BaseException], None]] = None,
        poll_interval: float = 0.05,
        fault: Optional[Callable[[int], None]] = None,
    ):
        if workers < 1:
            raise ServiceError("need at least one worker")
        if batch_size < 1:
            raise ServiceError("batch size must be at least 1")
        self._queue = queue
        self._handler = handler
        self._batch_size = batch_size
        self._on_error = on_error
        self._poll = poll_interval
        self._fault = fault
        self._lock = threading.Lock()
        self._threads: List[threading.Thread] = [
            self._make_thread(slot) for slot in range(workers)
        ]
        self._beats: List[float] = [0.0] * workers
        self._exited: List[bool] = [False] * workers
        self._restarts: List[int] = [0] * workers
        self.deaths = 0
        self._started = False

    def _make_thread(self, slot: int, generation: int = 0) -> threading.Thread:
        suffix = f"r{generation}" if generation else ""
        return threading.Thread(
            target=self._run,
            args=(slot,),
            name=f"repro-ingest-{slot}{suffix}",
            daemon=True,
        )

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        now = time.monotonic()
        for slot, thread in enumerate(self._threads):
            self._beats[slot] = now
            thread.start()

    def _run(self, slot: int) -> None:
        try:
            while True:
                self._beats[slot] = time.monotonic()
                fault = self._fault
                if fault is not None:
                    fault(slot)
                batch = self._queue.get_batch(
                    self._batch_size, timeout=self._poll
                )
                if not batch:
                    if self._queue.closed and not len(self._queue):
                        self._exited[slot] = True
                        return
                    continue
                try:
                    self._handler(batch)
                except WorkerKilled:
                    raise
                except BaseException as exc:  # noqa: BLE001 - keep draining
                    if self._on_error is not None:
                        self._on_error(exc)
        except WorkerKilled:
            with self._lock:
                self.deaths += 1

    # ------------------------------------------------------------------
    # Supervision surface
    # ------------------------------------------------------------------
    def worker_states(self) -> List[WorkerState]:
        """One :class:`WorkerState` per slot (point-in-time snapshot)."""
        with self._lock:
            return [
                WorkerState(
                    slot=slot,
                    alive=thread.is_alive(),
                    exited=self._exited[slot],
                    heartbeat=self._beats[slot],
                )
                for slot, thread in enumerate(self._threads)
            ]

    def restart_worker(self, slot: int) -> bool:
        """Replace ``slot``'s thread with a fresh one.

        Returns False (and does nothing) when the slot exited normally,
        when its thread is still running, or when the pool was never
        started — only genuinely dead workers are restarted.
        """
        with self._lock:
            if not self._started:
                return False
            if slot < 0 or slot >= len(self._threads):
                raise ServiceError(f"no worker slot {slot}")
            if self._exited[slot] or self._threads[slot].is_alive():
                return False
            self._restarts[slot] += 1
            thread = self._make_thread(slot, generation=self._restarts[slot])
            self._threads[slot] = thread
            self._beats[slot] = time.monotonic()
        thread.start()
        return True

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for workers to finish (call after ``queue.close()``)."""
        with self._lock:
            threads = list(self._threads)
        for thread in threads:
            thread.join(timeout=timeout)

    def alive(self) -> int:
        """How many worker threads are currently running."""
        with self._lock:
            return sum(1 for t in self._threads if t.is_alive())
