"""Batched ingestion: a bounded queue with explicit backpressure.

Producer threads (probes, collectors, network frontends) call
:meth:`BoundedQueue.put` with a single :class:`Sample` **or** a columnar
:class:`~repro.service.batch.SampleBatch`; worker threads drain *batches*
and hand them to an aggregation callback. Capacity, blocking, and drop
accounting are all denominated in **samples**, not queue items: a
rejected 500-sample batch counts 500 dropped, never 1 — that is what
keeps the service's conservation law exact under batch-first traffic.
The queue is deliberately explicit about what happens under overload —
the four policies every real collection backend ends up choosing
between:

``"block"``
    Producers wait for space (lossless backpressure; the default).
``"drop-newest"``
    The incoming sample is discarded (cheapest, biased against bursts).
``"drop-oldest"``
    The oldest queued sample is discarded to make room (keeps the
    freshest traffic).
``"error"``
    Raise :class:`~repro.errors.IngestOverflowError` at the producer.

Shutdown is part of the contract too. A ``put`` that *starts* after
``close()`` is a caller bug and raises by default, but a producer that
was already blocked (or raced the close) holds a live sample that must
not silently vanish: with ``on_closed="drop"`` every closed-queue
rejection is counted in :attr:`BoundedQueue.dropped` and reported as
``False``, so the accounting conservation law (every submitted sample is
aggregated, dead-lettered, or counted dropped) survives a shutdown
racing live producers.

:class:`WorkerPool` is supervision-ready: each worker slot stamps a
monotonic heartbeat every drain iteration, records whether it exited
*normally* (queue closed and drained) or *died* (an escaped exception,
e.g. an injected :class:`WorkerKilled`), and dead slots can be restarted
in place — the machinery :class:`repro.resilience.Supervisor` drives.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.stackmodel import StackEntry
from repro.errors import IngestOverflowError, ServiceError
from repro.service.batch import SampleBatch

__all__ = [
    "Sample",
    "BoundedQueue",
    "WorkerPool",
    "WorkerKilled",
    "WorkerState",
    "POLICIES",
    "item_samples",
    "iter_samples",
]

POLICIES = ("block", "drop-newest", "drop-oldest", "error")


def item_samples(item) -> int:
    """How many samples one queue item carries (batch length or 1)."""
    return len(item) if isinstance(item, SampleBatch) else 1


def iter_samples(items):
    """Flatten queue items (samples and batches) into samples."""
    for item in items:
        if isinstance(item, SampleBatch):
            for sample in item:
                yield sample
        else:
            yield item


class WorkerKilled(BaseException):
    """Kills one ingestion worker thread (chaos injection).

    Deliberately a ``BaseException``: the worker loop's batch handler
    guard catches ``BaseException`` so one poisoned batch cannot kill a
    worker, and this must pierce that guard — it models an exception
    escaping the drain loop itself, the failure the Supervisor exists to
    repair.
    """


@dataclass(frozen=True)
class Sample:
    """One context observation on its way into the aggregator.

    ``epoch`` is stamped at submission time with the epoch of the plan
    the snapshot was captured under; the decode engine uses exactly that
    epoch's plan, which is what makes a hot swap race-free: pre-swap
    samples decode under the pre-swap plan even if they are drained
    after the swap.
    """

    node: str
    stack: Tuple[StackEntry, ...]
    current_id: int
    epoch: int
    weight: int = 1
    thread: int = 0
    meta: Optional[dict] = field(default=None, compare=False)

    @property
    def snapshot(self) -> Tuple[Tuple[StackEntry, ...], int]:
        return (self.stack, self.current_id)


class BoundedQueue:
    """A thread-safe bounded FIFO of samples/batches with drop policies.

    Items are :class:`Sample` objects or :class:`SampleBatch` columns;
    capacity, ``len()``, blocking and the ``dropped`` counter are all in
    **samples**. Batches are never split: a batch is admitted, dropped,
    or evicted whole, and its whole sample count is accounted.
    """

    def __init__(self, capacity: int = 4096, policy: str = "block"):
        if capacity < 1:
            raise ServiceError("queue capacity must be at least 1")
        if policy not in POLICIES:
            raise ServiceError(
                f"unknown backpressure policy {policy!r}; expected one of "
                f"{', '.join(POLICIES)}"
            )
        self.capacity = capacity
        self.policy = policy
        self._items: deque = deque()
        self._size = 0  # samples currently queued
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self.dropped = 0

    # ------------------------------------------------------------------
    def _fits(self, count: int) -> bool:
        """Admission check (lock held): room for ``count`` more samples.

        A batch larger than the whole capacity is admitted only into an
        empty queue — the alternative (never admitting it) would turn
        ``block`` into a deadlock for oversized batches.
        """
        if self._size + count <= self.capacity:
            return True
        return self._size == 0

    def put(
        self,
        item,
        timeout: Optional[float] = None,
        on_closed: str = "raise",
    ) -> bool:
        """Enqueue a :class:`Sample` or :class:`SampleBatch`.

        Returns True when the item was queued, False when it (or older
        items, under ``"drop-oldest"``) was dropped. ``"block"`` with a
        ``timeout`` that elapses drops the item (counted, by sample
        count).

        ``on_closed`` decides what a closed queue does to the item:
        ``"raise"`` (default) raises :class:`~repro.errors.ServiceError`
        — but still counts the samples as dropped first, so accounting
        never leaks; ``"drop"`` counts them dropped and returns False
        (the declared-shutdown-drop contract the service uses, so a
        ``stop()`` racing live producers stays a policy drop rather
        than an exception storm).
        """
        if on_closed not in ("raise", "drop"):
            raise ServiceError(
                f"on_closed must be 'raise' or 'drop', not {on_closed!r}"
            )
        count = item_samples(item)
        if count == 0:
            return True  # an empty batch carries nothing to queue
        with self._not_full:
            if self._closed:
                return self._reject_closed(on_closed, count)
            if not self._fits(count):
                if self.policy == "error":
                    self.dropped += count
                    raise IngestOverflowError(
                        f"ingestion queue full ({self.capacity} samples)"
                    )
                if self.policy == "drop-newest":
                    self.dropped += count
                    return False
                if self.policy == "drop-oldest":
                    # Evict whole items (oldest first) until the new one
                    # fits; every evicted sample is a counted drop.
                    while self._items and not self._fits(count):
                        evicted = self._items.popleft()
                        shed = item_samples(evicted)
                        self._size -= shed
                        self.dropped += shed
                else:  # block
                    if not self._not_full.wait_for(
                        lambda: self._fits(count) or self._closed,
                        timeout=timeout,
                    ):
                        self.dropped += count
                        return False
                    if self._closed:
                        # Closed while we were blocked: the samples were
                        # legitimately in flight, so they are declared
                        # shutdown drops, never a silent loss.
                        return self._reject_closed(on_closed, count)
            self._items.append(item)
            self._size += count
            self._not_empty.notify()
            return True

    def _reject_closed(self, on_closed: str, count: int) -> bool:
        """Account a closed-queue rejection (caller holds the lock)."""
        self.dropped += count
        if on_closed == "raise":
            raise ServiceError("queue is closed")
        return False

    def get_batch(
        self,
        max_batch: int,
        timeout: Optional[float] = None,
        linger: float = 0.0,
    ) -> List:
        """Up to ``max_batch`` samples' worth of items.

        Returns queue items (samples and/or batches); [] on
        close-and-empty or timeout. The last item may push the sample
        total past ``max_batch`` — batches are never split. ``linger``
        keeps the drain waiting up to that many seconds for more traffic
        when the first grab came back smaller than ``max_batch``,
        trading a bounded latency for fuller (cheaper-per-sample)
        handler batches.
        """
        deadline = (
            (time.monotonic() + linger) if linger and linger > 0 else None
        )
        with self._not_empty:
            if not self._not_empty.wait_for(
                lambda: self._items or self._closed, timeout=timeout
            ):
                return []
            batch: List = []
            taken = 0
            while True:
                while self._items and taken < max_batch:
                    item = self._items.popleft()
                    count = item_samples(item)
                    self._size -= count
                    taken += count
                    batch.append(item)
                if (
                    deadline is None
                    or taken >= max_batch
                    or self._closed
                ):
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                if not self._not_empty.wait_for(
                    lambda: self._items or self._closed, timeout=remaining
                ):
                    break
            if batch:
                self._not_full.notify_all()
            return batch

    def close(self) -> None:
        """No more puts; pending samples remain drainable."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __len__(self) -> int:
        """Queued **samples** (not items)."""
        with self._lock:
            return self._size


@dataclass(frozen=True)
class WorkerState:
    """Supervisor-facing view of one worker slot."""

    slot: int
    #: The slot's current thread is running.
    alive: bool
    #: The slot returned normally (queue closed and fully drained).
    exited: bool
    #: ``time.monotonic()`` of the slot's last drain-loop iteration.
    heartbeat: float

    @property
    def dead(self) -> bool:
        """Died abnormally: not running, and not a normal exit."""
        return not self.alive and not self.exited


class WorkerPool:
    """N daemon threads draining one queue into a batch handler.

    The handler receives each drained batch (a non-empty list of queue
    items: samples and/or whole :class:`SampleBatch` columns; flatten
    with :func:`iter_samples` when per-sample view is needed). Handler
    exceptions are routed to ``on_error`` — one bad
    batch must not kill a worker — and the pool keeps draining. The one
    exception that *does* kill a worker is :class:`WorkerKilled` (chaos
    injection / an escape from the drain loop itself); such deaths are
    visible through :meth:`worker_states` and repairable through
    :meth:`restart_worker`.

    ``fault`` is the chaos hook: called as ``fault(slot)`` once per
    drain iteration *before* a batch is taken (so a kill never strands
    an in-hand batch); it may sleep (slow consumer) or raise
    :class:`WorkerKilled`.
    """

    def __init__(
        self,
        queue: BoundedQueue,
        handler: Callable[[Sequence[Sample]], None],
        *,
        workers: int = 2,
        batch_size: int = 256,
        on_error: Optional[Callable[[BaseException], None]] = None,
        poll_interval: float = 0.05,
        linger: float = 0.0,
        fault: Optional[Callable[[int], None]] = None,
    ):
        if workers < 1:
            raise ServiceError("need at least one worker")
        if batch_size < 1:
            raise ServiceError("batch size must be at least 1")
        self._queue = queue
        self._handler = handler
        self._batch_size = batch_size
        self._on_error = on_error
        self._poll = poll_interval
        self._linger = linger
        self._fault = fault
        self._lock = threading.Lock()
        self._threads: List[threading.Thread] = [
            self._make_thread(slot) for slot in range(workers)
        ]
        self._beats: List[float] = [0.0] * workers
        self._exited: List[bool] = [False] * workers
        self._restarts: List[int] = [0] * workers
        self.deaths = 0
        self._started = False

    def _make_thread(self, slot: int, generation: int = 0) -> threading.Thread:
        suffix = f"r{generation}" if generation else ""
        return threading.Thread(
            target=self._run,
            args=(slot,),
            name=f"repro-ingest-{slot}{suffix}",
            daemon=True,
        )

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        now = time.monotonic()
        for slot, thread in enumerate(self._threads):
            self._beats[slot] = now
            thread.start()

    def _run(self, slot: int) -> None:
        try:
            while True:
                self._beats[slot] = time.monotonic()
                fault = self._fault
                if fault is not None:
                    fault(slot)
                batch = self._queue.get_batch(
                    self._batch_size, timeout=self._poll,
                    linger=self._linger,
                )
                if not batch:
                    if self._queue.closed and not len(self._queue):
                        self._exited[slot] = True
                        return
                    continue
                try:
                    self._handler(batch)
                except WorkerKilled:
                    raise
                except BaseException as exc:  # noqa: BLE001 - keep draining
                    if self._on_error is not None:
                        self._on_error(exc)
        except WorkerKilled:
            with self._lock:
                self.deaths += 1

    # ------------------------------------------------------------------
    # Supervision surface
    # ------------------------------------------------------------------
    def worker_states(self) -> List[WorkerState]:
        """One :class:`WorkerState` per slot (point-in-time snapshot)."""
        with self._lock:
            return [
                WorkerState(
                    slot=slot,
                    alive=thread.is_alive(),
                    exited=self._exited[slot],
                    heartbeat=self._beats[slot],
                )
                for slot, thread in enumerate(self._threads)
            ]

    def restart_worker(self, slot: int) -> bool:
        """Replace ``slot``'s thread with a fresh one.

        Returns False (and does nothing) when the slot exited normally,
        when its thread is still running, or when the pool was never
        started — only genuinely dead workers are restarted.
        """
        with self._lock:
            if not self._started:
                return False
            if slot < 0 or slot >= len(self._threads):
                raise ServiceError(f"no worker slot {slot}")
            if self._exited[slot] or self._threads[slot].is_alive():
                return False
            self._restarts[slot] += 1
            thread = self._make_thread(slot, generation=self._restarts[slot])
            self._threads[slot] = thread
            self._beats[slot] = time.monotonic()
        thread.start()
        return True

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for workers to finish (call after ``queue.close()``)."""
        with self._lock:
            threads = list(self._threads)
        for thread in threads:
            thread.join(timeout=timeout)

    def alive(self) -> int:
        """How many worker threads are currently running."""
        with self._lock:
            return sum(1 for t in self._threads if t.is_alive())
