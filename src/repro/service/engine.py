"""The decode engine: epoch-aware, piece-interning context decoding.

The paper's economics are "encode on the hot path, decode later" — so a
collection backend decodes the *same* hot contexts over and over. The
engine makes repeated decodes O(1):

* **Piece interning.** A decoded context is a stack of pieces; each
  piece is fully determined by ``(epoch, start, node, residual)``.
  Pieces are decoded once, interned as immutable tuples, and shared by
  every context that contains them (all contexts below an anchor share
  that anchor's outer pieces).
* **Context memoization.** The flattened node path of a full snapshot is
  cached under ``(epoch, node, stack, id)``, so an exactly-repeated hot
  context costs one dictionary hit.
* **Epochs.** Installing a repaired plan (a PR-1 :class:`PlanUpdate`
  from ``hot_swap``) bumps the epoch. Samples are always decoded under
  the plan of the epoch they were captured in — never a newer or older
  one — so a swap can never produce a mixed-epoch decode; the old
  epoch's cache entries stop matching by construction.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.decoder import ContextDecoder, DecodedContext
from repro.core.stackmodel import StackEntry
from repro.errors import DecodingError, EpochError, ServiceError
from repro.runtime.plan import DeltaPathPlan, PlanUpdate
from repro.service.cache import LRUCache

__all__ = ["DecodeEngine", "DecodedSample"]

#: A decoded sample: the flattened context path plus provenance.
DecodedSample = Tuple[Tuple[str, ...], bool, int]  # (path, has_gaps, epoch)


class _InterningDecoder(ContextDecoder):
    """A :class:`ContextDecoder` whose piece decoding is memoized.

    ``decode`` mutates the edge lists ``_decode_piece`` returns (it
    prepends the recursive back edge), so interned pieces are stored as
    tuples and handed out as fresh lists.
    """

    def __init__(self, encoding, epoch: int, pieces: LRUCache):
        super().__init__(encoding)
        self._epoch = epoch
        self._pieces = pieces

    def _decode_piece(self, node, value, start):
        key = (self._epoch, start, node, value)
        interned = self._pieces.get(key)
        if interned is not None:
            return list(interned)
        edges = super()._decode_piece(node, value, start)
        self._pieces.put(key, tuple(edges))
        return edges


class DecodeEngine:
    """Decodes probe snapshots against versioned plans, with caching.

    Parameters
    ----------
    plan:
        The initial plan (epoch 0).
    piece_cache / context_cache:
        LRU capacities; ``0`` disables that cache layer (used by the
        benchmark's uncached baseline).
    retain_epochs:
        How many most-recent epochs stay decodable. ``None`` (default)
        retains all. A pruned epoch's samples raise
        :class:`~repro.errors.EpochError`.
    """

    def __init__(
        self,
        plan: DeltaPathPlan,
        *,
        piece_cache: int = 1 << 16,
        context_cache: int = 1 << 16,
        retain_epochs: Optional[int] = None,
    ):
        if retain_epochs is not None and retain_epochs < 1:
            raise ServiceError("retain_epochs must be at least 1")
        self._pieces = LRUCache(piece_cache)
        self._contexts = LRUCache(context_cache)
        self._retain = retain_epochs
        self._lock = threading.Lock()
        self._epoch = 0
        self._plans: Dict[int, DeltaPathPlan] = {0: plan}
        self._epoch_by_plan: Dict[int, int] = {id(plan): 0}
        self._decoders: Dict[int, _InterningDecoder] = {}

    # ------------------------------------------------------------------
    # Plan versioning
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """The current (most recently installed) plan epoch."""
        with self._lock:
            return self._epoch

    @property
    def plan(self) -> DeltaPathPlan:
        with self._lock:
            return self._plans[self._epoch]

    def plan_for(self, epoch: int) -> DeltaPathPlan:
        with self._lock:
            try:
                return self._plans[epoch]
            except KeyError:
                raise EpochError(
                    f"epoch {epoch} is not retained (current epoch "
                    f"{self._epoch}); its samples can no longer decode"
                ) from None

    def epoch_of(self, plan: DeltaPathPlan) -> int:
        """The epoch ``plan`` was installed as (identity-keyed)."""
        with self._lock:
            try:
                return self._epoch_by_plan[id(plan)]
            except KeyError:
                raise EpochError(
                    "plan was never installed into this engine"
                ) from None

    def install(self, plan: DeltaPathPlan) -> int:
        """Install ``plan`` as the next epoch; returns the new epoch."""
        with self._lock:
            self._epoch += 1
            epoch = self._epoch
            self._plans[epoch] = plan
            self._epoch_by_plan[id(plan)] = epoch
            pruned = []
            if self._retain is not None:
                cutoff = epoch - self._retain
                pruned = [e for e in self._plans if e <= cutoff]
                for stale in pruned:
                    dead = self._plans.pop(stale)
                    self._epoch_by_plan.pop(id(dead), None)
                    self._decoders.pop(stale, None)
        for stale in pruned:
            self._pieces.drop_epoch(stale)
            self._contexts.drop_epoch(stale)
        return epoch

    def install_update(self, update: PlanUpdate) -> int:
        """Install the repaired plan of a hot-swap :class:`PlanUpdate`.

        The update must have been derived from the engine's *current*
        plan — installing a repair of an older epoch would fork history.
        """
        with self._lock:
            current = self._plans[self._epoch]
        if update.old_plan is not current:
            raise ServiceError(
                "plan update was derived from a plan that is not this "
                "engine's current epoch"
            )
        return self.install(update.plan)

    def advance_epoch_to(self, epoch: int) -> int:
        """Re-number the current plan as ``epoch`` (recovery only).

        A recovered checkpoint carries the epoch counter of the crashed
        process; the fresh service's plan — verified by fingerprint to
        be the *same* plan — must adopt that number so samples stamped
        before the crash and after the recovery agree. No-op when the
        engine is already at or past ``epoch``. Returns the epoch in
        effect afterwards.
        """
        with self._lock:
            if epoch <= self._epoch:
                return self._epoch
            plan = self._plans.pop(self._epoch)
            self._decoders.pop(self._epoch, None)
            self._plans[epoch] = plan
            self._epoch_by_plan[id(plan)] = epoch
            self._epoch = epoch
            return epoch

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def _decoder(self, epoch: int) -> _InterningDecoder:
        with self._lock:
            decoder = self._decoders.get(epoch)
            if decoder is None:
                try:
                    plan = self._plans[epoch]
                except KeyError:
                    raise EpochError(
                        f"epoch {epoch} is not retained (current epoch "
                        f"{self._epoch})"
                    ) from None
                decoder = _InterningDecoder(plan.encoding, epoch, self._pieces)
                self._decoders[epoch] = decoder
            return decoder

    def decode(
        self,
        node: str,
        stack: Sequence[StackEntry] = (),
        current_id: int = 0,
        *,
        epoch: Optional[int] = None,
    ) -> DecodedContext:
        """Full segment-structured decode, piece cache only.

        ``epoch`` defaults to the current epoch; pass the sample's
        stamped epoch to decode historical state.
        """
        if epoch is None:
            epoch = self.epoch
        decoder = self._decoder(epoch)
        try:
            return decoder.decode(node, tuple(stack), current_id)
        except KeyError as exc:
            raise DecodingError(
                f"snapshot at {node!r} does not decode under epoch "
                f"{epoch}: node {exc} is unknown to that plan"
            ) from exc

    def decode_path(
        self,
        node: str,
        snapshot: Tuple[Sequence[StackEntry], int],
        *,
        epoch: Optional[int] = None,
    ) -> DecodedSample:
        """Flattened decode: ``(node path, has_gaps, epoch used)``.

        This is the service's aggregation form — immutable, compact, and
        memoized whole so exactly-repeated hot contexts cost one lookup.
        """
        if epoch is None:
            epoch = self.epoch
        stack, current_id = snapshot
        stack = tuple(stack)
        key = (epoch, node, stack, current_id)
        cached = self._contexts.get(key)
        if cached is not None:
            return cached
        decoder = self._decoder(epoch)
        try:
            decoded = decoder.decode(node, stack, current_id)
        except KeyError as exc:
            raise DecodingError(
                f"snapshot at {node!r} does not decode under epoch "
                f"{epoch}: node {exc} is unknown to that plan"
            ) from exc
        result: DecodedSample = (
            tuple(decoded.nodes()),
            decoded.has_gaps,
            epoch,
        )
        self._contexts.put(key, result)
        return result

    def decode_batch(
        self,
        keys: Sequence[Tuple[int, str, Tuple[StackEntry, ...], int]],
    ) -> List[Tuple[Tuple[int, str, Tuple[StackEntry, ...], int],
                    Optional[DecodedSample], Optional[Exception]]]:
        """Decode distinct ``(epoch, node, stack, current_id)`` keys.

        The dedup-then-decode core of the batch path: the caller groups
        a batch by key and each *distinct* key decodes exactly once —
        through the same memoized path as :meth:`decode_path`, so batch
        and scalar decoding can never disagree. Per-key failures are
        returned, not raised: the result is a list of
        ``(key, decoded_or_None, error_or_None)`` aligned with ``keys``,
        letting the service dead-letter one poisoned group while the
        rest of the batch aggregates. :class:`DecodingError` /
        :class:`EpochError` mark deterministic failures; any other
        exception is presumed transient and left to the caller's retry
        policy.
        """
        out: List[
            Tuple[
                Tuple[int, str, Tuple[StackEntry, ...], int],
                Optional[DecodedSample],
                Optional[Exception],
            ]
        ] = []
        for key in keys:
            epoch, node, stack, current_id = key
            try:
                decoded = self.decode_path(
                    node, (stack, current_id), epoch=epoch
                )
            except Exception as exc:  # noqa: BLE001 - reported per key
                out.append((key, None, exc))
            else:
                out.append((key, decoded, None))
        return out

    # ------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, dict]:
        return {
            "pieces": self._pieces.stats().__dict__,
            "contexts": self._contexts.stats().__dict__,
        }

    def retained_epochs(self) -> List[int]:
        with self._lock:
            return sorted(self._plans)
