"""`SampleBatch`: the columnar, batch-first ingestion value type.

The decode hot path used to be per-sample Python objects and dict
lookups; BENCH_serve shows a ~99.7% context hit rate, so most of that
work is redundant.  A :class:`SampleBatch` packs many observations into
``array``-backed *columns* plus two small interning tables, so the
per-sample cost of submission, queueing, and grouping is integer array
appends — and the service can collapse a whole batch into a counting
pass over its distinct ``(epoch, node, anchor-stack, ID)`` groups before
decoding anything.

Layout
------
Per sample, six signed 64-bit columns::

    epoch       plan epoch the snapshot was captured under
    node_idx    index into the batch's interned function-name table
    stack_idx   index into the batch's interned anchor-stack table
    current_id  the DeltaPath context ID at capture
    thread      producer thread tag (0 when untracked)
    weight      observation weight (>= 1)

The node table holds each distinct function name once; the stack table
holds each distinct anchor stack (a tuple of
:class:`~repro.core.stackmodel.StackEntry`) once.  Hot traffic repeats
a handful of ``(node, stack, id)`` triples, so both tables stay tiny
regardless of batch length.

Binary serialization
--------------------
:meth:`SampleBatch.to_bytes` / :meth:`SampleBatch.from_bytes` give the
batch a compact, self-checking wire form — the sample record the
multiprocess scale-out (ROADMAP item 1) will ship over shared memory.
The layout (documented for readers in docs/RESILIENCE.md):

* magic ``b"DPSB"``, one format-version byte (``1``);
* a ``<IIII`` little-endian header: sample count, node-table byte
  length, stack-table byte length, reserved (0);
* the node table: UTF-8 JSON list of function names;
* the stack table: UTF-8 JSON list of stacks, each entry encoded as
  ``[kind, node, saved_id, site, expected_sid, resume_node,
  resume_executed]`` with ``site`` either ``null`` or
  ``[caller, label]``;
* six column payloads, each ``8 * samples`` bytes of little-endian
  signed 64-bit integers, in the order epoch, node_idx, stack_idx,
  current_id, thread, weight;
* a ``<I`` CRC32 trailer over everything before it.

``from_bytes`` rejects short buffers, bad magic, unknown versions and
CRC mismatches with :class:`~repro.errors.ServiceError` — a torn or
corrupted buffer never half-loads.
"""

from __future__ import annotations

import json
import struct
import sys
import zlib
from array import array
from collections import Counter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.stackmodel import EntryKind, StackEntry
from repro.errors import ServiceError
from repro.graph.callgraph import CallSite

__all__ = ["SampleBatch", "GroupKey", "node_lane"]


def node_lane(node: str, lanes: int) -> int:
    """The lane a function name routes to under *n*-way node sharding.

    Stable across processes and interpreter restarts (``zlib.crc32`` of
    the UTF-8 name — never ``hash()``, which is salted per process), so
    the parent's router and every worker agree on shard ownership.
    """
    return zlib.crc32(node.encode("utf-8")) % lanes

_MAGIC = b"DPSB"
_VERSION = 1
_HEADER = struct.Struct("<IIII")
_TRAILER = struct.Struct("<I")
#: The six columns, in serialization order.
_COLUMNS = ("epoch", "node_idx", "stack_idx", "current_id", "thread", "weight")

#: A distinct decode group: ``(epoch, node_idx, stack_idx, current_id)``.
GroupKey = Tuple[int, int, int, int]


def _int64_array() -> array:
    """A signed-64-bit array (``'q'`` everywhere we support)."""
    return array("q")


def _entry_to_json(entry: StackEntry) -> list:
    if entry.site is None:
        site = None
    else:
        label = entry.site.label
        if not isinstance(label, (str, int)) and label is not None:
            raise ServiceError(
                f"cannot serialize call-site label {label!r} "
                f"({type(label).__name__}); batch serialization supports "
                "str/int/None labels"
            )
        site = [entry.site.caller, label]
    return [
        int(entry.kind),
        entry.node,
        entry.saved_id,
        site,
        entry.expected_sid,
        entry.resume_node,
        entry.resume_executed,
    ]


def _entry_from_json(spec: Sequence) -> StackEntry:
    kind, node, saved_id, site, expected_sid, resume_node, resume_exec = spec
    return StackEntry(
        kind=EntryKind(kind),
        node=node,
        saved_id=saved_id,
        site=None if site is None else CallSite(site[0], site[1]),
        expected_sid=expected_sid,
        resume_node=resume_node,
        resume_executed=bool(resume_exec),
    )


class SampleBatch:
    """Columnar container of context observations.

    Build one with :meth:`append` (per observation), :meth:`extend`
    (from :class:`~repro.service.ingest.Sample` objects or another
    batch), or :meth:`from_samples`.  Iterating yields materialized
    :class:`~repro.service.ingest.Sample` objects — that path exists for
    compatibility and failure triage; the hot path never materializes,
    it works on :meth:`groups`.
    """

    __slots__ = (
        "_cols", "_nodes", "_node_ids", "_stacks", "_stack_ids",
        "_stack_memo", "_uniform",
    )

    def __init__(self):
        self._cols: Dict[str, array] = {
            name: _int64_array() for name in _COLUMNS
        }
        self._nodes: List[str] = []
        self._node_ids: Dict[str, int] = {}
        self._stacks: List[Tuple[StackEntry, ...]] = []
        self._stack_ids: Dict[Tuple[StackEntry, ...], int] = {}
        # Identity memo over the hash table: re-appending the *same*
        # stack tuple (hot snapshots are reused objects) skips hashing
        # every StackEntry again. Holding the tuple in the value keeps
        # its id() from being recycled.
        self._stack_memo: Dict[int, Tuple[Tuple[StackEntry, ...], int]] = {}
        # True while every appended weight is exactly 1 — unlocks the
        # Counter-based grouping fast path.
        self._uniform = True

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _node_id(self, node: str) -> int:
        idx = self._node_ids.get(node)
        if idx is None:
            idx = len(self._nodes)
            self._nodes.append(node)
            self._node_ids[node] = idx
        return idx

    def _stack_id(self, stack: Tuple[StackEntry, ...]) -> int:
        memo = self._stack_memo.get(id(stack))
        if memo is not None and memo[0] is stack:
            return memo[1]
        idx = self._stack_ids.get(stack)
        if idx is None:
            idx = len(self._stacks)
            self._stacks.append(stack)
            self._stack_ids[stack] = idx
        self._stack_memo[id(stack)] = (stack, idx)
        return idx

    def append(
        self,
        node: str,
        snapshot: Tuple[Sequence[StackEntry], int],
        *,
        epoch: int,
        weight: int = 1,
        thread: int = 0,
    ) -> "SampleBatch":
        """Add one ``(node, snapshot)`` observation stamped with ``epoch``."""
        if weight < 1:
            raise ServiceError(f"sample weight must be >= 1, got {weight}")
        if weight != 1:
            self._uniform = False
        stack, current_id = snapshot
        cols = self._cols
        cols["epoch"].append(epoch)
        cols["node_idx"].append(self._node_id(node))
        cols["stack_idx"].append(self._stack_id(tuple(stack)))
        cols["current_id"].append(current_id)
        cols["thread"].append(thread)
        cols["weight"].append(weight)
        return self

    def extend(self, samples: Iterable) -> "SampleBatch":
        """Append :class:`Sample` objects (or another batch's samples)."""
        for sample in samples:
            self.append(
                sample.node,
                (sample.stack, sample.current_id),
                epoch=sample.epoch,
                weight=sample.weight,
                thread=getattr(sample, "thread", 0),
            )
        return self

    @classmethod
    def from_samples(cls, samples: Iterable) -> "SampleBatch":
        return cls().extend(samples)

    @classmethod
    def from_observations(
        cls,
        observations: Iterable[Tuple[str, Tuple[Sequence[StackEntry], int]]],
        *,
        epoch: int,
        weight: int = 1,
        thread: int = 0,
    ) -> "SampleBatch":
        """Pack ``(node, snapshot)`` pairs captured under one epoch.

        The bulk-ingest fast path: per-call constants are hoisted out of
        the loop, so packing costs little more than the array appends.
        """
        if weight < 1:
            raise ServiceError(f"sample weight must be >= 1, got {weight}")
        batch = cls()
        if weight != 1:
            batch._uniform = False
        cols = batch._cols
        add_node = cols["node_idx"].append
        add_stack = cols["stack_idx"].append
        add_id = cols["current_id"].append
        node_id = batch._node_id
        stack_id = batch._stack_id
        for node, snapshot in observations:
            stack, current_id = snapshot
            add_node(node_id(node))
            add_stack(
                stack_id(stack if type(stack) is tuple else tuple(stack))
            )
            add_id(current_id)
        # The per-sample columns above drive the loop; the three
        # constant columns are stamped wholesale at C speed.
        count = len(cols["node_idx"])
        cols["epoch"] = array("q", [epoch]) * count
        cols["thread"] = array("q", [thread]) * count
        cols["weight"] = array("q", [weight]) * count
        return batch

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._cols["epoch"])

    @property
    def total_weight(self) -> int:
        return sum(self._cols["weight"])

    def sample(self, index: int):
        """Materialize one observation as a :class:`Sample` (slow path)."""
        from repro.service.ingest import Sample

        cols = self._cols
        return Sample(
            node=self._nodes[cols["node_idx"][index]],
            stack=self._stacks[cols["stack_idx"][index]],
            current_id=cols["current_id"][index],
            epoch=cols["epoch"][index],
            weight=cols["weight"][index],
            thread=cols["thread"][index],
        )

    def __iter__(self) -> Iterator:
        for index in range(len(self)):
            yield self.sample(index)

    def node_of(self, key: GroupKey) -> str:
        return self._nodes[key[1]]

    def stack_of(self, key: GroupKey) -> Tuple[StackEntry, ...]:
        return self._stacks[key[2]]

    # ------------------------------------------------------------------
    # Dedup-then-decode support
    # ------------------------------------------------------------------
    def groups(self) -> Dict[GroupKey, Tuple[int, int]]:
        """Collapse the batch into its distinct decode groups.

        Returns ``{(epoch, node_idx, stack_idx, current_id):
        (samples, weight)}`` — the number of observations in the group
        and their summed weight.  This is the columnar counting pass:
        with uniform weights (the overwhelmingly common case, tracked at
        append time) it is one C-speed :class:`~collections.Counter`
        sweep over the zipped columns.  Row indices are *not* built here
        — a failing group reconstructs its rows with
        :meth:`indices_of`, so the success path never pays for the
        failure path.
        """
        cols = self._cols
        keys = zip(
            cols["epoch"], cols["node_idx"], cols["stack_idx"],
            cols["current_id"],
        )
        if self._uniform:
            return {k: (n, n) for k, n in Counter(keys).items()}
        weights = cols["weight"]
        out: Dict[GroupKey, Tuple[int, int]] = {}
        for i, key in enumerate(keys):
            got = out.get(key)
            if got is None:
                out[key] = (1, weights[i])
            else:
                out[key] = (got[0] + 1, got[1] + weights[i])
        return out

    def __eq__(self, other) -> bool:
        """Structural equality: same columns, same interning tables.

        Stricter than sample-set equality — table *order* matters — which
        is exactly what the wire-form round-trip property needs:
        ``from_bytes(to_bytes(b)) == b`` must hold bit-for-bit.
        """
        if not isinstance(other, SampleBatch):
            return NotImplemented
        return (
            self._cols == other._cols
            and self._nodes == other._nodes
            and self._stacks == other._stacks
        )

    def split_by_node(self, lanes: int) -> List["SampleBatch"]:
        """Partition the batch into ``lanes`` sub-batches by node shard.

        Every row routes by :func:`node_lane` of its function name, so a
        given function's samples always land on the same decode worker
        regardless of which process (or run) does the splitting.  Tables
        are re-interned per sub-batch; rows keep their relative order.
        """
        if lanes < 1:
            raise ServiceError(f"lane count must be >= 1, got {lanes}")
        outs = [SampleBatch() for _ in range(lanes)]
        if not len(self):
            return outs
        route = [node_lane(n, lanes) for n in self._nodes]
        node_map: List[Dict[int, int]] = [{} for _ in range(lanes)]
        stack_map: List[Dict[int, int]] = [{} for _ in range(lanes)]
        cols = self._cols
        rows = zip(
            cols["epoch"], cols["node_idx"], cols["stack_idx"],
            cols["current_id"], cols["thread"], cols["weight"],
        )
        for epoch, ni, si, current_id, thread, weight in rows:
            lane = route[ni]
            out = outs[lane]
            nm = node_map[lane]
            new_ni = nm.get(ni)
            if new_ni is None:
                name = self._nodes[ni]
                new_ni = len(out._nodes)
                out._nodes.append(name)
                out._node_ids[name] = new_ni
                nm[ni] = new_ni
            sm = stack_map[lane]
            new_si = sm.get(si)
            if new_si is None:
                stack = self._stacks[si]
                new_si = len(out._stacks)
                out._stacks.append(stack)
                out._stack_ids[stack] = new_si
                sm[si] = new_si
            if weight != 1:
                out._uniform = False
            ocols = out._cols
            ocols["epoch"].append(epoch)
            ocols["node_idx"].append(new_ni)
            ocols["stack_idx"].append(new_si)
            ocols["current_id"].append(current_id)
            ocols["thread"].append(thread)
            ocols["weight"].append(weight)
        return outs

    def indices_of(self, key: GroupKey) -> List[int]:
        """Row indices of one group (failure triage; scans the batch)."""
        keys = zip(
            self._cols["epoch"], self._cols["node_idx"],
            self._cols["stack_idx"], self._cols["current_id"],
        )
        return [i for i, k in enumerate(keys) if k == key]

    # ------------------------------------------------------------------
    # Binary serialization (see module docs for the layout)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        nodes_blob = json.dumps(
            self._nodes, separators=(",", ":"), ensure_ascii=False
        ).encode("utf-8")
        stacks_blob = json.dumps(
            [[_entry_to_json(e) for e in stack] for stack in self._stacks],
            separators=(",", ":"),
            ensure_ascii=False,
        ).encode("utf-8")
        parts = [
            _MAGIC,
            bytes([_VERSION]),
            _HEADER.pack(len(self), len(nodes_blob), len(stacks_blob), 0),
            nodes_blob,
            stacks_blob,
        ]
        for name in _COLUMNS:
            col = self._cols[name]
            if sys.byteorder == "big":  # pragma: no cover - LE hosts
                col = array("q", col)
                col.byteswap()
            parts.append(col.tobytes())
        body = b"".join(parts)
        return body + _TRAILER.pack(zlib.crc32(body) & 0xFFFFFFFF)

    @classmethod
    def from_bytes(cls, data: bytes) -> "SampleBatch":
        if len(data) < len(_MAGIC) + 1 + _HEADER.size + _TRAILER.size:
            raise ServiceError("sample-batch buffer is truncated")
        body, trailer = data[: -_TRAILER.size], data[-_TRAILER.size:]
        (want,) = _TRAILER.unpack(trailer)
        if zlib.crc32(body) & 0xFFFFFFFF != want:
            raise ServiceError("sample-batch buffer failed its CRC check")
        if body[: len(_MAGIC)] != _MAGIC:
            raise ServiceError("not a sample-batch buffer (bad magic)")
        version = body[len(_MAGIC)]
        if version != _VERSION:
            raise ServiceError(
                f"unsupported sample-batch format version {version}"
            )
        offset = len(_MAGIC) + 1
        samples, nodes_len, stacks_len, _ = _HEADER.unpack_from(body, offset)
        offset += _HEADER.size
        try:
            nodes = json.loads(body[offset:offset + nodes_len].decode("utf-8"))
            offset += nodes_len
            stacks = json.loads(
                body[offset:offset + stacks_len].decode("utf-8")
            )
            offset += stacks_len
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServiceError(f"corrupt sample-batch tables: {exc}") from exc
        expected = offset + 8 * samples * len(_COLUMNS)
        if len(body) != expected:
            raise ServiceError(
                f"sample-batch column payload is {len(body) - offset} bytes, "
                f"expected {expected - offset}"
            )
        batch = cls()
        batch._nodes = [str(n) for n in nodes]
        batch._node_ids = {n: i for i, n in enumerate(batch._nodes)}
        try:
            batch._stacks = [
                tuple(_entry_from_json(e) for e in stack) for stack in stacks
            ]
        except (TypeError, ValueError, KeyError, IndexError) as exc:
            raise ServiceError(
                f"corrupt sample-batch stack table: {exc!r}"
            ) from exc
        batch._stack_ids = {s: i for i, s in enumerate(batch._stacks)}
        for name in _COLUMNS:
            col = _int64_array()
            col.frombytes(body[offset:offset + 8 * samples])
            if sys.byteorder == "big":  # pragma: no cover - LE hosts
                col.byteswap()
            offset += 8 * samples
            batch._cols[name] = col
        batch._uniform = all(w == 1 for w in batch._cols["weight"])
        for idx in batch._cols["node_idx"]:
            if not 0 <= idx < len(batch._nodes):
                raise ServiceError(f"sample-batch node index {idx} is out of range")
        for idx in batch._cols["stack_idx"]:
            if not 0 <= idx < len(batch._stacks):
                raise ServiceError(f"sample-batch stack index {idx} is out of range")
        return batch

    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """Approximate retained size of the columns and tables."""
        total = sum(col.itemsize * len(col) for col in self._cols.values())
        total += sum(len(n.encode("utf-8")) for n in self._nodes)
        total += 64 * len(self._stacks)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SampleBatch(samples={len(self)}, nodes={len(self._nodes)}, "
            f"stacks={len(self._stacks)})"
        )
