"""The collection/aggregation backend: decode off the hot path, at scale.

``repro.service`` is the layer real profilers put behind their probes: a
sharded, cached context-decode and ingestion service. Probes stay as
cheap as the paper promises (integer additions); this package owns
everything that happens to the collected integers afterwards:

* :class:`DecodeEngine` — epoch-aware decoding with an anchor-aware
  interning cache: decoded pieces are shared across contexts, repeated
  hot contexts decode in O(1), and plan hot swaps (PR 1) invalidate by
  epoch instead of by flushing the world.
* :class:`SampleBatch` — the columnar, batch-first ingestion value
  type: array-packed (epoch, context ID, function, thread, weight)
  columns with a compact, CRC-checked binary serialization.
* :class:`BoundedQueue` / :class:`WorkerPool` — batched ingestion with
  explicit backpressure (block / drop-newest / drop-oldest / error),
  denominated in samples, batch-aware.
* :class:`ContextStore` — retained contexts delta-encoded against a
  shared prefix trie, sealed into block-compressed, CRC-checked blocks.
* :class:`ShardedContextTree` — lock-striped calling-context trees over
  the store that merge on read (top-K, per-function rollups, UCP
  counts), with keyword-only ``epoch=`` / ``decoded=`` filters.
* :class:`ContextService` — the facade wiring all of it together, with
  full metrics (counters, queue depth, cache hit rates, latency
  histograms). Ingest with :meth:`ContextService.submit_batch`; the
  scalar ``submit`` / ``submit_many`` / ``sink`` calls remain as
  deprecated shims. Also exported from :mod:`repro.api` / the package
  root.

Benchmark with ``python -m repro serve-bench``.
"""

from repro.service.batch import SampleBatch
from repro.service.cache import CacheStats, LRUCache
from repro.service.engine import DecodeEngine
from repro.service.ingest import (
    POLICIES,
    BoundedQueue,
    Sample,
    WorkerKilled,
    WorkerPool,
    WorkerState,
    item_samples,
    iter_samples,
)
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.service import ContextService, ServiceConfig
from repro.service.shards import ShardedContextTree, ShardStats
from repro.service.store import COMPRESSIONS, ContextStore

__all__ = [
    "BoundedQueue",
    "CacheStats",
    "COMPRESSIONS",
    "ContextService",
    "ContextStore",
    "DecodeEngine",
    "LRUCache",
    "LatencyHistogram",
    "POLICIES",
    "Sample",
    "SampleBatch",
    "ServiceConfig",
    "ServiceMetrics",
    "ShardStats",
    "ShardedContextTree",
    "WorkerKilled",
    "WorkerPool",
    "WorkerState",
    "item_samples",
    "iter_samples",
]
