"""The collection/aggregation backend: decode off the hot path, at scale.

``repro.service`` is the layer real profilers put behind their probes: a
sharded, cached context-decode and ingestion service. Probes stay as
cheap as the paper promises (integer additions); this package owns
everything that happens to the collected integers afterwards:

* :class:`DecodeEngine` — epoch-aware decoding with an anchor-aware
  interning cache: decoded pieces are shared across contexts, repeated
  hot contexts decode in O(1), and plan hot swaps (PR 1) invalidate by
  epoch instead of by flushing the world.
* :class:`BoundedQueue` / :class:`WorkerPool` — batched ingestion with
  explicit backpressure (block / drop-newest / drop-oldest / error).
* :class:`ShardedContextTree` — lock-striped calling-context trees that
  merge on read (top-K, per-function rollups, UCP counts).
* :class:`ContextService` — the facade wiring all of it together, with
  full metrics (counters, queue depth, cache hit rates, latency
  histograms). Also exported from :mod:`repro.api` / the package root.

Benchmark with ``python -m repro serve-bench``.
"""

from repro.service.cache import CacheStats, LRUCache
from repro.service.engine import DecodeEngine
from repro.service.ingest import (
    POLICIES,
    BoundedQueue,
    Sample,
    WorkerKilled,
    WorkerPool,
    WorkerState,
)
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.service import ContextService, ServiceConfig
from repro.service.shards import ShardedContextTree, ShardStats

__all__ = [
    "BoundedQueue",
    "CacheStats",
    "ContextService",
    "DecodeEngine",
    "LRUCache",
    "LatencyHistogram",
    "POLICIES",
    "Sample",
    "ServiceConfig",
    "ServiceMetrics",
    "ShardStats",
    "ShardedContextTree",
    "WorkerKilled",
    "WorkerPool",
    "WorkerState",
]
