"""`ContextStore`: delta-encoded, block-compressed retained contexts.

Retained calling contexts used to live in the shards as tuples of
strings — every distinct context carried its whole path even though
contexts overwhelmingly share prefixes (that is what makes them a
*tree*).  The store keeps one shared **prefix trie** instead: each trie
node is a ``(parent, name)`` pair, a context is the integer id of its
leaf node (its *pid*), and storing a new context costs only the suffix
that diverges from everything seen before — delta encoding against the
shared prefix, per the Android-scale call-path literature where the
retained footprint, not throughput, limits scale.

Trie nodes append into fixed-size **blocks**.  The open block is two raw
``array('q')`` columns; once full it is *sealed*: packed to bytes,
CRC32-stamped, and (with ``compression="zlib"``) deflate-compressed.
Cold blocks therefore cost their compressed size; reads that walk into
one decompress it through a small hot-block LRU and verify the CRC — a
corrupted block raises :class:`~repro.errors.StoreCorruptionError`
instead of serving garbage paths.

The store is shared by every shard of a
:class:`~repro.service.shards.ShardedContextTree` (prefix sharing only
works across shards) and guarded by one lock; after the
dedup-then-decode pass interning happens once per *distinct* context per
batch, so the lock is not on the per-sample path.
"""

from __future__ import annotations

import sys
import threading
import zlib
from array import array
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.errors import ServiceError, StoreCorruptionError

__all__ = ["ContextStore", "COMPRESSIONS"]

COMPRESSIONS = ("zlib", "none")

#: Sentinel node id for "no parent" (the trie root).
_ROOT = -1


class _SealedBlock:
    """One full block, packed and (optionally) compressed."""

    __slots__ = ("payload", "crc", "count", "compressed")

    def __init__(self, payload: bytes, crc: int, count: int, compressed: bool):
        self.payload = payload
        self.crc = crc
        self.count = count
        self.compressed = compressed


class ContextStore:
    """Interned context paths behind integer ids (pids).

    Parameters
    ----------
    compression:
        ``"zlib"`` (default) deflates sealed blocks; ``"none"`` seals
        without compressing (still CRC-checked).
    block_size:
        Trie nodes per block.
    hot_blocks:
        How many unsealed block views the read path keeps decompressed.
    """

    def __init__(
        self,
        *,
        compression: str = "zlib",
        block_size: int = 2048,
        hot_blocks: int = 8,
        pid_cache: int = 1 << 14,
    ):
        if compression not in COMPRESSIONS:
            raise ServiceError(
                f"unknown store compression {compression!r}; expected one "
                f"of {', '.join(COMPRESSIONS)}"
            )
        if block_size < 2:
            raise ServiceError("store block size must be at least 2")
        if hot_blocks < 1:
            raise ServiceError("store needs at least one hot block")
        self.compression = compression
        self.block_size = block_size
        self._lock = threading.Lock()
        # Interned function names.
        self._names: List[str] = []
        self._name_ids: Dict[str, int] = {}
        # Trie topology: sealed blocks + the open tail block.
        self._sealed: List[_SealedBlock] = []
        self._open_parent: array = array("q")
        self._open_name: array = array("q")
        # (parent_id, name_id) packed into one int -> child node id.
        self._children: Dict[int, int] = {}
        # pids handed out (distinct retained contexts).
        self._paths: Dict[int, bool] = {}
        # LRU of decompressed sealed-block views.
        self._hot: "OrderedDict[int, Tuple[array, array]]" = OrderedDict()
        self._hot_cap = hot_blocks
        # Hot-context intern memo: path tuple -> pid, so re-interning a
        # hot context (the ingest path's common case — ~99% of groups
        # repeat) skips the per-element trie walk. The key tuples are
        # borrowed references to the decode engine's cached paths;
        # cleared wholesale when full, so it never grows past its cap.
        self._pid_cache: Dict[Tuple[str, ...], int] = {}
        self._pid_cache_cap = pid_cache
        self.unseals = 0
        self.corruptions = 0

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def _child_key(self, parent: int, name_id: int) -> int:
        # parent in [-1, 2**40), name_id < 2**22 in any realistic plan;
        # pack into one int so the index dict holds int->int only.
        return (parent + 1) * 0x400000 + name_id

    def _name_id(self, name: str) -> int:
        idx = self._name_ids.get(name)
        if idx is None:
            idx = len(self._names)
            self._names.append(name)
            self._name_ids[name] = idx
        return idx

    def _add_node(self, parent: int, name_id: int) -> int:
        nid = len(self._sealed) * self.block_size + len(self._open_parent)
        self._open_parent.append(parent)
        self._open_name.append(name_id)
        if len(self._open_parent) >= self.block_size:
            self._seal_open()
        self._children[self._child_key(parent, name_id)] = nid
        return nid

    def _seal_open(self) -> None:
        payload = self._open_parent.tobytes() + self._open_name.tobytes()
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        count = len(self._open_parent)
        if self.compression == "zlib":
            blob = zlib.compress(payload, 6)
            self._sealed.append(_SealedBlock(blob, crc, count, True))
        else:
            self._sealed.append(_SealedBlock(payload, crc, count, False))
        # The freshly sealed block is almost certainly still hot.
        self._hot[len(self._sealed) - 1] = (
            self._open_parent, self._open_name
        )
        while len(self._hot) > self._hot_cap:
            self._hot.popitem(last=False)
        self._open_parent = array("q")
        self._open_name = array("q")

    def intern(self, path: Tuple[str, ...]) -> int:
        """The pid of ``path``, creating trie nodes for any new suffix.

        The empty path interns as pid ``_ROOT`` (a valid, decodable
        degenerate context).
        """
        pid = self._pid_cache.get(path)
        if pid is not None:
            return pid
        with self._lock:
            node = _ROOT
            for name in path:
                name_id = self._name_id(name)
                child = self._children.get(self._child_key(node, name_id))
                if child is None:
                    child = self._add_node(node, name_id)
                node = child
            if node not in self._paths:
                self._paths[node] = True
            if self._pid_cache_cap:
                if len(self._pid_cache) >= self._pid_cache_cap:
                    self._pid_cache.clear()
                self._pid_cache[path] = node
            return node

    def lookup(self, path: Tuple[str, ...]) -> Optional[int]:
        """The pid of ``path`` if it was ever interned, else None."""
        with self._lock:
            node = _ROOT
            for name in path:
                name_id = self._name_ids.get(name)
                if name_id is None:
                    return None
                child = self._children.get(self._child_key(node, name_id))
                if child is None:
                    return None
                node = child
            return node if node in self._paths else None

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def _block_view(self, block: int) -> Tuple[array, array]:
        """(parents, names) arrays of one block (caller holds the lock)."""
        view = self._hot.get(block)
        if view is not None:
            self._hot.move_to_end(block)
            return view
        sealed = self._sealed[block]
        payload = sealed.payload
        if sealed.compressed:
            try:
                payload = zlib.decompress(payload)
            except zlib.error as exc:
                self.corruptions += 1
                raise StoreCorruptionError(
                    f"context-store block {block} failed to decompress: {exc}"
                ) from exc
        if zlib.crc32(payload) & 0xFFFFFFFF != sealed.crc:
            self.corruptions += 1
            raise StoreCorruptionError(
                f"context-store block {block} failed its CRC check"
            )
        half = len(payload) // 2
        parents, names = array("q"), array("q")
        # Same-process round trip: bytes stay in native order, so no
        # byte swapping regardless of host endianness.
        parents.frombytes(payload[:half])
        names.frombytes(payload[half:])
        self.unseals += 1
        view = (parents, names)
        self._hot[block] = view
        while len(self._hot) > self._hot_cap:
            self._hot.popitem(last=False)
        return view

    def _node(self, nid: int) -> Tuple[int, int]:
        block, offset = divmod(nid, self.block_size)
        if block == len(self._sealed):
            return self._open_parent[offset], self._open_name[offset]
        parents, names = self._block_view(block)
        return parents[offset], names[offset]

    def path(self, pid: int) -> Tuple[str, ...]:
        """Reconstruct the context path behind ``pid``."""
        with self._lock:
            total = len(self._sealed) * self.block_size + len(self._open_parent)
            if pid != _ROOT and not 0 <= pid < total:
                raise ServiceError(f"unknown context id {pid}")
            out: List[str] = []
            node = pid
            while node != _ROOT:
                parent, name_id = self._node(node)
                out.append(self._names[name_id])
                node = parent
            out.reverse()
            return tuple(out)

    def name_of(self, name_id: int) -> str:
        """The interned function name behind ``name_id``."""
        with self._lock:
            try:
                return self._names[name_id]
            except IndexError:
                raise ServiceError(f"unknown name id {name_id}") from None

    def leaf_name_id(self, pid: int) -> Optional[int]:
        """The name id of ``pid``'s leaf (None for the empty context)."""
        if pid == _ROOT:
            return None
        with self._lock:
            _, name_id = self._node(pid)
            return name_id

    # ------------------------------------------------------------------
    # Stable iteration (deterministic snapshots)
    # ------------------------------------------------------------------
    def snapshot_ids(self) -> List[int]:
        """Every retained pid, in a **stable** order.

        Trie node ids are handed out in append order, so two stores
        holding the identical context *set* can number (and iterate)
        them differently when ingest interleaved differently. Snapshot
        consumers — segment writers, checkpoint diffing, any "same
        contexts ⇒ same bytes" contract — need an order that depends
        only on the contents: pids here are sorted by their decoded
        path (lexicographic), which is unique per pid by construction.
        """
        with self._lock:
            pids = list(self._paths)
        return sorted(pids, key=self.path)

    def iter_paths(self) -> List[Tuple[int, Tuple[str, ...]]]:
        """``(pid, path)`` for every retained context, stable order.

        The companion of :meth:`snapshot_ids` for consumers that want
        the decoded paths too (one lock round-trip per pid; the hot
        blocks keep repeated prefix walks cheap).
        """
        return [(pid, self.path(pid)) for pid in self.snapshot_ids()]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Distinct retained contexts (pids handed out)."""
        with self._lock:
            return len(self._paths)

    @property
    def nodes(self) -> int:
        with self._lock:
            return (
                len(self._sealed) * self.block_size + len(self._open_parent)
            )

    def bytes_retained(self) -> int:
        """Measured bytes holding the retained contexts.

        Counts the sealed payloads (compressed when compression is on),
        the open block, the name table (with string object overhead),
        and the child index — everything the store keeps alive per
        context, so bytes-per-context comparisons against the old
        tuples-of-strings representation are honest.
        """
        with self._lock:
            total = sum(len(b.payload) for b in self._sealed)
            total += self._open_parent.itemsize * len(self._open_parent) * 2
            total += sys.getsizeof(self._names)
            total += sum(sys.getsizeof(n) for n in self._names)
            total += sys.getsizeof(self._name_ids)
            total += sys.getsizeof(self._children)
            total += sys.getsizeof(self._paths)
            total += sys.getsizeof(self._pid_cache)
            return total

    def stats(self) -> Dict[str, object]:
        with self._lock:
            nodes = len(self._sealed) * self.block_size + len(self._open_parent)
            contexts = len(self._paths)
            sealed_bytes = sum(len(b.payload) for b in self._sealed)
            raw_bytes = sealed_bytes + 16 * len(self._open_parent)
        retained = self.bytes_retained()
        return {
            "compression": self.compression,
            "contexts": contexts,
            "nodes": nodes,
            "names": len(self._names),
            "sealed_blocks": len(self._sealed),
            "block_bytes": raw_bytes,
            "bytes": retained,
            "bytes_per_context": retained / contexts if contexts else 0.0,
            "hot_blocks": len(self._hot),
            "unseals": self.unseals,
            "corruptions": self.corruptions,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ContextStore(contexts={len(self)}, nodes={self.nodes}, "
            f"compression={self.compression!r})"
        )
