"""Multi-process decode scale-out: worker processes over shm batch lanes.

:class:`ProcessWorkerPool` runs N decode workers as real OS processes.
Each worker owns a disjoint set of contexts — ownership is by sampled
function name, routed with the stable :func:`~repro.service.batch.node_lane`
hash, so a given function's samples always decode on the same worker —
and is fed by its own :class:`~repro.service.shm.ShmLane` carrying DPSB
v1 records (``SampleBatch.to_bytes``).  Inside, each worker builds a
private single-process :class:`~repro.service.service.ContextService`
(tree, decode engine, dead-letter queue, optional per-worker segment
writer) and drives it synchronously, one record at a time, so its
status file is always exact about what has been accounted.

Parent/worker contract
----------------------
* **Status**: after every record the worker atomically rewrites a small
  JSON status file (generation, consumed samples, accounting buckets);
  every ``heavy_every`` records — and on sync, and at exit — it adds
  the heavy fields (tree rows, full registry snapshot).
* **Heartbeat**: the worker touches a heartbeat file each loop; the
  parent translates mtime *changes* into its own monotonic clock, so
  :class:`~repro.resilience.supervisor.Supervisor` sees thread-style
  heartbeats and needs no new logic for process stall detection.
* **Sync**: the parent bumps a generation counter in the lane header;
  the worker acknowledges in its status once it has drained the lane,
  checkpointed its shards, flushed its segments, and written a heavy
  status.  ``flush()``/``checkpoint()``/query calls ride this.
* **Death**: the supervisor detects real process death (pid liveness)
  and calls :meth:`restart_worker` under its existing budgeted-holdoff
  discipline.  The parent *seals* the dead generation — its last
  status' accounting buckets keep counting, and any samples the lane
  recorded as consumed beyond what the status accounted are charged to
  ``crash_lost`` (merged into ``dead_lettered``, so the conservation
  law survives a SIGKILL).  The replacement process recovers its own
  newest checkpoint and rebases its segment writer against its durable
  segments, so restarts neither double-count nor drop flushed samples.

Known limitation: a worker killed *inside* the lane's lock (a
microseconds-wide memcpy window) wedges the lane.  The supervisor still
restarts the worker; the restart path detects the wedged lock, rebuilds
the lane, and charges the stranded queued samples to ``crash_lost``.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ServiceError
from repro.service.batch import SampleBatch
from repro.service.ingest import WorkerState

__all__ = ["ProcessWorkerPool", "WorkerSpec", "worker_paths"]

#: Accounting buckets merged across processes (the conservation law's
#: right-hand side, minus parent-owned ``submitted``/``dropped``).
MERGE_BUCKETS = (
    "aggregated",
    "dead_lettered",
    "epoch_mismatches",
    "fallback_dropped",
    "fallback_pending",
    "decode_errors",
    "recovered",
)


def worker_paths(root: str, slot: int) -> Dict[str, str]:
    """The per-slot file layout under the pool's root directory."""
    base = os.path.join(root, f"worker-{slot}")
    return {
        "base": base,
        "heartbeat": os.path.join(base, "heartbeat"),
        "status": os.path.join(base, "status.json"),
        "checkpoints": os.path.join(base, "checkpoints"),
    }


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs, in picklable primitives."""

    slot: int
    generation: int
    lane_name: str
    parent_pid: int
    heartbeat_path: str
    status_path: str
    checkpoint_dir: str
    segment_dir: Optional[str]
    recover_own: bool
    shards: int
    piece_cache: int
    context_cache: int
    retain_epochs: Optional[int]
    store_compression: str
    flush_every: int = 8
    checkpoint_every: int = 16
    heavy_every: int = 8


def _atomic_write_json(path: str, payload: dict) -> None:
    """Temp + rename: readers see the old or the new status, never a
    torn one.  No fsync — status is advisory, atomicity is the contract."""
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, separators=(",", ":"))
    os.replace(tmp, path)


def _read_json(path: str) -> Optional[dict]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _worker_entry(spec: WorkerSpec, plan, lock) -> None:
    """Child-process main: pop DPSB records, decode, account, report."""
    # Fresh metric namespace: under fork the child inherits the parent's
    # registry *values*, which would double-count every pre-fork event
    # once snapshots are merged at scrape time.
    from repro import obs
    from repro.obs.registry import MetricsRegistry
    from repro.service.service import ContextService, ServiceConfig
    from repro.service.shm import ShmLane
    from repro.resilience.checkpoint import CheckpointStore

    obs.set_registry(MetricsRegistry("repro"))
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass

    lane = ShmLane.attach(spec.lane_name, lock)
    config = ServiceConfig(
        shards=spec.shards,
        workers=1,
        piece_cache=spec.piece_cache,
        context_cache=spec.context_cache,
        retain_epochs=spec.retain_epochs,
        store_compression=spec.store_compression,
        segment_dir=spec.segment_dir,
    )
    service = ContextService(plan, config)
    ckpt = CheckpointStore(spec.checkpoint_dir, retain=3)
    if spec.recover_own:
        try:
            service.recover(ckpt)
        except Exception:  # noqa: BLE001 - no checkpoint yet: start empty
            pass

    consumed = 0
    records = 0
    checkpoints = 0
    last_sync = 0
    status_seq = 0

    def light_status(extra: Optional[dict] = None) -> None:
        nonlocal status_seq
        status_seq += 1
        payload = {
            "slot": spec.slot,
            "generation": spec.generation,
            "pid": os.getpid(),
            "seq": status_seq,
            "sync": last_sync,
            "consumed": consumed,
            "accounting": service.accounting(),
            "ts": time.time(),
        }
        if extra:
            payload.update(extra)
        _atomic_write_json(spec.status_path, payload)

    def heavy_status() -> None:
        light_status({
            "rows": [
                [list(path), count, gaps, epoch]
                for path, count, gaps, epoch in service.tree.rows()
            ],
            "registry": obs.get_registry().snapshot(),
            "checkpoints": checkpoints,
            "segments": (
                service._segments.stats() if service._segments else None
            ),
        })

    def persist_shards() -> None:
        nonlocal checkpoints
        from repro.resilience.checkpoint import (
            CheckpointState,
            plan_fingerprint,
        )

        state = CheckpointState(
            epoch=service.engine.epoch,
            fingerprint=plan_fingerprint(service.engine.plan),
            rows=tuple(service.tree.rows()),
        )
        try:
            ckpt.write(state)
            checkpoints += 1
        except Exception:  # noqa: BLE001 - counted by the store
            pass
        if service._segments is not None:
            try:
                service.flush_segments()
            except Exception:  # noqa: BLE001 - next cadence retries
                pass

    def heartbeat() -> None:
        try:
            os.utime(spec.heartbeat_path)
        except OSError:
            try:
                with open(spec.heartbeat_path, "a", encoding="utf-8"):
                    pass
            except OSError:  # pragma: no cover - torn-down root
                pass

    heartbeat()
    light_status()
    try:
        while True:
            got = lane.pop(timeout=0.05)
            heartbeat()
            if got is None:
                if lane.closed and not len(lane):
                    break
                if os.getppid() != spec.parent_pid:
                    break  # orphaned: the parent is gone
                sync = lane.sync_req
                if sync > last_sync and not len(lane):
                    persist_shards()
                    last_sync = sync
                    heavy_status()
                continue
            payload, samples = got
            records += 1
            consumed += samples
            service.metrics.count("submitted", samples)
            before = _accounted(service)
            try:
                batch = SampleBatch.from_bytes(payload)
                service._handle_items([batch])
            except Exception as exc:  # noqa: BLE001 - account the loss
                service.metrics.record_error(repr(exc))
                shortfall = samples - (_accounted(service) - before)
                if shortfall > 0:
                    service.metrics.count("dead_lettered", shortfall)
            if spec.checkpoint_every and records % spec.checkpoint_every == 0:
                persist_shards()
            elif (
                spec.flush_every
                and service._segments is not None
                and records % spec.flush_every == 0
            ):
                try:
                    service.flush_segments()
                except Exception:  # noqa: BLE001 - next cadence retries
                    pass
            if spec.heavy_every and records % spec.heavy_every == 0:
                heavy_status()
            else:
                light_status()
    finally:
        persist_shards()
        last_sync = lane.sync_req
        heavy_status()
        lane.detach()


def _accounted(service) -> int:
    """Samples the service has routed to a conservation bucket."""
    snap = service.metrics.snapshot()
    return (
        snap["aggregated"]
        + snap["dead_lettered"]
        + snap["epoch_mismatches"]
        + snap["fallback_retained"]
        + snap["fallback_dropped"]
    )


# ----------------------------------------------------------------------
# Parent-side pool
# ----------------------------------------------------------------------
class _LaneDepth:
    """Duck-types the ``_queue`` surface the Supervisor consults."""

    def __init__(self, pool: "ProcessWorkerPool"):
        self._pool = pool

    def __len__(self) -> int:
        if self._pool._destroyed:
            return 0
        return sum(len(lane) for lane in self._pool._lanes)

    @property
    def dropped(self) -> int:
        return self._pool.lane_dropped()


class ProcessWorkerPool:
    """N decode worker processes behind shared-memory batch lanes.

    Duck-types the :class:`~repro.service.ingest.WorkerPool` surface the
    :class:`~repro.resilience.supervisor.Supervisor` drives —
    ``worker_states()``, ``restart_worker(slot)``, ``_queue`` — so
    process supervision reuses the thread supervisor unchanged.
    """

    def __init__(self, plan, config, root: Optional[str] = None):
        if config.worker_processes < 1:
            raise ServiceError("ProcessWorkerPool needs worker_processes >= 1")
        self._plan = plan
        self._config = config
        self.nworkers = config.worker_processes
        self._own_root = root is None and config.worker_dir is None
        self._root = (
            root
            or config.worker_dir
            or tempfile.mkdtemp(prefix="repro-workers-")
        )
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        from repro.service.shm import ShmLane

        self._lane_cls = ShmLane
        self._lanes: List = []
        self._guards = [threading.RLock() for _ in range(self.nworkers)]
        self._slots: List[dict] = []
        for slot in range(self.nworkers):
            paths = worker_paths(self._root, slot)
            os.makedirs(paths["base"], exist_ok=True)
            os.makedirs(paths["checkpoints"], exist_ok=True)
            self._lanes.append(
                ShmLane(
                    config.lane_slots, config.lane_slot_bytes,
                    lock=self._ctx.Lock(),
                )
            )
            self._slots.append({
                "paths": paths,
                "proc": None,
                "generation": -1,
                "sealed_gen": -1,
                "sealed": {bucket: 0 for bucket in MERGE_BUCKETS},
                "sealed_registries": [],
                "sealed_rows": [],
                "accounted_consumed": 0,
                "crash_lost": 0,
                "restarts": 0,
                "parent_drained": 0,
                "lane_base": {"consumed": 0, "dropped": 0},
                "hb_mtime_ns": -1,
                "hb_time": time.monotonic(),
                # Latest heavy fields seen for the current generation —
                # light statuses overwrite the file without them, so the
                # parent keeps the last heavy view per generation.
                "cached_rows": None,
                "cached_rows_gen": -1,
                "cached_registry": None,
                "cached_registry_gen": -1,
            })
        self._queue = _LaneDepth(self)
        self._started = False
        self._closed = False
        self._destroyed = False

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "ProcessWorkerPool":
        if self._started:
            return self
        self._started = True
        for slot in range(self.nworkers):
            self._spawn(slot, recover_own=False)
        return self

    def _spawn(self, slot: int, recover_own: bool) -> None:
        st = self._slots[slot]
        st["generation"] += 1
        paths = st["paths"]
        segment_dir = None
        if self._config.segment_dir:
            segment_dir = os.path.join(
                self._config.segment_dir, f"worker-{slot}"
            )
        spec = WorkerSpec(
            slot=slot,
            generation=st["generation"],
            lane_name=self._lanes[slot].name,
            parent_pid=os.getpid(),
            heartbeat_path=paths["heartbeat"],
            status_path=paths["status"],
            checkpoint_dir=paths["checkpoints"],
            segment_dir=segment_dir,
            recover_own=recover_own,
            shards=self._config.shards,
            piece_cache=self._config.piece_cache,
            context_cache=self._config.context_cache,
            retain_epochs=self._config.retain_epochs,
            store_compression=self._config.store_compression,
        )
        with open(paths["heartbeat"], "a", encoding="utf-8"):
            pass
        proc = self._ctx.Process(
            target=_worker_entry,
            args=(spec, self._plan, self._lanes[slot]._lock),
            daemon=True,
            name=f"repro-decode-{slot}",
        )
        proc.start()
        st["proc"] = proc
        st["hb_mtime_ns"] = -1
        st["hb_time"] = time.monotonic()

    # -- ingest ---------------------------------------------------------
    def submit(
        self, batch: SampleBatch, timeout: Optional[float] = None
    ) -> int:
        """Route a batch across the lanes; returns accepted samples.

        Every sample lands in exactly one bucket: pushed (accepted) or
        counted dropped by its lane — whole-batch-per-lane accounting,
        same conservation shape as ``BoundedQueue.put``.
        """
        if self._closed:
            return 0
        accepted = 0
        for slot, part in enumerate(batch.split_by_node(self.nworkers)):
            if not len(part):
                continue
            with self._guards[slot]:
                accepted += self._push(self._lanes[slot], part, timeout)
        return accepted

    def _push(self, lane, part: SampleBatch, timeout) -> int:
        payload = part.to_bytes()
        samples = len(part)
        if len(payload) > lane.capacity_bytes:
            if samples <= 1:
                lane.count_dropped(samples)
                return 0
            half = samples // 2
            rows = list(part)
            return self._push(
                lane, SampleBatch.from_samples(rows[:half]), timeout
            ) + self._push(
                lane, SampleBatch.from_samples(rows[half:]), timeout
            )
        if lane.push(
            payload, samples,
            policy=self._config.backpressure, timeout=timeout,
            on_closed="drop",
        ):
            return samples
        return 0

    # -- supervisor surface --------------------------------------------
    def worker_states(self) -> List[WorkerState]:
        now = time.monotonic()
        states = []
        for slot, st in enumerate(self._slots):
            proc = st["proc"]
            alive = proc is not None and proc.is_alive()
            exited = proc is not None and proc.exitcode == 0
            try:
                mtime = os.stat(st["paths"]["heartbeat"]).st_mtime_ns
            except OSError:
                mtime = st["hb_mtime_ns"]
            if mtime != st["hb_mtime_ns"]:
                st["hb_mtime_ns"] = mtime
                st["hb_time"] = now
            states.append(
                WorkerState(
                    slot=slot, alive=alive, exited=exited,
                    heartbeat=st["hb_time"],
                )
            )
        return states

    def restart_worker(self, slot: int) -> bool:
        """Seal the dead generation, heal the lane, spawn a successor.

        Returns True when a replacement was spawned (the Supervisor
        charges its restart budget on a truthy return).  A live process
        is terminated first — restart means replace, whether the slot
        died or merely wedged.
        """
        if self._closed:
            return False
        with self._guards[slot]:
            st = self._slots[slot]
            proc = st["proc"]
            if proc is not None and proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
                if proc.is_alive():  # pragma: no cover - stuck worker
                    proc.kill()
                    proc.join(timeout=5.0)
            self._seal(slot)
            lane = self._lanes[slot]
            if not self._lane_usable(lane):
                self._rebuild_lane(slot)
            st["restarts"] += 1
            self._spawn(slot, recover_own=True)
            return True

    def kill_worker(self, slot: int) -> Optional[int]:
        """SIGKILL one worker (chaos harness); returns the dead pid."""
        proc = self._slots[slot]["proc"]
        if proc is None or not proc.is_alive() or proc.pid is None:
            return None
        os.kill(proc.pid, signal.SIGKILL)
        proc.join(timeout=10.0)
        return proc.pid

    def _lane_usable(self, lane) -> bool:
        got = lane._lock.acquire(timeout=0.25)
        if got:
            lane._lock.release()
        return got

    def _rebuild_lane(self, slot: int) -> None:
        """Replace a lane wedged by a worker killed inside its lock."""
        st = self._slots[slot]
        old = self._lanes[slot]
        stranded = old.queued_samples  # dead consumer: reads are stable
        st["crash_lost"] += stranded
        st["accounted_consumed"] += stranded
        st["lane_base"]["consumed"] += old.consumed_samples + stranded
        st["lane_base"]["dropped"] += old.dropped
        self._lanes[slot] = self._lane_cls(
            self._config.lane_slots, self._config.lane_slot_bytes,
            lock=self._ctx.Lock(),
        )
        if self._closed:
            self._lanes[slot].close()
        old.destroy()

    def _seal(self, slot: int) -> None:
        """Fold a dead generation's final accounting into the slot.

        Idempotent per generation.  Charges lane-consumed samples the
        status never accounted to ``crash_lost`` — the SIGKILL window
        between popping a record and accounting it.
        """
        st = self._slots[slot]
        gen = st["generation"]
        if st["sealed_gen"] >= gen:
            return
        st["sealed_gen"] = gen
        status = _read_json(st["paths"]["status"]) or {}
        if status.get("generation") == gen:
            for bucket in MERGE_BUCKETS:
                st["sealed"][bucket] += status.get("accounting", {}).get(
                    bucket, 0
                )
            st["accounted_consumed"] += status.get("consumed", 0)
            registry = status.get("registry") or (
                st["cached_registry"]
                if st["cached_registry_gen"] == gen else None
            )
            if registry:
                st["sealed_registries"].append(registry)
            rows = status.get("rows")
            if rows is None and st["cached_rows_gen"] == gen:
                rows = st["cached_rows"]
            if rows is not None:
                # Rows are cumulative per generation (a successor
                # recovers its predecessor's checkpoint), so the latest
                # sealed generation's rows replace, not extend.
                st["sealed_rows"] = rows
        lane_consumed = (
            st["lane_base"]["consumed"]
            + self._lanes[slot].consumed_samples
            - st["parent_drained"]
        )
        lost = lane_consumed - st["accounted_consumed"]
        if lost > 0:
            st["crash_lost"] += lost
            st["accounted_consumed"] += lost

    # -- sync / flush ---------------------------------------------------
    def sync(self, timeout: float = 10.0) -> bool:
        """Drain every lane and get a fresh heavy status from each
        live worker (each checkpoints + flushes segments on the way).

        Dead-and-not-yet-restarted workers are sealed and skipped —
        their loss is already accounted, waiting on them would be
        waiting on a corpse.  Returns False on timeout.
        """
        goals = [lane.request_sync() for lane in self._lanes]
        deadline = time.monotonic() + timeout
        while True:
            pending = False
            for slot, st in enumerate(self._slots):
                proc = st["proc"]
                if proc is None or not proc.is_alive():
                    self._seal(slot)
                    continue
                if len(self._lanes[slot]):
                    pending = True
                    continue
                status = _read_json(st["paths"]["status"]) or {}
                if (
                    status.get("generation") != st["generation"]
                    or status.get("sync", 0) < goals[slot]
                ):
                    pending = True
            if not pending:
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.003)

    def flush(self, timeout: float = 30.0) -> bool:
        return self.sync(timeout=timeout)

    # -- teardown -------------------------------------------------------
    def close(self) -> None:
        self._closed = True
        for lane in self._lanes:
            lane.close()

    def join(self, timeout: float = 30.0) -> None:
        deadline = time.monotonic() + timeout
        for st in self._slots:
            proc = st["proc"]
            if proc is None:
                continue
            remaining = max(0.0, deadline - time.monotonic())
            proc.join(timeout=remaining)

    def alive(self) -> int:
        return sum(
            1 for st in self._slots
            if st["proc"] is not None and st["proc"].is_alive()
        )

    def stop(
        self, drain: bool = True, timeout: float = 30.0
    ) -> List[SampleBatch]:
        """Close lanes, stop workers, seal accounting.

        Returns the leftover records (as batches) of lanes whose worker
        died before draining them — the caller re-ingests or retains
        them so they end in a conservation bucket, not in limbo.
        """
        self.close()
        if drain:
            self.join(timeout=timeout)
        for st in self._slots:
            proc = st["proc"]
            if proc is not None and proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
                if proc.is_alive():  # pragma: no cover - stuck worker
                    proc.kill()
                    proc.join(timeout=5.0)
        return self.drain_leftovers(only_dead=False)

    def drain_leftovers(self, only_dead: bool = True) -> List[SampleBatch]:
        """Pop what dead workers left in their lanes, as batches.

        Seals each drained slot first, so the drained samples are
        charged to the parent (``parent_drained``) and never to
        ``crash_lost``.  With ``only_dead`` (degraded mode), lanes whose
        worker is still alive are left alone.
        """
        leftovers: List[SampleBatch] = []
        for slot, st in enumerate(self._slots):
            proc = st["proc"]
            if only_dead and proc is not None and proc.is_alive():
                continue
            with self._guards[slot]:
                self._seal(slot)
                lane = self._lanes[slot]
                if not len(lane):
                    continue
                if not self._lane_usable(lane):
                    self._rebuild_lane(slot)
                    continue
                while True:
                    got = lane.pop(timeout=0)
                    if got is None:
                        break
                    payload, samples = got
                    st["parent_drained"] += samples
                    try:
                        leftovers.append(SampleBatch.from_bytes(payload))
                    except Exception:  # pragma: no cover - torn record
                        st["crash_lost"] += samples
        return leftovers

    def destroy(self) -> None:
        """Release the shared-memory blocks (after :meth:`stop`).

        Final lane counters are cached first so post-mortem
        ``accounting()``/``stats()`` stay answerable from memory.
        """
        if self._destroyed:
            return
        for st, lane in zip(self._slots, self._lanes):
            st["final_lane_stats"] = lane.stats()
            st["final_lane_dropped"] = (
                st["lane_base"]["dropped"] + lane.dropped
            )
        self._destroyed = True
        for lane in self._lanes:
            lane.destroy()
        if self._own_root:
            import shutil

            shutil.rmtree(self._root, ignore_errors=True)

    # -- merged views ---------------------------------------------------
    def _live_status(self, slot: int) -> dict:
        st = self._slots[slot]
        proc = st["proc"]
        if proc is None or st["sealed_gen"] >= st["generation"]:
            return {}
        status = _read_json(st["paths"]["status"]) or {}
        gen = st["generation"]
        if status.get("generation") != gen:
            return {}
        if "rows" in status:
            st["cached_rows"] = status["rows"]
            st["cached_rows_gen"] = gen
        if "registry" in status:
            st["cached_registry"] = status["registry"]
            st["cached_registry_gen"] = gen
        return status

    def lane_dropped(self) -> int:
        if self._destroyed:
            return sum(st["final_lane_dropped"] for st in self._slots)
        return sum(
            st["lane_base"]["dropped"] + lane.dropped
            for st, lane in zip(self._slots, self._lanes)
        )

    def accounting(self) -> Dict[str, int]:
        """Worker-side conservation buckets, summed across sealed and
        live generations, plus lane drops and crash losses."""
        out = {bucket: 0 for bucket in MERGE_BUCKETS}
        crash_lost = 0
        for slot, st in enumerate(self._slots):
            for bucket in MERGE_BUCKETS:
                out[bucket] += st["sealed"][bucket]
            crash_lost += st["crash_lost"]
            live = self._live_status(slot).get("accounting", {})
            for bucket in MERGE_BUCKETS:
                out[bucket] += live.get(bucket, 0)
        out["crash_lost"] = crash_lost
        out["dead_lettered"] += crash_lost
        out["dropped"] = self.lane_dropped()
        return out

    def merged_rows(self) -> List[list]:
        """Per-slot tree rows: the live generation's latest heavy view,
        or — once a slot is sealed with no successor — its final rows.

        Rows within one slot are cumulative per generation, so exactly
        one generation's rows are used per slot (latest wins); a caller
        merging slots together gets each worker's shards exactly once.
        """
        rows: List[list] = []
        for slot, st in enumerate(self._slots):
            self._live_status(slot)  # refresh the heavy-field cache
            if (
                st["sealed_gen"] < st["generation"]
                and st["cached_rows_gen"] == st["generation"]
            ):
                rows.extend(st["cached_rows"] or [])
            else:
                rows.extend(st["sealed_rows"] or [])
        return rows

    def registry_snapshots(self) -> List[dict]:
        """Sealed generations' final registry snapshots + live ones."""
        snaps: List[dict] = []
        for slot, st in enumerate(self._slots):
            snaps.extend(st["sealed_registries"])
            self._live_status(slot)
            if (
                st["sealed_gen"] < st["generation"]
                and st["cached_registry_gen"] == st["generation"]
                and st["cached_registry"]
            ):
                snaps.append(st["cached_registry"])
        return snaps

    def worker_labels(self) -> dict:
        """A child-registry-shaped snapshot keyed per worker slot."""
        counters: Dict[str, int] = {}
        for slot, st in enumerate(self._slots):
            live = self._live_status(slot)
            acct = live.get("accounting", {})
            counters[f"w{slot}.aggregated"] = (
                st["sealed"]["aggregated"] + acct.get("aggregated", 0)
            )
            counters[f"w{slot}.dead_lettered"] = (
                st["sealed"]["dead_lettered"]
                + acct.get("dead_lettered", 0)
                + st["crash_lost"]
            )
            counters[f"w{slot}.consumed"] = (
                st["accounted_consumed"] + live.get("consumed", 0)
            )
            counters[f"w{slot}.restarts"] = st["restarts"]
            counters[f"w{slot}.crash_lost"] = st["crash_lost"]
        return {
            "counters": counters, "gauges": {},
            "histograms": {}, "labeled": {},
        }

    def stats(self) -> Dict[str, object]:
        workers = []
        for slot, st in enumerate(self._slots):
            proc = st["proc"]
            live = self._live_status(slot)
            workers.append({
                "slot": slot,
                "pid": proc.pid if proc is not None else None,
                "alive": proc is not None and proc.is_alive(),
                "generation": st["generation"],
                "restarts": st["restarts"],
                "crash_lost": st["crash_lost"],
                "consumed": (
                    st["accounted_consumed"] + live.get("consumed", 0)
                ),
                "lane": (
                    st.get("final_lane_stats")
                    if self._destroyed
                    else self._lanes[slot].stats()
                ),
            })
        return {
            "processes": self.nworkers,
            "alive": self.alive(),
            "root": self._root,
            "workers": workers,
        }

    @property
    def root(self) -> str:
        return self._root

    def segment_dirs(self) -> List[str]:
        """Per-worker segment directories (when segments are enabled)."""
        if not self._config.segment_dir:
            return []
        return [
            os.path.join(self._config.segment_dir, f"worker-{slot}")
            for slot in range(self.nworkers)
        ]