"""Pruned and relative encoding (paper Section 8, future work).

**Pruned encoding.** When only the calling contexts of a known set of
*target functions* matter (event logging, targeted profiling), functions
that never lead to a target need no encoding operations. The static
analysis is a reachability closure: keep exactly the nodes from which
some target is reachable (plus the targets). Every context of a target
lies entirely inside that closure — each of its nodes reaches the
target — so the pruned encoding is complete for the targets while
instrumenting (often far) fewer call sites.

**Relative encoding.** Successive log records usually share a long
context prefix (e.g. ABD then ABDF). :class:`RelativeContextLog` stores
a record as a reference to the previous record plus the suffix delta
whenever the previous encoding state is a prefix of the new one, and
reconstitutes absolute records on read — the paper's "reference to the
previous encoding result and an encoding of the sub-path".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.analysis.reachability import nodes_leading_to
from repro.errors import AnalysisError
from repro.graph.callgraph import CallGraph

__all__ = ["prune_for_targets", "RelativeContextLog"]


def prune_for_targets(graph: CallGraph, targets: Iterable[str]) -> CallGraph:
    """Subgraph of nodes that can reach a target (plus the entry).

    The result is what :func:`repro.runtime.plan.build_plan_from_graph`
    should encode; functions outside it execute uninstrumented and can
    never appear on a target's context (closure under predecessors).
    """
    target_list = list(targets)
    if not target_list:
        raise AnalysisError("pruned encoding needs at least one target")
    for target in target_list:
        if target not in graph:
            raise AnalysisError(f"target {target!r} is not in the graph")
    keep = nodes_leading_to(graph, target_list)
    keep.add(graph.entry)
    return graph.subgraph(keep)


@dataclass(frozen=True)
class _Record:
    """One stored log record: absolute, or relative to a previous one."""

    node: str
    # Absolute: the full (stack, id) snapshot.
    snapshot: Optional[Tuple] = None
    # Relative: index of the base record + the id delta (same stack).
    base: Optional[int] = None
    delta: Optional[int] = None


class RelativeContextLog:
    """Append-only context log with prefix-sharing compression.

    A record is stored relatively when the previous record's snapshot
    has the same encoding stack and its ID is <= the new ID (the typical
    deeper-in-the-same-region case); only the small delta is kept.
    """

    def __init__(self):
        self._records: List[_Record] = []
        self._relative_count = 0

    def append(self, node: str, snapshot: Tuple) -> int:
        """Store a (node, (stack, id)) observation; returns its index."""
        stack, current = snapshot
        if self._records:
            prev_index = len(self._records) - 1
            prev_stack, prev_id = self._resolve(prev_index)[1]
            if prev_stack == stack and prev_id <= current:
                self._records.append(
                    _Record(
                        node=node,
                        base=prev_index,
                        delta=current - prev_id,
                    )
                )
                self._relative_count += 1
                return len(self._records) - 1
        self._records.append(_Record(node=node, snapshot=(stack, current)))
        return len(self._records) - 1

    def __len__(self) -> int:
        return len(self._records)

    @property
    def relative_fraction(self) -> float:
        """Share of records stored as deltas (the compression win)."""
        if not self._records:
            return 0.0
        return self._relative_count / len(self._records)

    def get(self, index: int) -> Tuple[str, Tuple]:
        """The absolute (node, snapshot) for a stored record."""
        return self._resolve(index)

    def _resolve(self, index: int) -> Tuple[str, Tuple]:
        record = self._records[index]
        if record.snapshot is not None:
            return record.node, record.snapshot
        base_node, (stack, base_id) = self._resolve(record.base)
        return record.node, (stack, base_id + record.delta)

    def __iter__(self):
        for index in range(len(self._records)):
            yield self.get(index)
