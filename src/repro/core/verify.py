"""Exhaustive verification of encodings (the correctness oracle).

For every reachable node of an acyclic call graph the verifier enumerates
*all* calling contexts, encodes each with the static encoding under test,
and checks the paper's two guarantees:

1. **Uniqueness** — distinct contexts of the same node get distinct
   encodings (for anchored encodings, distinct ``(stack, id)`` pairs).
2. **Round trip** — decoding each encoding returns the original context.
3. **Bounds** — every ID stays inside the advertised encoding space
   (``[0, NC[n])`` for PCCE, ``[0, ICC[n])`` for Algorithm 1, and within
   the integer width for Algorithm 2).

This is deliberately brute force; tests use it on graphs small enough to
enumerate, and property-based tests drive it with randomly generated
graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.core.anchored import AnchoredEncoding
from repro.core.deltapath import DeltaPathEncoding
from repro.core.pcce import PCCEEncoding
from repro.errors import EncodingError
from repro.graph.callgraph import CallEdge
from repro.graph.contexts import enumerate_contexts

__all__ = ["VerificationReport", "verify_encoding"]

Encoding = Union[PCCEEncoding, DeltaPathEncoding, AnchoredEncoding]


@dataclass
class VerificationReport:
    """Outcome of exhaustively verifying an encoding."""

    contexts_checked: int
    nodes_checked: int
    max_observed_id: int
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def raise_if_failed(self) -> None:
        if self.failures:
            preview = "; ".join(self.failures[:5])
            raise EncodingError(
                f"encoding verification failed "
                f"({len(self.failures)} failures): {preview}"
            )


def verify_encoding(
    encoding: Encoding,
    limit_per_node: Optional[int] = None,
    max_failures: int = 20,
) -> VerificationReport:
    """Exhaustively verify ``encoding`` over its (acyclic) graph."""
    graph = encoding.graph
    reachable = graph.reachable_from(graph.entry)
    failures: List[str] = []
    checked = 0
    max_id = 0

    anchored = isinstance(encoding, AnchoredEncoding)

    for node in graph.nodes:
        if node not in reachable:
            continue
        seen: Dict[object, Tuple[CallEdge, ...]] = {}
        for context in enumerate_contexts(graph, node, limit=limit_per_node):
            checked += 1
            key, observed_max = _encode(encoding, context, node)
            max_id = max(max_id, observed_max)

            clash = seen.get(key)
            if clash is not None and clash != context:
                failures.append(
                    f"collision at {node}: {_fmt(context)} and "
                    f"{_fmt(clash)} both encode to {key}"
                )
            else:
                seen[key] = context

            decode_failure = _roundtrip(encoding, node, key, context)
            if decode_failure:
                failures.append(decode_failure)

            bound_failure = _check_bounds(encoding, node, key)
            if bound_failure:
                failures.append(bound_failure)

            if len(failures) >= max_failures:
                return VerificationReport(
                    contexts_checked=checked,
                    nodes_checked=len(reachable),
                    max_observed_id=max_id,
                    failures=failures[:max_failures],
                )
    return VerificationReport(
        contexts_checked=checked,
        nodes_checked=len(reachable),
        max_observed_id=max_id,
        failures=failures,
    )


def _encode(encoding: Encoding, context, node):
    """Encode a context; returns (hashable key, max id component seen)."""
    if isinstance(encoding, AnchoredEncoding):
        stack, current = encoding.encode_context(context)
        ids = [saved for _, saved in stack] + [current]
        return (stack, current), max(ids)
    value = encoding.encode_context(context)
    return value, value


def _roundtrip(encoding: Encoding, node, key, context) -> Optional[str]:
    try:
        if isinstance(encoding, AnchoredEncoding):
            stack, current = key
            decoded = tuple(encoding.decode_context(node, stack, current))
        else:
            decoded = tuple(encoding.decode(node, key))
    except Exception as exc:  # report, don't abort the sweep
        return f"decode({node}, {key}) raised {type(exc).__name__}: {exc}"
    if decoded != context:
        return (
            f"round trip mismatch at {node}: encoded {_fmt(context)}, "
            f"decoded {_fmt(decoded)}"
        )
    return None


def _check_bounds(encoding: Encoding, node, key) -> Optional[str]:
    if isinstance(encoding, PCCEEncoding):
        space = encoding.nc.get(node, 0)
        if not 0 <= key < max(space, 1):
            return f"id {key} outside [0, NC[{node}]={space})"
    elif isinstance(encoding, DeltaPathEncoding):
        space = encoding.icc.get(node, 0)
        if not 0 <= key < max(space, 1):
            return f"id {key} outside [0, ICC[{node}]={space})"
    else:
        assert isinstance(encoding, AnchoredEncoding)
        stack, current = key
        limit = encoding.width.max_value
        for _, saved in stack:
            if saved > limit:
                return f"pushed id {saved} exceeds width {encoding.width}"
        if current > limit:
            return f"current id {current} exceeds width {encoding.width}"
    return None


def _fmt(context) -> str:
    if not context:
        return "<entry>"
    return ",".join(str(edge) for edge in context)
