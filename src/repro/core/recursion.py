"""Static recursion planning (paper Section 2, last paragraph).

Cycles in the call graph (recursion) are handled by dividing a recursive
call path into acyclic sub-paths: the encoders remove *back edges* before
numbering, and the runtime pushes ``(RECURSION, callee, current ID)`` and
resets the ID whenever a back-edge call site fires toward a back-edge
target.

This module computes the instrumentation plan: which call sites must carry
the recursion push. A back edge shares its call site with possibly
non-back edges (a virtual site where only one target closes a cycle), so
the plan records *(site, recursive targets)* pairs — the runtime pushes
only when the dynamic dispatch actually lands on a recursive target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set

from repro.graph.callgraph import CallEdge, CallGraph, CallSite
from repro.graph.scc import back_edges

__all__ = ["RecursionPlan", "plan_recursion"]


@dataclass
class RecursionPlan:
    """Call sites that need recursion handling at runtime."""

    #: site -> set of callees for which the site acts as a back edge.
    recursive_targets: Dict[CallSite, FrozenSet[str]]
    removed_edges: List[CallEdge]

    def is_recursive_call(self, site: CallSite, callee: str) -> bool:
        """Whether dispatching ``site`` to ``callee`` re-enters a cycle."""
        targets = self.recursive_targets.get(site)
        return targets is not None and callee in targets

    @property
    def num_sites(self) -> int:
        return len(self.recursive_targets)


def plan_recursion(graph: CallGraph) -> RecursionPlan:
    """Classify the graph's back edges into a runtime plan."""
    removed = back_edges(graph)
    by_site: Dict[CallSite, Set[str]] = {}
    for edge in removed:
        by_site.setdefault(edge.site, set()).add(edge.callee)
    return RecursionPlan(
        recursive_targets={
            site: frozenset(targets) for site, targets in by_site.items()
        },
        removed_edges=removed,
    )
