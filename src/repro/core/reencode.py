"""Incremental re-encoding: Algorithm 2 confined to the dirty region.

Rebuilding a :class:`~repro.core.anchored.AnchoredEncoding` from scratch
after a small call-graph delta repeats the whole static pipeline even
when one loaded class added a handful of edges. This module recomputes
CAV / ICC / addition values only inside the *dirty region* — the anchor
territories that the changed edges can influence — and reuses every
other anchor's tables verbatim, so untouched anchors keep their addition
values and encoding IDs captured before the change stay decodable.

Soundness rests on three structural facts of the territory machinery
(:mod:`repro.core.territories`):

1. Every edge of a call site shares the site's caller, and an edge lies
   in anchor ``r``'s territory iff its caller does (and the caller is
   expandable there — ``r`` itself or a non-anchor). So "site needs
   recomputation" reduces to "caller sits in a dirty territory".
2. A *clean* anchor's territory is exactly unchanged: territories only
   move when a touched node lies inside them or the anchor set changes,
   and both conditions mark the anchor dirty.
3. Algorithm 2's CAV/ICC tables are per-(node, anchor) and its
   correctness invariant (disjoint decode sub-ranges) holds per anchor
   for *any* topological processing order. Recomputed sites read and
   write only dirty-anchor entries once the dirty set is closed under
   territory overlap, so the restricted pass is the exact projection of
   a full pass onto the dirty anchors.

The result is *decode-equivalent* to a from-scratch rebuild (every
context round-trips; property tests enforce this), not table-identical:
processing order inside the dirty region may assign different — equally
valid — addition values.

Overflow during the restricted pass grows the anchor set exactly like
the batch algorithm (paper Line 15 plus the already-anchored fallback),
dirties every territory the new anchor punctures, and retries; if the
incremental machinery cannot converge it falls back to a full
:func:`~repro.core.anchored.encode_anchored` run, reported via
:attr:`ReencodeResult.fell_back`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro import obs
from repro.core.anchored import AnchoredEncoding, _grow_anchors, _Overflow, encode_anchored
from repro.core.territories import Territories, _bounded_dfs
from repro.core.widths import Width
from repro.errors import EncodingError, EncodingOverflowError, GraphError
from repro.graph.callgraph import CallEdge, CallGraph, CallSite
from repro.graph.scc import remove_recursion

__all__ = ["ReencodeResult", "reencode"]


@dataclass
class ReencodeResult:
    """Outcome of an incremental re-encode."""

    encoding: AnchoredEncoding
    #: Anchors whose territories were recomputed (empty when the delta
    #: touched nothing reachable).
    dirty_anchors: List[str] = field(default_factory=list)
    #: Nodes inside recomputed territories.
    dirty_nodes: Set[str] = field(default_factory=set)
    #: Call sites whose addition values were recomputed.
    sites_recomputed: int = 0
    #: Call sites whose addition values were reused verbatim.
    sites_reused: int = 0
    #: Anchor-growth restarts performed during the incremental pass.
    restarts: int = 0
    #: True when the incremental path gave up and ran the batch encoder.
    fell_back: bool = False

    @property
    def reuse_fraction(self) -> float:
        total = self.sites_recomputed + self.sites_reused
        return self.sites_reused / total if total else 1.0


def reencode(
    new_graph: CallGraph,
    old: AnchoredEncoding,
    *,
    touched: Optional[Set[str]] = None,
    width: Optional[Width] = None,
    edge_priority: Optional[Callable[[CallEdge], float]] = None,
    max_restarts: Optional[int] = None,
) -> ReencodeResult:
    """Re-encode ``new_graph`` reusing ``old``'s clean territories.

    ``touched`` is the set of nodes whose incident edge set changed
    (:meth:`repro.analysis.incremental.GraphDelta.touched_nodes`); when
    omitted it is derived by diffing edge sets, which is exact but costs
    a linear scan. Over-approximating ``touched`` is always safe — it
    only enlarges the dirty region.

    ``width`` defaults to the old encoding's width. The old anchor set
    is kept (minus anchors whose nodes were removed) and may grow on
    overflow, exactly like the batch algorithm.
    """
    t_start = time.perf_counter()
    with obs.span(
        "reencode.incremental", nodes=len(new_graph.nodes)
    ) as sp:
        result = _reencode(
            new_graph,
            old,
            touched=touched,
            width=width,
            edge_priority=edge_priority,
            max_restarts=max_restarts,
        )
        sp.set("dirty_nodes", len(result.dirty_nodes))
        sp.set("dirty_anchors", len(result.dirty_anchors))
        sp.set("fell_back", result.fell_back)
    registry = obs.get_registry()
    registry.counter("reencode.runs").inc()
    registry.counter("reencode.restarts").inc(result.restarts)
    if result.fell_back:
        registry.counter("reencode.fallbacks").inc()
    registry.histogram("reencode.duration_us").observe(
        time.perf_counter() - t_start
    )
    registry.gauge("reencode.last_dirty_nodes").set(len(result.dirty_nodes))
    registry.gauge("reencode.last_dirty_anchors").set(
        len(result.dirty_anchors)
    )
    registry.gauge("reencode.last_sites_recomputed").set(
        result.sites_recomputed
    )
    registry.gauge("reencode.last_sites_reused").set(result.sites_reused)
    return result


def _reencode(
    new_graph: CallGraph,
    old: AnchoredEncoding,
    *,
    touched: Optional[Set[str]] = None,
    width: Optional[Width] = None,
    edge_priority: Optional[Callable[[CallEdge], float]] = None,
    max_restarts: Optional[int] = None,
) -> ReencodeResult:
    if width is None:
        width = old.width
    if new_graph.entry != old.graph.entry:
        return _fallback(new_graph, old, width, edge_priority)

    acyclic, removed_back = remove_recursion(new_graph)

    if touched is None:
        touched = _touched_from_diff(old, acyclic)
    else:
        touched = set(touched) | _back_edge_churn(old, removed_back)

    old_terr = old.territories
    old_anchor_set = set(old.anchors)
    anchors: List[str] = [a for a in old.anchors if a in acyclic]
    if acyclic.entry not in anchors:
        anchors.insert(0, acyclic.entry)
    anchor_set = set(anchors)
    dropped_anchors = [a for a in old.anchors if a not in anchor_set]

    if max_restarts is None:
        max_restarts = len(acyclic.nodes) + 1

    # ------------------------------------------------------------------
    # Seed the dirty set: every anchor whose old territory contains a
    # touched node. New nodes are reached transitively — the edge that
    # attaches them has a touched caller inside some territory.
    # ------------------------------------------------------------------
    dirty: Set[str] = set()
    for node in touched:
        for r in old_terr.node_anchors(node):
            if r in anchor_set:
                dirty.add(r)
    for a in dropped_anchors:
        # The hole left by a removed anchor is covered by whichever
        # territories contained it as a boundary node.
        for r in old_terr.node_anchors(a):
            if r in anchor_set:
                dirty.add(r)

    order_index = {a: i for i, a in enumerate(anchors)}
    restarts = 0
    new_cov: Dict[str, Tuple[List[str], List[CallEdge]]] = {}
    # Old-graph coverage of anchors whose tables we discard; memoised so
    # the merge and the territory patching share one bounded DFS each.
    old_cov: Dict[str, Tuple[List[str], List[CallEdge]]] = {}

    def old_coverage(a: str) -> Tuple[List[str], List[CallEdge]]:
        if a not in old_cov:
            old_cov[a] = _bounded_dfs(old.graph, a, old_anchor_set)
        return old_cov[a]

    while True:
        # Close the dirty set under territory overlap: every non-anchor
        # node inside a dirty territory must have *all* its covering
        # anchors dirty, so recomputed sites never touch a clean table.
        while True:
            for a in sorted(dirty, key=lambda x: order_index.get(x, 1 << 30)):
                if a not in new_cov:
                    new_cov[a] = _bounded_dfs(acyclic, a, anchor_set)
            need: Set[str] = set()
            for a in dirty:
                for node in new_cov[a][0]:
                    if node in anchor_set:
                        continue  # boundary anchors own their sites
                    for r in old_terr.node_anchors(node):
                        if r in anchor_set and r not in dirty:
                            need.add(r)
            if not need:
                break
            dirty |= need

        if restarts > max_restarts:
            return _fallback(new_graph, old, width, edge_priority, anchors)

        territories = _merge_territories(
            acyclic, old, anchors, dirty, dropped_anchors, new_cov, old_coverage
        )
        try:
            pass_result = _restricted_pass(
                acyclic,
                territories,
                anchor_set,
                dirty,
                new_cov,
                width,
                edge_priority,
            )
            break
        except _Overflow as overflow:
            restarts += 1
            before = set(anchors)
            try:
                _grow_anchors(acyclic, anchors, overflow.edge, width)
            except EncodingOverflowError:
                raise  # genuinely unencodable at this width
            grown = [a for a in anchors if a not in before]
            anchor_set = set(anchors)
            order_index = {a: i for i, a in enumerate(anchors)}
            for a in grown:
                # The new anchor punctures every territory that contained
                # it: those anchors must re-run their bounded DFS.
                for r in territories.node_anchors(a):
                    if r in anchor_set:
                        dirty.add(r)
                dirty.add(a)
            new_cov.clear()  # retreat points changed for everyone dirty

    cav, icc_pass, av_pass = pass_result

    # ------------------------------------------------------------------
    # Merge: reuse every clean-territory table entry verbatim. All stale
    # entries are keyed by a dirty/dropped anchor (per-anchor tables) or
    # by a site of a touched caller, so patching stays delta-proportional
    # apart from the shallow dict copies.
    # ------------------------------------------------------------------
    icc = dict(old.icc)
    bound = dict(old.bound)
    for a in sorted(dirty | set(dropped_anchors),
                    key=lambda x: order_index.get(x, 1 << 30)):
        if a not in old_anchor_set:
            continue  # anchor born this pass: no old table entries
        for node in old_coverage(a)[0]:
            icc.pop((node, a), None)
            bound.pop((node, a), None)
    icc.update(icc_pass)
    bound.update(cav)

    av: Dict[CallSite, int] = dict(old.av)
    for node in touched:
        if node not in old.graph:
            continue
        for site in old.graph.sites_in(node):
            if not _site_exists(acyclic, site):
                av.pop(site, None)
    av.update(av_pass)
    # Sites of touched callers that sit outside every territory
    # (entry-unreachable regions) carry a zero increment, mirroring the
    # batch pass; unchanged unreachable sites keep their old zero.
    for node in touched:
        if node not in acyclic:
            continue
        for site in acyclic.sites_in(node):
            if site not in av:
                av[site] = 0

    encoding = AnchoredEncoding(
        graph=acyclic,
        back_edges=removed_back,
        width=width,
        anchors=list(anchors),
        territories=territories,
        icc=icc,
        bound=bound,
        av=av,
        restarts=old.restarts + restarts,
    )
    dirty_nodes = {n for a in dirty for n in new_cov[a][0]}
    return ReencodeResult(
        encoding=encoding,
        dirty_anchors=sorted(dirty, key=lambda x: order_index.get(x, 1 << 30)),
        dirty_nodes=dirty_nodes,
        sites_recomputed=len(av_pass),
        sites_reused=len(av) - len(av_pass),
        restarts=restarts,
    )


# ----------------------------------------------------------------------
# Pieces
# ----------------------------------------------------------------------
def _touched_from_diff(old: AnchoredEncoding, acyclic: CallGraph) -> Set[str]:
    """Exact touched set by edge diff (used when the caller has no delta).

    Compares the new acyclic edge set against the old acyclic edges plus
    the old back edges; classification churn shows up automatically.
    """
    old_edges = set(old.graph.edges) | set(old.back_edges)
    new_edges = set(acyclic.edges)
    touched: Set[str] = set()
    for edge in old_edges ^ new_edges:
        touched.add(edge.caller)
        touched.add(edge.callee)
    old_nodes = set(old.graph.nodes)
    new_nodes = set(acyclic.nodes)
    touched |= old_nodes ^ new_nodes
    return touched


def _back_edge_churn(
    old: AnchoredEncoding, removed_back: List[CallEdge]
) -> Set[str]:
    """Nodes whose back-edge classification changed.

    An edge that used to be a back edge and no longer is (or vice versa)
    appears/disappears from the acyclic graph even though the delta never
    listed it; its endpoints must count as touched.
    """
    churn = set(old.back_edges) ^ set(removed_back)
    out: Set[str] = set()
    for edge in churn:
        out.add(edge.caller)
        out.add(edge.callee)
    return out


def _merge_territories(
    acyclic: CallGraph,
    old: AnchoredEncoding,
    anchors: List[str],
    dirty: Set[str],
    dropped_anchors: List[str],
    new_cov: Dict[str, Tuple[List[str], List[CallEdge]]],
    old_coverage,
) -> Territories:
    """Old territories with the dirty anchors' coverage re-derived."""
    old_terr = old.territories
    old_anchor_set = set(old.anchors)
    stale = [
        a
        for a in dict.fromkeys(list(dirty) + dropped_anchors)
        if a in old_anchor_set
    ]

    nanchors: Dict[str, List[str]] = dict(old_terr.nanchors)
    eanchors: Dict[CallEdge, List[str]] = dict(old_terr.eanchors)

    def strip(mapping, key, anchor):
        current = mapping.get(key)
        if current and anchor in current:
            # Copy-on-write: the value lists are shared with the old
            # Territories, which must stay usable for pre-swap decodes.
            mapping[key] = [r for r in current if r != anchor]
            if not mapping[key]:
                del mapping[key]

    for a in stale:
        nodes, edges = old_coverage(a)
        for node in nodes:
            strip(nanchors, node, a)
        for edge in edges:
            strip(eanchors, edge, a)

    for a in [x for x in anchors if x in dirty]:
        nodes, edges = new_cov[a]
        for node in nodes:
            existing = nanchors.get(node)
            nanchors[node] = (list(existing) if existing else []) + [a]
        for edge in edges:
            existing = eanchors.get(edge)
            eanchors[edge] = (list(existing) if existing else []) + [a]

    # Removed nodes/edges leave no stale entries: any anchor covering a
    # removed element had a touched node in its territory and is dirty,
    # so the strip above cleared every such key.
    return Territories(anchors=list(anchors), nanchors=nanchors, eanchors=eanchors)


def _site_exists(graph: CallGraph, site: CallSite) -> bool:
    try:
        return bool(graph.site_targets(site))
    except GraphError:
        return False


def _restricted_pass(
    acyclic: CallGraph,
    territories: Territories,
    anchor_set: Set[str],
    dirty: Set[str],
    new_cov: Dict[str, Tuple[List[str], List[CallEdge]]],
    width: Width,
    edge_priority: Optional[Callable[[CallEdge], float]],
):
    """Algorithm 2's main loop restricted to the dirty territories.

    Processes exactly the call sites whose callers can be expanded inside
    a dirty territory, in a topological order of the dirty-node-induced
    subgraph. Because the dirty set is closed under territory overlap,
    every CAV/ICC read and write lands on a (node, dirty-anchor) pair
    maintained by this pass — clean tables are never consulted.
    """
    region: Set[str] = set()
    for a in dirty:
        region.update(new_cov[a][0])
    # Callers whose outgoing sites this pass owns: non-anchor nodes in
    # any dirty territory, plus the dirty anchors themselves. Boundary
    # anchors inside a dirty territory keep their own (clean or dirty)
    # tables for their outgoing sites.
    expandable: Set[str] = {n for n in region if n not in anchor_set} | (
        dirty & region
    )

    cav: Dict[Tuple[str, str], int] = {}
    for a in dirty:
        for node in new_cov[a][0]:
            cav[(node, a)] = 0
    icc: Dict[Tuple[str, str], int] = {}
    av: Dict[CallSite, int] = {}
    processed: Set[CallSite] = set()

    def calculate_increment(site: CallSite) -> int:
        edges = acyclic.site_targets(site)
        a = 0
        for edge in edges:
            for anchor in territories.edge_anchors(edge):
                candidate = cav.get((edge.callee, anchor), 0)
                if candidate > a:
                    a = candidate
        for edge in edges:
            for anchor in territories.edge_anchors(edge):
                caller_icc = icc[(edge.caller, anchor)]
                value = caller_icc + a
                if not width.fits(value):
                    raise _Overflow(edge)
                cav[(edge.callee, anchor)] = value
        return a

    for node in _region_topo(acyclic, region):
        # Anchor ICC is the constant 1, so it can be assigned on entry;
        # non-anchor ICC must wait until the node's incoming sites have
        # written its CAV entries (bottom of this loop body).
        if node in anchor_set and node in dirty:
            icc[(node, node)] = 1
        incoming = [
            e for e in acyclic.in_edges(node) if e.caller in expandable
        ]
        if edge_priority is not None:
            incoming = sorted(incoming, key=edge_priority, reverse=True)
        for edge in incoming:
            site = edge.site
            if site in processed:
                continue
            processed.add(site)
            if not territories.edge_anchors(edge):
                av[site] = 0
                continue
            av[site] = calculate_increment(site)
        if node not in anchor_set:
            for anchor in territories.node_anchors(node):
                if anchor not in dirty:
                    raise EncodingError(
                        f"dirty-set closure violated at {node!r} / "
                        f"{anchor!r} (internal invariant)"
                    )
                icc[(node, anchor)] = cav[(node, anchor)]
    return cav, icc, av


def _region_topo(acyclic: CallGraph, region: Set[str]) -> List[str]:
    """Topological order of the subgraph induced by ``region``.

    Edges from outside the region impose no ordering constraints: their
    callers' tables are clean and already final.
    """
    indegree: Dict[str, int] = {}
    for node in acyclic.nodes:
        if node not in region:
            continue
        count = 0
        for pred in acyclic.predecessors(node):
            if pred in region and pred != node:
                count += 1
        indegree[node] = count
    ready = [n for n, d in indegree.items() if d == 0]
    order: List[str] = []
    cursor = 0
    while cursor < len(ready):
        node = ready[cursor]
        cursor += 1
        order.append(node)
        for succ in acyclic.successors(node):
            if succ == node or succ not in region:
                continue
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    if len(order) != len(indegree):  # pragma: no cover - DAG subgraphs
        raise EncodingError("dirty region is cyclic after back-edge removal")
    return order


def _fallback(
    new_graph: CallGraph,
    old: AnchoredEncoding,
    width: Width,
    edge_priority: Optional[Callable[[CallEdge], float]],
    anchors: Optional[List[str]] = None,
) -> ReencodeResult:
    """Full batch re-encode, seeded with the surviving anchor set."""
    seeds = [
        a
        for a in (anchors if anchors is not None else old.anchors)
        if a in new_graph and a != new_graph.entry
    ]
    encoding = encode_anchored(
        new_graph,
        width=width,
        initial_anchors=seeds,
        edge_priority=edge_priority,
    )
    return ReencodeResult(
        encoding=encoding,
        dirty_anchors=list(encoding.anchors),
        dirty_nodes=set(encoding.graph.nodes),
        sites_recomputed=len(encoding.av),
        sites_reused=0,
        restarts=encoding.restarts,
        fell_back=True,
    )
