"""Hybrid PCC + DeltaPath encoding (paper Section 8, future work).

The idea: profile the program, call the functions appearing in the most
frequent calling contexts the *trunk*, and

* run cheap PCC hashing over the trunk, decoding its (few, hot) hash
  values through a profiling-time mapping table;
* run DeltaPath over the rest of the program, with the trunk acting the
  way excluded components do in selective encoding — entering non-trunk
  code from the trunk starts a fresh precisely-encoded piece (detected
  by call path tracking), so the trunk's huge context population never
  pressures DeltaPath's encoding space.

An observation is then ``(pcc value, deltapath stack, deltapath id)``:
shorter than a pure-DeltaPath stack when the trunk is deep, still
precisely decodable outside the trunk, and decodable inside the trunk
for every context seen during profiling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.baselines.pcc import PCCProbe, site_constants
from repro.core.decoder import DecodedContext
from repro.core.widths import W64, Width
from repro.errors import AnalysisError
from repro.graph.callgraph import CallGraph
from repro.runtime.agent import DeltaPathProbe
from repro.runtime.plan import DeltaPathPlan, build_plan_from_graph
from repro.runtime.probes import Probe

__all__ = [
    "trunk_from_profile",
    "HybridPlan",
    "build_hybrid_plan",
    "HybridProbe",
    "HybridDecoder",
]


def trunk_from_profile(
    histogram: Dict[Tuple[str, ...], int], top_k: int
) -> Set[str]:
    """Functions appearing in the ``top_k`` most frequent contexts.

    ``histogram`` maps a context (tuple of function names, root-first)
    to its observation count — e.g. a stack-walk profiling run.
    """
    if top_k <= 0:
        raise AnalysisError("top_k must be positive")
    hottest = sorted(histogram.items(), key=lambda kv: -kv[1])[:top_k]
    trunk: Set[str] = set()
    for context, _count in hottest:
        trunk.update(context)
    return trunk


@dataclass
class HybridPlan:
    """Static artifacts of the hybrid scheme."""

    graph: CallGraph
    trunk: Set[str]
    #: DeltaPath plan over the non-trunk part (trunk projected out).
    dp_plan: DeltaPathPlan
    #: PCC site constants over call sites located in trunk functions.
    pcc_constants: Dict[Tuple[str, Hashable], int]


def build_hybrid_plan(
    graph: CallGraph, trunk: Iterable[str], width: Width = W64
) -> HybridPlan:
    """Project the trunk out of the DeltaPath world; hash inside it."""
    trunk_set = set(trunk)
    trunk_set.discard(graph.entry)  # the entry must stay encoded
    # The trunk is projected out exactly the way selective encoding
    # removes library components: non-trunk functions reachable only
    # *through* the trunk are re-rooted with synthetic entry edges so
    # their downstream encodings stay decodable.
    from repro.core.selective import project_interesting, reattach_orphans

    selection = project_interesting(graph, lambda n: n not in trunk_set)
    non_trunk = reattach_orphans(selection)
    dp_plan = build_plan_from_graph(non_trunk, width=width)
    trunk_sites = [
        (site.caller, site.label)
        for site in graph.call_sites
        if site.caller in trunk_set or site.caller == graph.entry
    ]
    constants = site_constants(graph, instrumented=trunk_sites)
    return HybridPlan(
        graph=graph, trunk=trunk_set, dp_plan=dp_plan, pcc_constants=constants
    )


class HybridProbe(Probe):
    """PCC over the trunk + the DeltaPath agent over everything else."""

    name = "hybrid"

    def __init__(self, plan: HybridPlan, cpt: bool = True):
        self.plan = plan
        self.pcc = PCCProbe(plan.pcc_constants)
        self.dp = DeltaPathProbe(plan.dp_plan, cpt=cpt)

    def begin_execution(self, entry: str) -> None:
        self.pcc.begin_execution(entry)
        self.dp.begin_execution(entry)

    def before_call(self, caller, label, callee) -> None:
        self.pcc.before_call(caller, label, callee)
        self.dp.before_call(caller, label, callee)

    def enter_function(self, node) -> None:
        self.dp.enter_function(node)

    def exit_function(self, node) -> None:
        self.dp.exit_function(node)

    def after_call(self, caller, label, callee) -> None:
        self.dp.after_call(caller, label, callee)
        self.pcc.after_call(caller, label, callee)

    def snapshot(self, node) -> Tuple[int, Tuple, int]:
        stack, current = self.dp.snapshot(node)
        return self.pcc.snapshot(node), stack, current


@dataclass
class HybridDecoded:
    """A decoded hybrid observation."""

    trunk_context: Optional[Tuple[str, ...]]
    tail: DecodedContext

    @property
    def trunk_known(self) -> bool:
        return self.trunk_context is not None

    def nodes(self, gap_marker: Optional[str] = "<?>") -> List[str]:
        tail_nodes = self.tail.nodes(gap_marker=gap_marker)
        if self.trunk_context is None:
            return tail_nodes
        # The tail's root segment starts at the entry; the trunk context
        # also starts there — splice without duplicating the entry.
        merged = list(self.trunk_context)
        if tail_nodes and merged and tail_nodes[0] == merged[0]:
            tail_nodes = tail_nodes[1:]
        return merged + tail_nodes


class HybridDecoder:
    """Decodes hybrid snapshots with a profiling-time trunk map.

    ``trunk_map`` maps PCC values (as observed at trunk exits during a
    profiling run) to trunk contexts. Values outside the map decode with
    ``trunk_context=None`` — the PCC part is probabilistic; that is the
    trade-off the paper describes.
    """

    def __init__(self, plan: HybridPlan, trunk_map: Dict[int, Tuple[str, ...]]):
        self.plan = plan
        self.trunk_map = dict(trunk_map)
        self._decoder = plan.dp_plan.decoder()

    def decode(self, node: str, snapshot: Tuple[int, Tuple, int]) -> HybridDecoded:
        pcc_value, stack, current = snapshot
        tail = self._decoder.decode(node, stack, current)
        return HybridDecoded(
            trunk_context=self.trunk_map.get(pcc_value), tail=tail
        )
