"""Paper-figure-style DOT rendering of encodings.

The paper's figures annotate call graphs with NC/ICC values on nodes and
addition values on edges, highlighting anchors. These helpers produce
the same style from our encoding objects, so any graph in this repo can
be eyeballed against the paper (or included in docs):

    print(encoding_dot(encode_deltapath(figure4_graph())))
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.anchored import AnchoredEncoding
from repro.core.deltapath import DeltaPathEncoding
from repro.core.pcce import PCCEEncoding
from repro.graph.callgraph import CallEdge
from repro.graph.dot import to_dot

__all__ = ["encoding_dot"]

Encoding = Union[PCCEEncoding, DeltaPathEncoding, AnchoredEncoding]


def _node_label(encoding: Encoding, node: str) -> str:
    if isinstance(encoding, PCCEEncoding):
        return f"{node}\\nNC={encoding.nc.get(node, 0)}"
    if isinstance(encoding, DeltaPathEncoding):
        return f"{node}\\nICC={encoding.icc.get(node, 0)}"
    assert isinstance(encoding, AnchoredEncoding)
    parts = [
        f"ICC[{anchor}]={value}"
        for (n, anchor), value in sorted(encoding.icc.items())
        if n == node
    ]
    suffix = "\\n" + ", ".join(parts) if parts else ""
    return f"{node}{suffix}"


def _edge_label(encoding: Encoding, edge: CallEdge) -> str:
    if isinstance(encoding, PCCEEncoding):
        value = encoding.av.get(edge, 0)
    else:
        value = encoding.av.get(edge.site, 0)
    return f"+{value}" if value else ""


def encoding_dot(encoding: Encoding, name: str = "encoding") -> str:
    """Render an encoded graph with the paper's annotations.

    Anchor nodes (Algorithm 2) are filled; zero addition values are
    omitted, matching the figures ("some edges do not have such numbers,
    meaning the addition values are 0").
    """
    highlight = {}
    if isinstance(encoding, AnchoredEncoding):
        highlight = {
            anchor: "lightblue"
            for anchor in encoding.anchors
            if anchor != encoding.graph.entry
        }
    return to_dot(
        encoding.graph,
        name=name,
        node_label=lambda n: _node_label(encoding, n),
        edge_label=lambda e: _edge_label(encoding, e),
        highlight=highlight,
    )
