"""Call path tracking set IDs (paper Section 4.1).

Inspired by control-flow integrity: every node starts in its own set; for
each call site, the sets of all its dispatch targets are merged; each
final set gets a unique *set identifier* (SID). At runtime an instrumented
call site stores the expected SID (the shared SID of its static targets)
and every instrumented function entry compares it against the function's
own SID — a mismatch means the call arrived through an *unexpected call
path* (a dynamically loaded or excluded component) and is hazardous.

Implemented with a union-find over the static call graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import AnalysisError
from repro.graph.callgraph import CallGraph, CallSite

__all__ = ["SidTable", "compute_sids"]


class _UnionFind:
    """Union-find with path compression and union by size."""

    def __init__(self, items):
        self._parent: Dict[str, str] = {item: item for item in items}
        self._size: Dict[str, int] = {item: 1 for item in items}

    def find(self, item: str) -> str:
        parent = self._parent
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]


@dataclass
class SidTable:
    """SID assignment for the nodes of a static call graph."""

    sid_of_node: Dict[str, int]
    sid_of_site: Dict[CallSite, int]
    num_sets: int

    def node_sid(self, node: str) -> int:
        try:
            return self.sid_of_node[node]
        except KeyError:
            raise AnalysisError(f"node {node!r} has no SID") from None

    def expected_sid(self, site: CallSite) -> int:
        """The SID an instrumented call site stores before the call."""
        try:
            return self.sid_of_site[site]
        except KeyError:
            raise AnalysisError(f"call site {site} has no SID") from None

    def is_benign(self, site: CallSite, entered: str) -> bool:
        """Whether arriving at ``entered`` via ``site`` passes the check."""
        return self.sid_of_site.get(site) == self.sid_of_node.get(entered)


def compute_sids(graph: CallGraph) -> SidTable:
    """Run the static half of call path tracking over ``graph``.

    The graph passed here is the *encoded* graph: when selective encoding
    excludes components, exclude them before calling this (the SIDs then
    describe the instrumented world only).
    """
    uf = _UnionFind(graph.nodes)
    for site in graph.call_sites:
        edges = graph.site_targets(site)
        first = edges[0].callee
        for edge in edges[1:]:
            uf.union(first, edge.callee)

    sid_of_node: Dict[str, int] = {}
    root_sid: Dict[str, int] = {}
    for node in graph.nodes:
        root = uf.find(node)
        if root not in root_sid:
            root_sid[root] = len(root_sid)
        sid_of_node[node] = root_sid[root]

    sid_of_site: Dict[CallSite, int] = {}
    for site in graph.call_sites:
        target = graph.site_targets(site)[0].callee
        sid_of_site[site] = sid_of_node[target]

    return SidTable(
        sid_of_node=sid_of_node,
        sid_of_site=sid_of_site,
        num_sets=len(root_sid),
    )
