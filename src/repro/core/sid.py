"""Call path tracking set IDs (paper Section 4.1).

Inspired by control-flow integrity: every node starts in its own set; for
each call site, the sets of all its dispatch targets are merged; each
final set gets a unique *set identifier* (SID). At runtime an instrumented
call site stores the expected SID (the shared SID of its static targets)
and every instrumented function entry compares it against the function's
own SID — a mismatch means the call arrived through an *unexpected call
path* (a dynamically loaded or excluded component) and is hazardous.

Implemented with a union-find over the static call graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import AnalysisError
from repro.graph.callgraph import CallGraph, CallSite

__all__ = ["SidTable", "compute_sids", "update_sids"]


class _UnionFind:
    """Union-find with path compression and union by size."""

    def __init__(self, items):
        self._parent: Dict[str, str] = {item: item for item in items}
        self._size: Dict[str, int] = {item: 1 for item in items}

    def find(self, item: str) -> str:
        parent = self._parent
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]


@dataclass
class SidTable:
    """SID assignment for the nodes of a static call graph."""

    sid_of_node: Dict[str, int]
    sid_of_site: Dict[CallSite, int]
    num_sets: int

    def node_sid(self, node: str) -> int:
        try:
            return self.sid_of_node[node]
        except KeyError:
            raise AnalysisError(f"node {node!r} has no SID") from None

    def expected_sid(self, site: CallSite) -> int:
        """The SID an instrumented call site stores before the call."""
        try:
            return self.sid_of_site[site]
        except KeyError:
            raise AnalysisError(f"call site {site} has no SID") from None

    def is_benign(self, site: CallSite, entered: str) -> bool:
        """Whether arriving at ``entered`` via ``site`` passes the check."""
        return self.sid_of_site.get(site) == self.sid_of_node.get(entered)


def update_sids(old: SidTable, graph: CallGraph, delta) -> SidTable:
    """Update a SID table after a :class:`GraphDelta` was applied.

    ``graph`` is the post-delta graph. For *additive* deltas (the dynamic
    class-loading case) SID sets only ever merge, so the update runs a
    union-find over whole old SID classes — O(delta) unions — instead of
    re-running every per-site union in the graph. Surviving classes keep
    their old SID numbers; classes absorbed by a merge take the smallest
    SID among the merged classes; classes made only of new nodes get
    fresh SIDs above ``old.num_sets``. Stable numbering is what makes
    plan hot-swap remapping mostly the identity.

    Deltas that remove nodes or edges can *split* SID sets, which
    union-find cannot undo, so they fall back to :func:`compute_sids`
    (itself a single linear pass — the expensive part of plan repair is
    re-encoding, never SIDs).
    """
    if not delta.is_additive:
        return compute_sids(graph)

    # Union-find over SID *classes*: an old node is represented by its
    # old SID (an int), a new node by a ("new", name) key.
    parent: Dict[object, object] = {}

    def find(key: object) -> object:
        parent.setdefault(key, key)
        root = key
        while parent[root] != root:
            root = parent[root]
        while parent[key] != root:
            parent[key], key = root, parent[key]
        return root

    def key_of(node: str) -> object:
        sid = old.sid_of_node.get(node)
        return ("new", node) if sid is None else sid

    sites = list(dict.fromkeys(edge.site for edge in delta.added_edges))
    for site in sites:
        targets = graph.site_targets(site)
        first = find(key_of(targets[0].callee))
        for edge in targets[1:]:
            root = find(key_of(edge.callee))
            if root != first:
                parent[root] = first

    # Canonical SID per class: the smallest old SID it contains, else a
    # fresh number (assigned in added-node order, deterministically).
    canon: Dict[object, int] = {}
    for key in list(parent):
        if isinstance(key, int):
            root = find(key)
            if root not in canon or key < canon[root]:
                canon[root] = key
    # New nodes: listed additions plus endpoints edges create implicitly
    # (minus re-adds of nodes that already had SIDs).
    new_names = [n for n in delta.added_nodes if n not in old.sid_of_node]
    for edge in delta.added_edges:
        for name in (edge.caller, edge.callee):
            if name not in old.sid_of_node and name not in delta.added_nodes:
                new_names.append(name)
    new_names = list(dict.fromkeys(new_names))
    # Fresh SIDs must clear every *surviving* number, not just
    # ``num_sets``: a previous merge can leave the live SIDs sparse
    # (e.g. {0, 1, 3} with num_sets == 3), and numbering fresh classes
    # from num_sets would collide with the surviving 3.
    fresh = max(old.sid_of_node.values(), default=-1) + 1
    for name in new_names:
        root = find(("new", name))
        if root not in canon:
            canon[root] = fresh
            fresh += 1

    value_remap = {
        key: canon[find(key)]
        for key in parent
        if isinstance(key, int) and canon[find(key)] != key
    }
    sid_of_node = dict(old.sid_of_node)
    sid_of_site = dict(old.sid_of_site)
    if value_remap:
        for node, sid in sid_of_node.items():
            if sid in value_remap:
                sid_of_node[node] = value_remap[sid]
        for site, sid in sid_of_site.items():
            if sid in value_remap:
                sid_of_site[site] = value_remap[sid]
    for name in new_names:
        sid_of_node[name] = canon[find(("new", name))]
    for site in sites:
        sid_of_site[site] = sid_of_node[graph.site_targets(site)[0].callee]

    return SidTable(
        sid_of_node=sid_of_node,
        sid_of_site=sid_of_site,
        num_sets=len(set(sid_of_node.values())),
    )


def compute_sids(graph: CallGraph) -> SidTable:
    """Run the static half of call path tracking over ``graph``.

    The graph passed here is the *encoded* graph: when selective encoding
    excludes components, exclude them before calling this (the SIDs then
    describe the instrumented world only).
    """
    uf = _UnionFind(graph.nodes)
    for site in graph.call_sites:
        edges = graph.site_targets(site)
        first = edges[0].callee
        for edge in edges[1:]:
            uf.union(first, edge.callee)

    sid_of_node: Dict[str, int] = {}
    root_sid: Dict[str, int] = {}
    for node in graph.nodes:
        root = uf.find(node)
        if root not in root_sid:
            root_sid[root] = len(root_sid)
        sid_of_node[node] = root_sid[root]

    sid_of_site: Dict[CallSite, int] = {}
    for site in graph.call_sites:
        target = graph.site_targets(site)[0].callee
        sid_of_site[site] = sid_of_node[target]

    return SidTable(
        sid_of_node=sid_of_node,
        sid_of_site=sid_of_site,
        num_sets=len(root_sid),
    )
