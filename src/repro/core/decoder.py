"""Full precise decoding of runtime encoding state.

The runtime represents a calling context as ``(stack, current ID)`` plus
the current function. The stack holds :class:`~repro.core.stackmodel.StackEntry`
records pushed at anchor invocations, recursive calls, and hazardous-UCP
detections. This module reverses the whole representation into a
:class:`DecodedContext` — a sequence of decoded pieces with explicit
markers where dynamically loaded (or excluded) components executed.

Piece decoding uses the paper's bottom-up rule: at node ``n`` with
residual ``v``, take the incoming edge with the greatest addition value
not exceeding ``v``. For anchored encodings candidates are filtered to the
governing anchor's territory, which restores the disjoint-sub-range
invariant that makes the rule unambiguous.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.anchored import AnchoredEncoding
from repro.core.deltapath import DeltaPathEncoding
from repro.core.pcce import PCCEEncoding
from repro.core.stackmodel import EntryKind, StackEntry
from repro.errors import DecodingError
from repro.graph.callgraph import CallEdge, CallSite

__all__ = ["Segment", "DecodedContext", "ContextDecoder"]

Encoding = Union[PCCEEncoding, DeltaPathEncoding, AnchoredEncoding]


@dataclass
class Segment:
    """One decoded piece of a context.

    ``gap_before`` marks that unknown (uninstrumented) frames executed
    between the previous segment and this one — the hazardous-UCP case.
    When set, ``via_site`` is the last instrumented call site before the
    gap (informational), and ``previous_ran`` says whether the previous
    segment's final node actually executed: it is False when the call at
    that site itself detoured into uninstrumented code, in which case the
    final node is only the *expected* dispatch target (paper's Figure 6)
    and renderers should drop it.
    """

    kind: Optional[EntryKind]  # None for the root (entry) segment
    start: str
    edges: List[CallEdge]
    gap_before: bool = False
    via_site: Optional[CallSite] = None
    previous_ran: bool = True

    @property
    def nodes(self) -> List[str]:
        result = [self.start]
        for edge in self.edges:
            result.append(edge.callee)
        return result


@dataclass
class DecodedContext:
    """A fully decoded calling context, root-first."""

    segments: List[Segment]

    def nodes(self, gap_marker: Optional[str] = "<?>") -> List[str]:
        """Flatten into a node sequence.

        Adjacent segments share their junction node (the anchor, or the
        recursion callee) which is emitted once. Before a gap segment the
        expected dispatch target is dropped (the dynamic callee was
        something else) and ``gap_marker`` is inserted when not None.
        """
        result: List[str] = []
        for index, segment in enumerate(self.segments):
            names = segment.nodes
            if segment.gap_before:
                if result and not segment.previous_ran:
                    result.pop()  # drop the expected (not actual) target
                if gap_marker is not None:
                    result.append(gap_marker)
                result.extend(names)
            else:
                if result and result[-1] == names[0]:
                    result.extend(names[1:])
                else:
                    result.extend(names)
        return result

    @property
    def edges(self) -> List[CallEdge]:
        """All decoded edges, root-first (gaps contribute nothing)."""
        flat: List[CallEdge] = []
        for segment in self.segments:
            flat.extend(segment.edges)
        return flat

    @property
    def has_gaps(self) -> bool:
        return any(segment.gap_before for segment in self.segments)

    def __str__(self) -> str:
        return " -> ".join(self.nodes())


class ContextDecoder:
    """Decodes full runtime state against a static encoding."""

    def __init__(self, encoding: Encoding):
        self.encoding = encoding
        self.graph = encoding.graph

    # ------------------------------------------------------------------
    def decode(
        self,
        node: str,
        stack: Sequence[StackEntry] = (),
        current_id: int = 0,
    ) -> DecodedContext:
        """Decode ``(stack, current_id)`` observed at ``node``.

        The stack is given bottom-up (as the runtime maintains it); the
        returned segments are root-first.
        """
        segments: List[Segment] = []
        pending = list(stack)
        cur_node, cur_value = node, current_id

        while pending:
            entry = pending.pop()
            if entry.kind is EntryKind.ANCHOR:
                edges = self._piece(cur_node, cur_value, entry.node)
                segments.append(
                    Segment(kind=EntryKind.ANCHOR, start=entry.node, edges=edges)
                )
                cur_node, cur_value = entry.node, entry.saved_id
            elif entry.kind is EntryKind.RECURSION:
                if entry.site is None:
                    raise DecodingError("recursion entry lacks its call site")
                edges = self._piece(cur_node, cur_value, entry.node)
                back_edge = CallEdge(
                    entry.site.caller, entry.node, entry.site.label
                )
                segments.append(
                    Segment(
                        kind=EntryKind.RECURSION,
                        start=entry.node,
                        edges=edges,
                    )
                )
                # The recursive edge connects the outer piece to this one;
                # attribute it to this segment's front.
                segments[-1].edges.insert(0, back_edge)
                segments[-1].start = entry.site.caller
                cur_node, cur_value = entry.site.caller, entry.saved_id
            elif entry.kind is EntryKind.UCP:
                edges = self._piece(cur_node, cur_value, entry.node)
                segments.append(
                    Segment(
                        kind=EntryKind.UCP,
                        start=entry.node,
                        edges=edges,
                        gap_before=True,
                        via_site=entry.site,
                        previous_ran=entry.resume_executed,
                    )
                )
                if entry.resume_node is None:
                    # The outer piece ends at its own start node, which
                    # the *next* stack entry (or the root) determines.
                    cur_node, cur_value = None, entry.saved_id
                else:
                    cur_node, cur_value = entry.resume_node, entry.saved_id
            else:  # pragma: no cover - exhaustive over EntryKind
                raise DecodingError(f"unknown stack entry kind {entry.kind}")

        root_edges = self._piece(cur_node, cur_value, self.graph.entry)
        segments.append(Segment(kind=None, start=self.graph.entry, edges=root_edges))
        segments.reverse()
        return DecodedContext(segments=segments)

    # ------------------------------------------------------------------
    def _piece(
        self, node: Optional[str], value: int, start: str
    ) -> List[CallEdge]:
        """Decode one piece from ``start`` to ``node``.

        ``node`` may be None — a UCP entry whose outer piece ends at its
        own start node (no instrumented activity since the piece began);
        such a piece is empty and its value must be 0.
        """
        if node is None:
            if value != 0:
                raise DecodingError(
                    f"empty piece at {start!r} has nonzero value {value}"
                )
            return []
        return self._decode_piece(node, value, start)

    def _decode_piece(self, node: str, value: int, start: str) -> List[CallEdge]:
        """Decode one non-empty piece from ``start`` to ``node``."""
        encoding = self.encoding
        if isinstance(encoding, AnchoredEncoding):
            anchor = self._governing_anchor(start)
            return encoding.decode_piece(node, value, anchor, stop=start)
        return encoding.decode(node, value, stop=start)

    def _governing_anchor(self, start: str) -> str:
        """Anchor whose territory covers a piece starting at ``start``.

        If ``start`` is itself an anchor, its own territory applies.
        Otherwise (recursion callee / UCP detector) any anchor that
        reaches ``start`` without crossing anchors works: the piece's
        edges are reachable from ``start`` anchor-free, hence lie in that
        anchor's territory, and sub-range disjointness holds per anchor.
        """
        encoding = self.encoding
        assert isinstance(encoding, AnchoredEncoding)
        if encoding.is_anchor(start):
            return start
        reaching = encoding.territories.node_anchors(start)
        if not reaching:
            raise DecodingError(
                f"piece start {start!r} is outside every anchor territory "
                f"(statically unreachable function?)"
            )
        return reaching[0]
