"""Integer-width policies.

Python integers never overflow, but the paper's whole Section 3.2 is about
what happens when addition values and ICC values exceed a machine integer.
A :class:`Width` makes that limit explicit and testable: Algorithm 2 asks
``width.fits(value)`` exactly where the paper says "if CAV[n][r] incurs an
integer overflow".

Encoding IDs are non-negative, so the usable range of a signed w-bit
integer is ``[0, 2**(w-1) - 1]`` — matching the paper's remark that the
64-bit maximum is "around 1.8e19" (i.e. 2**63 - 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Width", "W8", "W16", "W32", "W64", "UNBOUNDED"]


@dataclass(frozen=True)
class Width:
    """A signed two's-complement integer width used for encoding IDs."""

    bits: int

    def __post_init__(self):
        if self.bits < 2:
            raise ValueError("width must be at least 2 bits")

    @property
    def is_bounded(self) -> bool:
        """Whether :attr:`max_value` is an actual integer limit."""
        return True

    @property
    def max_value(self) -> int:
        """Largest encodable ID (``2**(bits-1) - 1``)."""
        return (1 << (self.bits - 1)) - 1

    def fits(self, value: int) -> bool:
        """Whether a non-negative value fits without overflow."""
        return 0 <= value <= self.max_value

    def __str__(self) -> str:
        return f"int{self.bits}"


class _Unbounded(Width):
    """Width that never overflows (Python-native big integers).

    Useful to compute the *true* encoding-space requirement of a program
    (the paper's "max. ID" column in Table 1) before deciding whether
    anchors are needed.
    """

    def __init__(self):
        object.__setattr__(self, "bits", 1 << 30)

    @property
    def is_bounded(self) -> bool:
        return False

    @property
    def max_value(self) -> float:
        """``math.inf``: every comparison against it behaves correctly
        (any finite ID is smaller), and formatting it cannot crash a
        report mid-run. Callers that need an *integer* limit must branch
        on :attr:`is_bounded` instead."""
        return math.inf

    def fits(self, value: int) -> bool:
        return value >= 0

    def __str__(self) -> str:
        return "unbounded"


W8 = Width(8)
W16 = Width(16)
W32 = Width(32)
W64 = Width(64)
UNBOUNDED = _Unbounded()
