"""DeltaPath Algorithm 1: encoding with dynamic dispatch.

The key departure from PCCE: every call site gets a *single* addition
value even when virtual dispatch gives it several target edges, so the
instrumentation at the site is one constant addition (no switch over the
dynamic dispatch result).

Mechanics (paper Section 3.1, Algorithm 1):

* ``CAV[n]`` (candidate addition value) starts at 0 for every node.
* Nodes are visited in topological order; each call site is processed
  exactly once (the first time one of its dispatch edges is reached).
* A site's addition value is ``a = max(CAV[target] for its targets)``;
  afterwards every target's CAV becomes ``ICC[caller] + a``.
* When the last incoming edge of node ``n`` has been processed,
  ``ICC[n] = CAV[n]``; ``ICC[main] = 1``.

The invariant (Figure 2): for any node, the encoding space ``[0, ICC[n])``
splits into disjoint sub-ranges, one per incoming edge — which is what
makes greatest-addition-value-below-residual decoding precise.

When the program has no virtual calls, ``ICC == NC`` and the encoding
coincides with PCCE (asserted by tests).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.widths import UNBOUNDED, Width
from repro.errors import (
    DecodingError,
    EncodingError,
    EncodingOverflowError,
    UnreachableCallerError,
)
from repro.graph.callgraph import CallEdge, CallGraph, CallSite
from repro.graph.scc import remove_recursion
from repro.graph.topo import topological_order

__all__ = ["DeltaPathEncoding", "encode_deltapath"]


@dataclass
class DeltaPathEncoding:
    """Result of Algorithm 1 over an acyclic call graph."""

    graph: CallGraph
    back_edges: List[CallEdge]
    icc: Dict[str, int]
    av: Dict[CallSite, int]

    # ------------------------------------------------------------------
    # Instrumentation queries
    # ------------------------------------------------------------------
    def site_increment(self, site: CallSite) -> int:
        """The single addition value attached to a call site."""
        try:
            return self.av[site]
        except KeyError:
            raise EncodingError(f"call site {site} was not encoded") from None

    def edge_increment(self, edge: CallEdge) -> int:
        """Addition value of an edge == that of its call site."""
        return self.site_increment(edge.site)

    @property
    def max_id(self) -> int:
        """Static maximum encoding ID (``max ICC - 1``), Table 1's column."""
        return max(self.icc.values()) - 1 if self.icc else 0

    # ------------------------------------------------------------------
    # Encoding / decoding (reference semantics)
    # ------------------------------------------------------------------
    def encode_context(self, context: Tuple[CallEdge, ...]) -> int:
        return sum(self.edge_increment(edge) for edge in context)

    def decode(
        self, node: str, value: int, stop: Optional[str] = None
    ) -> List[CallEdge]:
        """Recover the context ending at ``node`` for encoding ``value``.

        ``stop`` is the node the context is known to begin at; it defaults
        to the entry. Decoding recursion pieces passes the recursion
        target here (the piece began with ID 0 at that node).
        """
        if node not in self.graph:
            raise DecodingError(f"unknown node {node!r}")
        start = stop if stop is not None else self.graph.entry
        if start not in self.graph:
            raise DecodingError(f"unknown start node {start!r}")
        path: List[CallEdge] = []
        current = node
        residual = value
        while current != start:
            best: Optional[CallEdge] = None
            best_av = -1
            for edge in self.graph.in_edges(current):
                if edge.caller != start and self.icc.get(edge.caller, 0) == 0:
                    # Unreachable caller: its sub-range [av, av + ICC) is
                    # empty, so no valid residual selects this edge — but
                    # its addition value can tie with a reachable edge's,
                    # and first-wins tie-breaking must not pick it.
                    continue
                av = self.av[edge.site]
                if best_av < av <= residual:
                    best = edge
                    best_av = av
            if best is None:
                if node not in self.graph.reachable_from(start):
                    raise DecodingError(
                        f"cannot decode a context of {node!r}: it is "
                        f"unreachable from {start!r}, so no valid context "
                        f"exists"
                    )
                raise DecodingError(
                    f"no incoming edge of {current!r} matches residual "
                    f"{residual}"
                )
            path.append(best)
            residual -= best_av
            current = best.caller
        if residual != 0:
            raise DecodingError(
                f"decoding reached {start!r} with nonzero residual {residual}"
            )
        path.reverse()
        return path


def encode_deltapath(
    graph: CallGraph,
    *args,
    width: Width = UNBOUNDED,
    edge_priority: Optional[Callable[[CallEdge], float]] = None,
    strict_reachability: bool = False,
) -> DeltaPathEncoding:
    """Run Algorithm 1. Back edges (recursion) are removed first.

    All options are keyword-only, shared with :func:`encode_pcce` and
    :func:`encode_anchored`:

    * ``width`` — integer width the encoding must fit; Algorithm 1 has
      no anchors to fall back on, so an overflow raises
      :class:`~repro.errors.EncodingOverflowError` (use
      :func:`encode_anchored` for bounded widths on large graphs).
    * ``edge_priority`` orders each node's incoming edges before
      processing (higher first). The invariant holds for any order; the
      order only decides *which* edges get the small (often zero)
      addition values — the paper's Section 8 hot-edge optimization
      gives hot edges priority so they become encoding-free.
    * ``strict_reachability`` — raise
      :class:`~repro.errors.UnreachableCallerError` for call sites whose
      caller the entry cannot reach, instead of silently assigning them
      a zero increment.
    """
    if args:
        warnings.warn(
            "positional arguments to encode_deltapath are deprecated; "
            "use encode_deltapath(graph, edge_priority=...)",
            DeprecationWarning,
            stacklevel=2,
        )
        if len(args) > 1:
            raise TypeError(
                f"encode_deltapath takes one positional argument "
                f"({1 + len(args)} given)"
            )
        if edge_priority is None:
            edge_priority = args[0]
    acyclic, removed = remove_recursion(graph)
    cav: Dict[str, int] = {n: 0 for n in acyclic.nodes}
    icc: Dict[str, int] = {}
    av: Dict[CallSite, int] = {}
    processed: Set[CallSite] = set()
    unreachable: List[CallSite] = []

    entry = acyclic.entry
    reachable = acyclic.reachable_from(entry)
    icc[entry] = 1

    def calculate_increment(site: CallSite) -> int:
        """Paper's CalculateIncrement: max of target CAVs, then update."""
        edges = acyclic.site_targets(site)
        a = 0
        for edge in edges:
            if cav[edge.callee] > a:
                a = cav[edge.callee]
        caller_icc = icc[site.caller]
        value = caller_icc + a
        if not width.fits(value):
            raise EncodingOverflowError(
                f"Algorithm 1 overflowed width {width} at site {site} "
                f"(candidate CAV {value}); use encode_anchored for "
                f"width-bounded encoding"
            )
        for edge in edges:
            cav[edge.callee] = value
        return a

    for node in topological_order(acyclic):
        incoming = acyclic.in_edges(node)
        if edge_priority is not None:
            incoming = sorted(incoming, key=edge_priority, reverse=True)
        for edge in incoming:
            site = edge.site
            if site in processed:
                continue
            processed.add(site)
            if site.caller not in reachable:
                # Caller unreachable from the entry: the site can never
                # execute. All encoders treat this case uniformly — a
                # zero increment, and no CAV updates so the dead site
                # does not inflate the reachable encoding space.
                av[site] = 0
                unreachable.append(site)
                continue
            av[site] = calculate_increment(site)
        if node != entry:
            icc[node] = cav[node]

    if strict_reachability and unreachable:
        raise UnreachableCallerError(
            f"{len(unreachable)} call site(s) have callers unreachable "
            f"from {entry!r}: {', '.join(str(s) for s in unreachable[:5])}",
            sites=unreachable,
        )
    return DeltaPathEncoding(graph=acyclic, back_edges=removed, icc=icc, av=av)
