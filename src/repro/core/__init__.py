"""The paper's primary contribution: DeltaPath encoding algorithms."""

from repro.core.anchored import AnchoredEncoding, encode_anchored
from repro.core.anchorplan import suggest_anchors
from repro.core.hybrid import (
    HybridDecoder,
    HybridPlan,
    HybridProbe,
    build_hybrid_plan,
    trunk_from_profile,
)
from repro.core.decoder import ContextDecoder, DecodedContext, Segment
from repro.core.deltapath import DeltaPathEncoding, encode_deltapath
from repro.core.pcce import PCCEEncoding, encode_pcce
from repro.core.pruned import RelativeContextLog, prune_for_targets
from repro.core.recursion import RecursionPlan, plan_recursion
from repro.core.selective import (
    SelectionResult,
    project_interesting,
    reattach_orphans,
)
from repro.core.sid import SidTable, compute_sids
from repro.core.stackmodel import EntryKind, StackEntry, pack_entry, unpack_entry
from repro.core.territories import Territories, identify_territories
from repro.core.verify import VerificationReport, verify_encoding
from repro.core.visualize import encoding_dot
from repro.core.widths import UNBOUNDED, W8, W16, W32, W64, Width

__all__ = [
    "AnchoredEncoding",
    "ContextDecoder",
    "DecodedContext",
    "DeltaPathEncoding",
    "EntryKind",
    "HybridDecoder",
    "HybridPlan",
    "HybridProbe",
    "PCCEEncoding",
    "RecursionPlan",
    "RelativeContextLog",
    "Segment",
    "SelectionResult",
    "SidTable",
    "StackEntry",
    "Territories",
    "UNBOUNDED",
    "VerificationReport",
    "W16",
    "W32",
    "W64",
    "W8",
    "Width",
    "compute_sids",
    "encode_anchored",
    "encode_deltapath",
    "encode_pcce",
    "encoding_dot",
    "build_hybrid_plan",
    "prune_for_targets",
    "trunk_from_profile",
    "identify_territories",
    "pack_entry",
    "plan_recursion",
    "project_interesting",
    "reattach_orphans",
    "unpack_entry",
    "suggest_anchors",
    "verify_encoding",
]
