"""Anchor pre-seeding: cutting Algorithm 2's restart loop.

Algorithm 2 discovers anchors one overflow at a time, re-running the
whole static analysis after each (`goto again`, paper Line 16) — on our
synthetic xml.validation at 24-bit width that is 54 restarts. The
overflow points are largely predictable from the *unbounded* context
counts, which cost one cheap pass: wherever NC crosses the width budget,
an anchor will be needed near the crossing.

:func:`suggest_anchors` runs that pass and returns callers of the
crossing edges; feeding them to ``encode_anchored(initial_anchors=...)``
typically collapses the restart count to a handful. This is an
engineering extension beyond the paper (documented in DESIGN.md §7);
Algorithm 2's own overflow handling still runs afterwards, so
correctness never depends on the heuristic's quality — a bad seed set
only costs extra anchors, never a wrong encoding (property-tested).

The budget uses a safety factor: NC ignores ICC inflation from virtual
sites and the accumulation across a node's incoming edges, so seeds are
placed a little before the true crossing.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.core.widths import Width
from repro.graph.callgraph import CallGraph
from repro.graph.scc import remove_recursion
from repro.graph.topo import topological_order

__all__ = ["suggest_anchors"]


def suggest_anchors(
    graph: CallGraph, width: Width, safety_factor: int = 8
) -> List[str]:
    """Predict anchor locations for ``width`` from unbounded NC growth.

    One topological pass, restarting the count below each suggested
    anchor (mirroring what the anchor will do to the encoding space):

    * ``budget = width.max_value // safety_factor``
    * ``count[n] = Σ count[caller]`` over incoming edges, where an
      *anchored* caller contributes 1;
    * when the sum crosses the budget, every caller contributing more
      than an equal share is suggested as an anchor and the node's count
      restarts from the anchored contributions.
    """
    acyclic, _removed = remove_recursion(graph)
    if not width.is_bounded:
        return []  # unbounded width never overflows: nothing to seed
    budget = max(width.max_value // safety_factor, 1)

    counts: Dict[str, int] = {acyclic.entry: 1}
    anchors: List[str] = []
    anchor_set: Set[str] = set()

    for node in topological_order(acyclic):
        if node == acyclic.entry:
            continue
        incoming = acyclic.in_edges(node)
        if not incoming:
            counts[node] = 0
            continue

        def contribution(caller: str) -> int:
            if caller in anchor_set:
                return 1
            return counts.get(caller, 0)

        total = sum(contribution(edge.caller) for edge in incoming)
        if total > budget:
            # Anchor the heavy callers; their pieces restart at 1.
            share = max(budget // max(len(incoming), 1), 1)
            for edge in incoming:
                caller = edge.caller
                if caller in anchor_set:
                    continue
                if contribution(caller) > share:
                    anchor_set.add(caller)
                    anchors.append(caller)
            total = sum(contribution(edge.caller) for edge in incoming)
        counts[node] = max(total, 1)
    return anchors
