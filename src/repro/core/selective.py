"""Flexible (selective) encoding — paper Section 4.2.

Users often care about application functions only; JVM/JDK internals are
"black boxes". Selective encoding removes the uninteresting components
from the call graph *before* running Algorithm 2 and relies on call path
tracking at runtime to detect the resulting unexpected call paths, exactly
the way dynamically loaded classes are handled. The more components are
excluded, the less instrumentation executes.

:func:`project_interesting` builds the reduced graph. Note a subtlety the
paper's Figure 7 illustrates: after excluding JDK nodes, application
functions that were only reachable *through* JDK code (G in the figure)
keep their nodes but lose their incoming edges — they become statically
entry-unreachable, and every arrival at them is a (handled) hazardous UCP.
:func:`reattach_orphans` optionally adds synthetic entry edges so such
functions still carry decodable encodings for their downstream calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.graph.callgraph import CallGraph

__all__ = ["SelectionResult", "project_interesting", "reattach_orphans"]

#: Label used for synthetic edges added by :func:`reattach_orphans`.
SYNTHETIC_LABEL = "<synthetic-entry>"


@dataclass
class SelectionResult:
    """The projected graph plus bookkeeping about what was removed."""

    graph: CallGraph
    kept: List[str]
    excluded: List[str]
    #: Application nodes that lost all incoming edges in the projection
    #: (reachable only through excluded components).
    orphans: List[str]


def project_interesting(
    graph: CallGraph,
    interesting: Callable[[str], bool],
    entry: Optional[str] = None,
) -> SelectionResult:
    """Project ``graph`` onto the nodes ``interesting`` accepts.

    The entry is always kept. Edges with an excluded endpoint vanish; the
    runtime's call path tracking compensates (Section 4.2).
    """
    entry_node = entry if entry is not None else graph.entry
    kept = [n for n in graph.nodes if n == entry_node or interesting(n)]
    kept_set = set(kept)
    excluded = [n for n in graph.nodes if n not in kept_set]
    projected = graph.subgraph(kept, entry=entry_node)

    orphans = []
    for node in projected.nodes:
        if node == projected.entry:
            continue
        if not projected.in_edges(node) and graph.in_edges(node):
            orphans.append(node)
    return SelectionResult(
        graph=projected, kept=kept, excluded=excluded, orphans=orphans
    )


def reattach_orphans(selection: SelectionResult) -> CallGraph:
    """Return a copy of the projected graph with synthetic entry edges to
    every orphan, so downstream encoding spaces remain rooted.

    The synthetic edges never execute; they only give orphaned application
    components a position in the encoding space. Runtime arrivals at an
    orphan always come through a hazardous UCP, whose reset makes the
    synthetic edge's addition value irrelevant (it is 0 or more but the
    piece is decoded from the orphan itself).
    """
    graph = selection.graph.copy()
    for orphan in selection.orphans:
        graph.add_edge(graph.entry, orphan, (SYNTHETIC_LABEL, orphan))
    return graph
