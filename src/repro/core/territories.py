"""Anchor territories (paper Section 3.2, function IdentifyTerritories).

An *anchor node* divides long calling contexts into pieces. The territory
of an anchor ``r`` is everything reachable from ``r`` by a bounded
depth-first search that *retreats at other anchor nodes*: a DFS from ``r``
visits a node's outgoing edges only if the node is ``r`` itself or a
non-anchor. Other anchors encountered are included as boundary nodes (the
edges leading to them belong to the territory — the addition on an edge
entering an anchor executes before the push/reset at the anchor's entry).

From the territories we derive:

* ``nanchors[n]`` — anchors whose territory contains node ``n``;
* ``eanchors[e]`` — anchors whose territory contains edge ``e``.

These sets index the per-anchor CAV/ICC tables of Algorithm 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.errors import GraphError
from repro.graph.callgraph import CallEdge, CallGraph

__all__ = ["Territories", "identify_territories"]


@dataclass
class Territories:
    """Anchor reachability sets for a fixed anchor set."""

    anchors: List[str]
    nanchors: Dict[str, List[str]]
    eanchors: Dict[CallEdge, List[str]]

    def node_anchors(self, node: str) -> List[str]:
        """Anchors that can reach ``node`` within their territory."""
        return self.nanchors.get(node, [])

    def edge_anchors(self, edge: CallEdge) -> List[str]:
        """Anchors that can reach ``edge`` within their territory."""
        return self.eanchors.get(edge, [])

    def territory_nodes(self, anchor: str) -> List[str]:
        """All nodes in one anchor's territory (incl. boundary anchors)."""
        return [n for n, rs in self.nanchors.items() if anchor in rs]

    def territory_edges(self, anchor: str) -> List[CallEdge]:
        return [e for e, rs in self.eanchors.items() if anchor in rs]


def _bounded_dfs(
    graph: CallGraph, root: str, anchors: Set[str]
) -> Tuple[List[str], List[CallEdge]]:
    """Paper's BoundedDFS: traverse from ``root``, retreat at anchors.

    Returns (visited nodes, visited edges), deterministic order. Boundary
    anchors are visited (their incoming edges are part of the territory)
    but never expanded.
    """
    visited_nodes: Dict[str, None] = {root: None}
    visited_edges: Dict[CallEdge, None] = {}
    stack = [root]
    while stack:
        node = stack.pop()
        for edge in graph.out_edges(node):
            if edge not in visited_edges:
                visited_edges[edge] = None
            callee = edge.callee
            if callee in visited_nodes:
                continue
            visited_nodes[callee] = None
            if callee not in anchors:
                stack.append(callee)
    return list(visited_nodes), list(visited_edges)


def identify_territories(
    graph: CallGraph, anchors: Iterable[str]
) -> Territories:
    """Compute ``nanchors`` / ``eanchors`` for the given anchor set.

    The entry node must be among the anchors (it always is in
    Algorithm 2: ``An`` starts as ``{main}``).
    """
    anchor_list = list(dict.fromkeys(anchors))
    anchor_set = set(anchor_list)
    if graph.entry not in anchor_set:
        raise GraphError(
            f"entry {graph.entry!r} must be an anchor (got {anchor_list})"
        )
    for anchor in anchor_list:
        if anchor not in graph:
            raise GraphError(f"anchor {anchor!r} is not a node")

    nanchors: Dict[str, List[str]] = {}
    eanchors: Dict[CallEdge, List[str]] = {}
    for anchor in anchor_list:
        nodes, edges = _bounded_dfs(graph, anchor, anchor_set)
        for node in nodes:
            nanchors.setdefault(node, []).append(anchor)
        for edge in edges:
            eanchors.setdefault(edge, []).append(anchor)
    return Territories(anchors=anchor_list, nanchors=nanchors, eanchors=eanchors)
