"""PCCE: precise calling context encoding (Sumner et al.), the baseline.

This is the Section-2 background algorithm DeltaPath builds on. It assigns
an addition value to every call *edge* in two steps:

1. ``NC[main] = 1``; ``NC[n]`` = sum of NC over incoming edges' callers.
2. Per node, the first incoming edge gets addition value 0; each later
   edge gets the sum of the NCs of the callers of the previously processed
   edges.

At runtime ``ID += AV`` before the call and ``ID -= AV`` after, so the pair
``(ID, current function)`` identifies the context uniquely and decodes by
repeatedly taking the incoming edge with the greatest addition value not
exceeding the ID (Figure 1's walkthrough).

PCCE's limitation — the reason DeltaPath exists — is visible here: addition
values are *per edge*, so a virtual call site whose dispatch targets got
different values cannot be instrumented with one constant.
:meth:`PCCEEncoding.site_increment` surfaces the conflict explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.widths import UNBOUNDED, Width
from repro.errors import (
    DecodingError,
    EncodingError,
    EncodingOverflowError,
    UnreachableCallerError,
)
from repro.graph.callgraph import CallEdge, CallGraph, CallSite
from repro.graph.contexts import context_counts
from repro.graph.scc import remove_recursion
from repro.graph.topo import topological_order

__all__ = ["PCCEEncoding", "encode_pcce"]


@dataclass
class PCCEEncoding:
    """Result of running PCCE over an acyclic call graph."""

    graph: CallGraph
    back_edges: List[CallEdge]
    nc: Dict[str, int]
    av: Dict[CallEdge, int]

    # ------------------------------------------------------------------
    # Instrumentation queries
    # ------------------------------------------------------------------
    def edge_increment(self, edge: CallEdge) -> int:
        """Addition value of one call edge."""
        try:
            return self.av[edge]
        except KeyError:
            raise EncodingError(f"edge {edge} was not encoded") from None

    def site_increment(self, site: CallSite) -> int:
        """Single addition value for a call site, if one exists.

        Raises :class:`EncodingError` when the site is virtual and its
        dispatch targets received different addition values — exactly the
        conflict the paper describes in Section 3.1 ("a call site may have
        conflicted addition values due to the multiple dispatch targets").
        """
        edges = self.graph.site_targets(site)
        values = {self.av[e] for e in edges}
        if len(values) != 1:
            raise EncodingError(
                f"virtual call site {site} has conflicting PCCE addition "
                f"values {sorted(values)}; PCCE cannot instrument it with "
                f"a single constant"
            )
        return values.pop()

    def has_site_conflicts(self) -> bool:
        """True when some virtual site has conflicting addition values."""
        for site in self.graph.virtual_sites:
            edges = self.graph.site_targets(site)
            if len({self.av[e] for e in edges}) != 1:
                return True
        return False

    @property
    def max_id(self) -> int:
        """Static maximum encoding ID: the largest encoding space needed.

        A context of node ``n`` encodes into ``[0, NC[n])``, so the
        maximum possible ID is ``max_n NC[n] - 1``.
        """
        return max(self.nc.values()) - 1 if self.nc else 0

    # ------------------------------------------------------------------
    # Encoding / decoding (reference semantics, used by tests)
    # ------------------------------------------------------------------
    def encode_context(self, context: Tuple[CallEdge, ...]) -> int:
        """Sum of addition values along a context (the runtime's ID)."""
        return sum(self.edge_increment(edge) for edge in context)

    def decode(self, node: str, value: int, stop: str | None = None) -> List[CallEdge]:
        """Recover the context ending at ``node`` for encoding ``value``.

        Walks bottom-up: at each step take the incoming edge whose
        addition value is the greatest not exceeding the residual value.
        ``stop`` overrides the start node (used for recursion pieces that
        began with a reset ID at the recursion target).
        """
        if node not in self.graph:
            raise DecodingError(f"unknown node {node!r}")
        start = stop if stop is not None else self.graph.entry
        if start not in self.graph:
            raise DecodingError(f"unknown start node {start!r}")
        path: List[CallEdge] = []
        current = node
        residual = value
        while current != start:
            best: CallEdge | None = None
            best_av = -1
            for edge in self.graph.in_edges(current):
                if edge.caller != start and self.nc.get(edge.caller, 0) == 0:
                    # Unreachable caller: empty sub-range [av, av + NC);
                    # skip so an addition-value tie with a reachable edge
                    # cannot make first-wins pick the dead edge.
                    continue
                av = self.av[edge]
                if best_av < av <= residual:
                    best = edge
                    best_av = av
            if best is None:
                if node not in self.graph.reachable_from(start):
                    raise DecodingError(
                        f"cannot decode a context of {node!r}: it is "
                        f"unreachable from {start!r}, so no valid context "
                        f"exists"
                    )
                raise DecodingError(
                    f"no incoming edge of {current!r} matches residual "
                    f"{residual} (corrupt encoding?)"
                )
            path.append(best)
            residual -= best_av
            current = best.caller
        if residual != 0:
            raise DecodingError(
                f"decoding reached {start!r} with nonzero residual {residual}"
            )
        path.reverse()
        return path


def encode_pcce(
    graph: CallGraph,
    *,
    width: Width = UNBOUNDED,
    edge_priority: Optional[Callable[[CallEdge], float]] = None,
    strict_reachability: bool = False,
) -> PCCEEncoding:
    """Run the PCCE algorithm; back edges are removed first (recursion).

    All options are keyword-only, shared with :func:`encode_deltapath`
    and :func:`encode_anchored`:

    * ``width`` — integer width the encoding must fit. PCCE has no
      anchor fallback, so ``NC`` exceeding the width raises
      :class:`~repro.errors.EncodingOverflowError`.
    * ``edge_priority`` orders each node's incoming edges before
      addition values are assigned (higher first), so prioritized edges
      receive the small/zero values.
    * ``strict_reachability`` — raise
      :class:`~repro.errors.UnreachableCallerError` for call edges whose
      caller the entry cannot reach, instead of silently assigning them
      a zero addition value.
    """
    acyclic, removed = remove_recursion(graph)
    nc = context_counts(acyclic)
    av: Dict[CallEdge, int] = {}
    unreachable: List[CallSite] = []
    for node in topological_order(acyclic):
        if not width.fits(nc[node]):
            raise EncodingOverflowError(
                f"PCCE overflowed width {width} at {node!r} "
                f"(NC {nc[node]}); use encode_anchored for width-bounded "
                f"encoding"
            )
        running = 0
        incoming = acyclic.in_edges(node)
        if edge_priority is not None:
            incoming = sorted(incoming, key=edge_priority, reverse=True)
        for edge in incoming:
            if nc[edge.caller] == 0:
                # Unreachable caller: uniform zero increment, consumes
                # no encoding-space slot (NC contribution is 0 anyway).
                av[edge] = 0
                if edge.site not in unreachable:
                    unreachable.append(edge.site)
                continue
            av[edge] = running
            running += nc[edge.caller]
    if strict_reachability and unreachable:
        raise UnreachableCallerError(
            f"{len(unreachable)} call site(s) have callers unreachable "
            f"from {acyclic.entry!r}: "
            f"{', '.join(str(s) for s in unreachable[:5])}",
            sites=unreachable,
        )
    return PCCEEncoding(graph=acyclic, back_edges=removed, nc=nc, av=av)
