"""PCCE: precise calling context encoding (Sumner et al.), the baseline.

This is the Section-2 background algorithm DeltaPath builds on. It assigns
an addition value to every call *edge* in two steps:

1. ``NC[main] = 1``; ``NC[n]`` = sum of NC over incoming edges' callers.
2. Per node, the first incoming edge gets addition value 0; each later
   edge gets the sum of the NCs of the callers of the previously processed
   edges.

At runtime ``ID += AV`` before the call and ``ID -= AV`` after, so the pair
``(ID, current function)`` identifies the context uniquely and decodes by
repeatedly taking the incoming edge with the greatest addition value not
exceeding the ID (Figure 1's walkthrough).

PCCE's limitation — the reason DeltaPath exists — is visible here: addition
values are *per edge*, so a virtual call site whose dispatch targets got
different values cannot be instrumented with one constant.
:meth:`PCCEEncoding.site_increment` surfaces the conflict explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import DecodingError, EncodingError
from repro.graph.callgraph import CallEdge, CallGraph, CallSite
from repro.graph.contexts import context_counts
from repro.graph.scc import remove_recursion
from repro.graph.topo import topological_order

__all__ = ["PCCEEncoding", "encode_pcce"]


@dataclass
class PCCEEncoding:
    """Result of running PCCE over an acyclic call graph."""

    graph: CallGraph
    back_edges: List[CallEdge]
    nc: Dict[str, int]
    av: Dict[CallEdge, int]

    # ------------------------------------------------------------------
    # Instrumentation queries
    # ------------------------------------------------------------------
    def edge_increment(self, edge: CallEdge) -> int:
        """Addition value of one call edge."""
        try:
            return self.av[edge]
        except KeyError:
            raise EncodingError(f"edge {edge} was not encoded") from None

    def site_increment(self, site: CallSite) -> int:
        """Single addition value for a call site, if one exists.

        Raises :class:`EncodingError` when the site is virtual and its
        dispatch targets received different addition values — exactly the
        conflict the paper describes in Section 3.1 ("a call site may have
        conflicted addition values due to the multiple dispatch targets").
        """
        edges = self.graph.site_targets(site)
        values = {self.av[e] for e in edges}
        if len(values) != 1:
            raise EncodingError(
                f"virtual call site {site} has conflicting PCCE addition "
                f"values {sorted(values)}; PCCE cannot instrument it with "
                f"a single constant"
            )
        return values.pop()

    def has_site_conflicts(self) -> bool:
        """True when some virtual site has conflicting addition values."""
        for site in self.graph.virtual_sites:
            edges = self.graph.site_targets(site)
            if len({self.av[e] for e in edges}) != 1:
                return True
        return False

    @property
    def max_id(self) -> int:
        """Static maximum encoding ID: the largest encoding space needed.

        A context of node ``n`` encodes into ``[0, NC[n])``, so the
        maximum possible ID is ``max_n NC[n] - 1``.
        """
        return max(self.nc.values()) - 1 if self.nc else 0

    # ------------------------------------------------------------------
    # Encoding / decoding (reference semantics, used by tests)
    # ------------------------------------------------------------------
    def encode_context(self, context: Tuple[CallEdge, ...]) -> int:
        """Sum of addition values along a context (the runtime's ID)."""
        return sum(self.edge_increment(edge) for edge in context)

    def decode(self, node: str, value: int, stop: str | None = None) -> List[CallEdge]:
        """Recover the context ending at ``node`` for encoding ``value``.

        Walks bottom-up: at each step take the incoming edge whose
        addition value is the greatest not exceeding the residual value.
        ``stop`` overrides the start node (used for recursion pieces that
        began with a reset ID at the recursion target).
        """
        if node not in self.graph:
            raise DecodingError(f"unknown node {node!r}")
        start = stop if stop is not None else self.graph.entry
        path: List[CallEdge] = []
        current = node
        residual = value
        while current != start:
            best: CallEdge | None = None
            best_av = -1
            for edge in self.graph.in_edges(current):
                av = self.av[edge]
                if best_av < av <= residual:
                    best = edge
                    best_av = av
            if best is None:
                raise DecodingError(
                    f"no incoming edge of {current!r} matches residual "
                    f"{residual} (corrupt encoding?)"
                )
            path.append(best)
            residual -= best_av
            current = best.caller
        if residual != 0:
            raise DecodingError(
                f"decoding reached {start!r} with nonzero residual {residual}"
            )
        path.reverse()
        return path


def encode_pcce(graph: CallGraph) -> PCCEEncoding:
    """Run the PCCE algorithm; back edges are removed first (recursion)."""
    acyclic, removed = remove_recursion(graph)
    nc = context_counts(acyclic)
    av: Dict[CallEdge, int] = {}
    for node in topological_order(acyclic):
        running = 0
        for edge in acyclic.in_edges(node):
            av[edge] = running
            running += nc[edge.caller]
    return PCCEEncoding(graph=acyclic, back_edges=removed, nc=nc, av=av)
