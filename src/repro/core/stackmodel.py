"""Runtime encoding-stack entries.

DeltaPath's runtime state is ``(stack, current ID)``. Three events push an
entry and reset the ID to zero (paper Sections 3.2 and 4.1):

* invoking an **anchor** node,
* taking a **recursive** (back-edge) call,
* detecting a hazardous **UCP** at an instrumented function's entry.

The paper packs the entry type into two bits borrowed from the method
identifier integer; we keep typed records carrying the same information
(see :func:`pack_entry` / :func:`unpack_entry` for the 2-bit encoding the
paper describes, provided to demonstrate representability).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

from repro.errors import RuntimeEncodingError
from repro.graph.callgraph import CallSite

__all__ = ["EntryKind", "StackEntry", "pack_entry", "unpack_entry"]


class EntryKind(enum.IntEnum):
    """Why an encoding-stack entry was pushed (the paper's 2 type bits)."""

    ANCHOR = 0
    RECURSION = 1
    UCP = 2


@dataclass(frozen=True)
class StackEntry:
    """One element of the runtime encoding stack.

    Attributes
    ----------
    kind:
        Why the entry was pushed.
    node:
        * ANCHOR — the anchor node invoked;
        * RECURSION — the callee of the recursive call (where the new
          piece begins);
        * UCP — the instrumented function that detected the UCP.
    saved_id:
        The encoding ID at push time (restored on pop).
    site:
        * RECURSION — the back-edge call site taken;
        * UCP — the last instrumented call site (whose expected-SID
          failed the check); None for ANCHOR entries.
    expected_sid:
        UCP entries only: the expected SID that mismatched.
    resume_node:
        UCP entries only: the node whose (piece-relative) encoding value
        the saved ID represents — where decoding of the outer piece
        resumes. This is either the nearest *executing* instrumented
        function, or the expected dispatch target of an instrumented call
        that detoured into uninstrumented code before reaching it.
        ``None`` means the outer piece ends at its own start node.
    resume_executed:
        UCP entries only: whether ``resume_node`` actually executed.
        False means the call at the last instrumented site went into
        uninstrumented code, so the expected target never ran and should
        not be displayed as part of the context (paper's Figure 6:
        decoding ABXE must not claim D ran).
    """

    kind: EntryKind
    node: str
    saved_id: int
    site: Optional[CallSite] = None
    expected_sid: Optional[int] = None
    resume_node: Optional[str] = None
    resume_executed: bool = True

    def __hash__(self) -> int:
        # Entries are hashed constantly — every decode-cache lookup and
        # every batch-grouping pass hashes whole stacks of them — so the
        # field-tuple hash is computed once and pinned on the frozen
        # instance.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((
                self.kind, self.node, self.saved_id, self.site,
                self.expected_sid, self.resume_node, self.resume_executed,
            ))
            object.__setattr__(self, "_hash", cached)
        return cached


def pack_entry(
    entry: StackEntry, method_ids: Dict[str, int], id_bits: int = 30
) -> Tuple[int, int]:
    """Pack an entry into two machine words, as the paper's footnote 2
    describes: two bits of the method-identifier word carry the kind.

    Returns ``(tagged_method_word, saved_id)``. Site/SID details are
    dropped — the paper's runtime also keeps only these two words per
    entry and relies on redundant static information during decoding.
    """
    method_id = method_ids[entry.node]
    if method_id >= (1 << id_bits):
        raise RuntimeEncodingError(
            f"method id {method_id} needs more than {id_bits} bits"
        )
    return (int(entry.kind) << id_bits) | method_id, entry.saved_id


def unpack_entry(
    tagged_word: int,
    saved_id: int,
    method_names: Dict[int, str],
    id_bits: int = 30,
) -> StackEntry:
    """Inverse of :func:`pack_entry` (site/SID details are not recoverable)."""
    kind = EntryKind(tagged_word >> id_bits)
    method_id = tagged_word & ((1 << id_bits) - 1)
    try:
        node = method_names[method_id]
    except KeyError:
        raise RuntimeEncodingError(f"unknown method id {method_id}") from None
    return StackEntry(kind=kind, node=node, saved_id=saved_id)
