"""DeltaPath Algorithm 2: encoding that resolves encoding-space explosion.

The number of calling contexts grows exponentially with call-graph size,
so the addition values of Algorithm 1 can overflow any machine integer.
Algorithm 2 picks *anchor nodes* that cut long contexts into pieces, each
encodable within a fixed :class:`~repro.core.widths.Width`:

* ``An`` starts as ``{main}``. Whenever computing a candidate addition
  value would overflow while processing an edge ``<p, n, l>``, ``p`` is
  added to ``An`` and the whole static analysis restarts.
* CAV and ICC become two-dimensional — indexed by (node, anchor) — scoped
  by anchor territories (:mod:`repro.core.territories`), because several
  anchors' territories overlap and a call site needs one addition value
  valid relative to every anchor that can reach it.
* At runtime, entering an anchor pushes ``(anchor id, current ID)`` and
  resets the ID to 0; returning pops. Each stack level plus the final ID
  encodes one piece of the context.

Extension beyond the paper (documented in DESIGN.md): if an overflow
recurs on an edge whose caller is *already* an anchor, the paper's Line 15
would loop forever. We then anchor all non-anchor callers of the target
node's incoming edges; if there is nothing left to anchor the width is
genuinely too small for the graph's in-degrees and we raise
:class:`~repro.errors.EncodingOverflowError`.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro import obs
from repro.core.territories import Territories, identify_territories
from repro.core.widths import UNBOUNDED, Width
from repro.errors import (
    DecodingError,
    EncodingError,
    EncodingOverflowError,
    UnreachableCallerError,
)
from repro.graph.callgraph import CallEdge, CallGraph, CallSite
from repro.graph.scc import remove_recursion
from repro.graph.topo import topological_order

__all__ = ["AnchoredEncoding", "encode_anchored"]


class _Overflow(Exception):
    """Internal signal: processing this site overflowed (paper's -1)."""

    def __init__(self, edge: CallEdge):
        super().__init__(str(edge))
        self.edge = edge


@dataclass
class AnchoredEncoding:
    """Result of Algorithm 2 for a specific integer width."""

    graph: CallGraph
    back_edges: List[CallEdge]
    width: Width
    anchors: List[str]
    territories: Territories
    #: ICC[(node, anchor)] — encoding-space bound for non-anchor nodes;
    #: for anchor nodes only (a, a) -> 1 is present (paper Line 21).
    icc: Dict[Tuple[str, str], int]
    #: Final CAV table: upper bound of the encoding value observable *at
    #: the entry of* node n relative to anchor r, including anchor nodes
    #: (used to verify pushed IDs stay in range).
    bound: Dict[Tuple[str, str], int]
    av: Dict[CallSite, int]
    restarts: int

    # ------------------------------------------------------------------
    # Instrumentation queries
    # ------------------------------------------------------------------
    def site_increment(self, site: CallSite) -> int:
        try:
            return self.av[site]
        except KeyError:
            raise EncodingError(f"call site {site} was not encoded") from None

    def edge_increment(self, edge: CallEdge) -> int:
        return self.site_increment(edge.site)

    def is_anchor(self, node: str) -> bool:
        return node in self._anchor_set

    @property
    def _anchor_set(self) -> Set[str]:
        cached = getattr(self, "_anchor_set_cache", None)
        if cached is None:
            cached = set(self.anchors)
            object.__setattr__(self, "_anchor_set_cache", cached)
        return cached

    @property
    def max_id(self) -> int:
        """Largest encoding value any single piece can take (static)."""
        best = 1
        for value in self.icc.values():
            if value > best:
                best = value
        for value in self.bound.values():
            if value > best:
                best = value
        return best - 1

    @property
    def extra_anchors(self) -> List[str]:
        """Anchors beyond the entry (the count Table 1 reports: 6 / 7)."""
        return [a for a in self.anchors if a != self.graph.entry]

    # ------------------------------------------------------------------
    # Reference encoding / decoding of whole contexts
    # ------------------------------------------------------------------
    def encode_context(
        self, context: Tuple[CallEdge, ...]
    ) -> Tuple[Tuple[Tuple[str, int], ...], int]:
        """Encode a full context into ``(stack, current_id)``.

        The stack holds ``(anchor, saved_id)`` pairs bottom-up, exactly
        what the runtime maintains: invoking an anchor pushes the current
        ID (after the incoming edge's addition) and resets to 0.
        """
        stack: List[Tuple[str, int]] = []
        current = 0
        for edge in context:
            current += self.site_increment(edge.site)
            if edge.callee in self._anchor_set:
                stack.append((edge.callee, current))
                current = 0
        return tuple(stack), current

    def decode(
        self, node: str, value: int, stop: Optional[str] = None
    ) -> List[CallEdge]:
        """Decode the current piece — the :class:`Encoding`-protocol form.

        With an anchored encoding a bare ``(node, value)`` pair only
        identifies the piece since the last anchor entry; this decodes
        that piece from ``stop`` (default: the entry, i.e. a context that
        never entered an extra anchor). Use :meth:`decode_context` with
        the runtime's anchor stack to recover a full context.
        """
        if node not in self.graph:
            raise DecodingError(f"unknown node {node!r}")
        start = stop if stop is not None else self.graph.entry
        if start not in self.graph:
            raise DecodingError(f"unknown start node {start!r}")
        if start in self._anchor_set:
            anchor = start
        else:
            reaching = self.territories.node_anchors(start)
            if not reaching:
                raise DecodingError(
                    f"cannot decode at {start!r}: no anchor territory "
                    f"covers it (unreachable from {self.graph.entry!r})"
                )
            anchor = reaching[0]
        return self.decode_piece(node, value, anchor, stop=start)

    def decode_piece(
        self,
        node: str,
        value: int,
        anchor: str,
        stop: Optional[str] = None,
    ) -> List[CallEdge]:
        """Decode one piece: a path from ``stop`` (default: ``anchor``)
        to ``node``, whose edges lie in ``anchor``'s territory."""
        start = stop if stop is not None else anchor
        path: List[CallEdge] = []
        current = node
        residual = value
        while current != start:
            best: Optional[CallEdge] = None
            best_av = -1
            for edge in self.graph.in_edges(current):
                if anchor not in self.territories.edge_anchors(edge):
                    continue
                av = self.av[edge.site]
                if best_av < av <= residual:
                    best = edge
                    best_av = av
            if best is None:
                raise DecodingError(
                    f"no incoming edge of {current!r} in territory of "
                    f"{anchor!r} matches residual {residual}"
                )
            path.append(best)
            residual -= best_av
            current = best.caller
        if residual != 0:
            raise DecodingError(
                f"piece decoding reached {start!r} with residual {residual}"
            )
        path.reverse()
        return path

    def decode_context(
        self, node: str, stack: Iterable[Tuple[str, int]], value: int
    ) -> List[CallEdge]:
        """Decode a full context from ``(stack, current id)``.

        Mirrors the paper's Section 3.2 decoding: recover the deepest
        piece from the current ID and the stack-top anchor, pop, repeat.
        """
        entries = list(stack)
        pieces: List[List[CallEdge]] = []
        current_node = node
        current_value = value
        while entries:
            anchor, saved = entries.pop()
            pieces.append(
                self.decode_piece(current_node, current_value, anchor)
            )
            current_node = anchor
            current_value = saved
        pieces.append(
            self.decode_piece(current_node, current_value, self.graph.entry)
        )
        path: List[CallEdge] = []
        for piece in reversed(pieces):
            path.extend(piece)
        return path


def encode_anchored(
    graph: CallGraph,
    *args,
    width: Width = UNBOUNDED,
    initial_anchors: Iterable[str] = (),
    max_restarts: Optional[int] = None,
    edge_priority: Optional[Callable[[CallEdge], float]] = None,
    strict_reachability: bool = False,
) -> AnchoredEncoding:
    """Run Algorithm 2 until no addition value overflows ``width``.

    All options are keyword-only, shared with :func:`encode_deltapath`
    and :func:`encode_pcce` where they apply:

    ``initial_anchors`` lets callers seed extra anchors (the hybrid
    encoding of Section 8 anchors the PCC trunk this way). ``max_restarts``
    guards pathological widths; the default allows one restart per node.
    ``edge_priority`` orders incoming-edge processing (higher first) —
    prioritized (hot) edges receive the small/zero addition values.
    ``strict_reachability`` raises
    :class:`~repro.errors.UnreachableCallerError` for call sites whose
    caller no anchor territory covers (i.e. the entry cannot reach),
    instead of silently assigning them a zero addition value.
    """
    if args:
        warnings.warn(
            "positional arguments to encode_anchored are deprecated; "
            "use keywords: encode_anchored(graph, width=..., "
            "initial_anchors=..., max_restarts=..., edge_priority=...)",
            DeprecationWarning,
            stacklevel=2,
        )
        names = ("width", "initial_anchors", "max_restarts", "edge_priority")
        if len(args) > len(names):
            raise TypeError(
                f"encode_anchored takes at most {1 + len(names)} "
                f"positional arguments ({1 + len(args)} given)"
            )
        defaults = (UNBOUNDED, (), None, None)
        positional = dict(zip(names, args))
        width = positional.get("width", width)
        if initial_anchors == defaults[1]:
            initial_anchors = positional.get("initial_anchors", ())
        if max_restarts is defaults[2]:
            max_restarts = positional.get("max_restarts")
        if edge_priority is defaults[3]:
            edge_priority = positional.get("edge_priority")
    t_start = time.perf_counter()
    with obs.span(
        "encode.anchored", nodes=len(graph.nodes), width=str(width)
    ) as sp:
        with obs.span("encode.scc"):
            acyclic, removed = remove_recursion(graph)
        entry = acyclic.entry
        anchors: List[str] = [entry]
        for extra in initial_anchors:
            if extra not in acyclic:
                raise EncodingError(f"initial anchor {extra!r} is not a node")
            if extra not in anchors:
                anchors.append(extra)
        if max_restarts is None:
            max_restarts = len(acyclic.nodes) + 1

        restarts = 0
        while True:
            try:
                encoding = _encode_once(
                    acyclic, removed, width, anchors, restarts, edge_priority
                )
                if strict_reachability:
                    dead = [
                        site
                        for site in acyclic.call_sites
                        if not encoding.territories.node_anchors(site.caller)
                    ]
                    if dead:
                        raise UnreachableCallerError(
                            f"{len(dead)} call site(s) have callers "
                            f"unreachable from {entry!r}: "
                            f"{', '.join(str(s) for s in dead[:5])}",
                            sites=dead,
                        )
                sp.set("anchors", len(anchors))
                sp.set("restarts", restarts)
                _record_encode_metrics(encoding, t_start)
                return encoding
            except _Overflow as overflow:
                restarts += 1
                if restarts > max_restarts:
                    raise EncodingOverflowError(
                        f"gave up after {restarts - 1} restarts "
                        f"(width {width})"
                    )
                _grow_anchors(acyclic, anchors, overflow.edge, width)


def _record_encode_metrics(
    encoding: AnchoredEncoding, t_start: float
) -> None:
    registry = obs.get_registry()
    registry.counter("encode.runs").inc()
    registry.counter("encode.restarts").inc(encoding.restarts)
    registry.histogram("encode.duration_us").observe(
        time.perf_counter() - t_start
    )
    registry.gauge("encode.last_nodes").set(len(encoding.graph.nodes))
    registry.gauge("encode.last_sites").set(len(encoding.av))
    registry.gauge("encode.last_anchors").set(len(encoding.anchors))
    territory_nodes = sum(
        len(reaching) for reaching in encoding.territories.nanchors.values()
    )
    registry.gauge("encode.last_territory_nodes").set(territory_nodes)


def _grow_anchors(
    graph: CallGraph, anchors: List[str], edge: CallEdge, width: Width
) -> None:
    """Paper Line 15 (+ the already-anchored fallback described above)."""
    obs.counter("encode.anchor_growths").inc()
    anchor_set = set(anchors)
    if edge.caller not in anchor_set:
        anchors.append(edge.caller)
        return
    added = False
    for incoming in graph.in_edges(edge.callee):
        if incoming.caller not in anchor_set:
            anchors.append(incoming.caller)
            anchor_set.add(incoming.caller)
            added = True
    if not added:
        raise EncodingOverflowError(
            f"width {width} cannot encode edge {edge}: all callers of "
            f"{edge.callee!r} are already anchors"
        )


def _encode_once(
    acyclic: CallGraph,
    removed_back_edges: List[CallEdge],
    width: Width,
    anchors: List[str],
    restarts: int,
    edge_priority: Optional[Callable[[CallEdge], float]] = None,
) -> AnchoredEncoding:
    """One pass of Algorithm 2's main loop for a fixed anchor set."""
    obs.counter("encode.passes").inc()
    with obs.span("encode.territories", anchors=len(anchors)):
        territories = identify_territories(acyclic, anchors)
    anchor_set = set(anchors)

    cav: Dict[Tuple[str, str], int] = {}
    for node, reaching in territories.nanchors.items():
        for anchor in reaching:
            cav[(node, anchor)] = 0
    icc: Dict[Tuple[str, str], int] = {}
    av: Dict[CallSite, int] = {}
    processed: Set[CallSite] = set()

    def calculate_increment(site: CallSite) -> int:
        edges = acyclic.site_targets(site)
        a = 0
        for edge in edges:
            for anchor in territories.edge_anchors(edge):
                candidate = cav.get((edge.callee, anchor), 0)
                if candidate > a:
                    a = candidate
        for edge in edges:
            for anchor in territories.edge_anchors(edge):
                caller_icc = icc[(edge.caller, anchor)]
                value = caller_icc + a
                if not width.fits(value):
                    raise _Overflow(edge)
                cav[(edge.callee, anchor)] = value
        return a

    with obs.span("encode.cav_icc", anchors=len(anchors)) as sp:
        for node in topological_order(acyclic):
            incoming = acyclic.in_edges(node)
            if edge_priority is not None:
                incoming = sorted(incoming, key=edge_priority, reverse=True)
            for edge in incoming:
                site = edge.site
                if site in processed:
                    continue
                processed.add(site)
                if not territories.edge_anchors(edge):
                    # Site in a node unreachable from any anchor (dead code
                    # relative to the entry): never executes, zero
                    # increment.
                    av[site] = 0
                    continue
                av[site] = calculate_increment(site)
            if node in anchor_set:
                icc[(node, node)] = 1
            else:
                for anchor in territories.node_anchors(node):
                    icc[(node, anchor)] = cav[(node, anchor)]
        sp.set("sites", len(av))

    return AnchoredEncoding(
        graph=acyclic,
        back_edges=removed_back_edges,
        width=width,
        anchors=list(anchors),
        territories=territories,
        icc=icc,
        bound=dict(cav),
        av=av,
        restarts=restarts,
    )
