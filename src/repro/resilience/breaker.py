"""Circuit breaker for the decode/ingest hot path.

Classic three-state machine:

``closed``
    Normal operation. Outcomes are recorded into a sliding window; when
    the window holds at least ``min_volume`` outcomes and the failure
    fraction reaches ``error_rate``, the breaker trips ``open``.
``open``
    All calls are shed (:meth:`CircuitBreaker.allow` returns False) for
    ``cooldown`` seconds — the service falls back to raw stack
    retention so traffic stays answerable without hammering a failing
    decode path.
``half-open``
    After the cooldown, up to ``half_open_probes`` trial calls are let
    through. Any failure re-opens immediately; all probes succeeding
    closes the breaker and clears the window.

The clock is injectable so tests (and the chaos harness) never have to
sleep through a cooldown. All transitions are guarded by one lock — the
breaker is shared by every ingestion worker.

Metrics (``repro.obs``): ``resilience.breaker_opens`` counter and a
``resilience.breaker_state`` gauge (0 closed, 1 half-open, 2 open).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

from repro import obs
from repro.errors import ResilienceError

__all__ = ["CircuitBreaker", "STATES"]

STATES = ("closed", "open", "half-open")
_STATE_LEVEL = {"closed": 0, "half-open": 1, "open": 2}


class CircuitBreaker:
    """Error-rate breaker with a sliding outcome window."""

    def __init__(
        self,
        *,
        window: int = 64,
        min_volume: int = 16,
        error_rate: float = 0.5,
        cooldown: float = 1.0,
        half_open_probes: int = 2,
        clock: Callable[[], float] = time.monotonic,
        name: str = "decode",
    ):
        if window < 1:
            raise ResilienceError("breaker window must be at least 1")
        if min_volume < 1 or min_volume > window:
            raise ResilienceError(
                f"min_volume must be in [1, window={window}], got {min_volume}"
            )
        if not 0.0 < error_rate <= 1.0:
            raise ResilienceError(
                f"error_rate must be in (0, 1], got {error_rate}"
            )
        if half_open_probes < 1:
            raise ResilienceError("need at least one half-open probe")
        self.name = name
        self._window = window
        self._min_volume = min_volume
        self._error_rate = error_rate
        self._cooldown = cooldown
        self._half_open_probes = half_open_probes
        self._clock = clock
        self._lock = threading.Lock()
        self._outcomes: "deque[bool]" = deque(maxlen=window)  # True = failure
        self._state = "closed"
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._probe_failures = 0
        self._probe_successes = 0
        self.opens = 0
        self.shed = 0
        self._gauge = obs.gauge("resilience.breaker_state")
        self._gauge.set(0)

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def allow(self) -> bool:
        """May a call proceed right now?

        In ``half-open``, each True answer hands out one probe slot; the
        caller must report the outcome via :meth:`record_success` /
        :meth:`record_failure` or the slot leaks.
        """
        # Steady-state fast path: a lock-free state read. Racing a
        # concurrent trip at worst lets one call through at the instant
        # the breaker opens — indistinguishable from a straggler that
        # was already past the gate, which _record tolerates anyway.
        if self._state == "closed":
            return True
        with self._lock:
            self._maybe_half_open()
            if self._state == "closed":
                return True
            if self._state == "half-open":
                if self._probes_in_flight < self._half_open_probes:
                    self._probes_in_flight += 1
                    return True
            self.shed += 1
            return False

    def record_success(self) -> None:
        # Closed-state fast path: deque.append is atomic under the GIL
        # and a success can never flip the state, so the lock buys
        # nothing here. Racing a trip at worst appends one stale False
        # into the freshly cleared window (mild dilution, no
        # transition); half-open successes must still take the lock to
        # settle their probe slot.
        if self._state == "closed":
            self._outcomes.append(False)
            return
        self._record(failure=False)

    def record_failure(self) -> None:
        self._record(failure=True)

    def _record(self, failure: bool) -> None:
        with self._lock:
            self._maybe_half_open()
            if self._state == "half-open":
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                if failure:
                    self._trip()
                else:
                    self._probe_successes += 1
                    if self._probe_successes >= self._half_open_probes:
                        self._close()
                return
            if self._state == "open":
                # A straggler finishing after the trip: fold into the
                # (cleared-on-close) window, never flips state.
                return
            self._outcomes.append(failure)
            if failure and len(self._outcomes) >= self._min_volume:
                failures = sum(1 for bad in self._outcomes if bad)
                if failures / len(self._outcomes) >= self._error_rate:
                    self._trip()

    # -- internal transitions (lock held) ------------------------------
    def _maybe_half_open(self) -> None:
        if (
            self._state == "open"
            and self._clock() - self._opened_at >= self._cooldown
        ):
            self._state = "half-open"
            self._probes_in_flight = 0
            self._probe_successes = 0
            self._gauge.set(_STATE_LEVEL["half-open"])

    def _trip(self) -> None:
        self._state = "open"
        self._opened_at = self._clock()
        self._outcomes.clear()
        self.opens += 1
        obs.counter("resilience.breaker_opens").inc()
        self._gauge.set(_STATE_LEVEL["open"])

    def _close(self) -> None:
        self._state = "closed"
        self._outcomes.clear()
        self._probes_in_flight = 0
        self._probe_successes = 0
        self._gauge.set(_STATE_LEVEL["closed"])

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        with self._lock:
            self._maybe_half_open()
            return {
                "name": self.name,
                "state": self._state,
                "opens": self.opens,
                "shed": self.shed,
                "window": list(self._outcomes),
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CircuitBreaker({self.name!r}, state={self.state!r})"
