"""``repro.resilience`` — the self-healing layer around the service.

The paper's contract is that a context ID never lies; this package's
contract is that the *pipeline around the IDs* never lies either, even
while parts of it are failing. Four mechanisms, one config:

* :class:`~repro.resilience.supervisor.Supervisor` — heartbeat death
  detection and budgeted, backed-off worker restarts; declared degraded
  mode when the budget runs out.
* :class:`~repro.resilience.retry.RetryPolicy` +
  :class:`~repro.resilience.retry.DeadLetterQueue` — transient
  per-sample failures are retried, deterministic ones quarantined with
  full context; nothing vanishes.
* :class:`~repro.resilience.breaker.CircuitBreaker` — decode-error
  storms trip the breaker and traffic sheds to bounded raw-sample
  retention (:class:`~repro.resilience.retry.FallbackStore`), replayed
  when the breaker closes.
* :class:`~repro.resilience.checkpoint.CheckpointStore` — atomic,
  checksummed CCT snapshots with fingerprint-verified recovery.

:class:`ResilienceConfig` is the single frozen knob-bag
:class:`~repro.service.ContextService` accepts (``resilience=``);
:mod:`repro.resilience.chaos` drives all of it under injected faults.

Everything here reports under the ``resilience.*`` metric namespace via
:mod:`repro.obs`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.checkpoint import (
    CheckpointDaemon,
    CheckpointState,
    CheckpointStore,
    plan_fingerprint,
)
from repro.resilience.retry import (
    DeadLetter,
    DeadLetterQueue,
    FallbackStore,
    RetryPolicy,
)
from repro.resilience.supervisor import Supervisor, SupervisorConfig

__all__ = [
    "ResilienceConfig",
    "Supervisor",
    "SupervisorConfig",
    "CircuitBreaker",
    "RetryPolicy",
    "DeadLetter",
    "DeadLetterQueue",
    "FallbackStore",
    "CheckpointStore",
    "CheckpointState",
    "CheckpointDaemon",
    "plan_fingerprint",
]


@dataclass(frozen=True)
class ResilienceConfig:
    """Every resilience knob of the service in one frozen place.

    Passed to :class:`~repro.service.ContextService` as ``resilience=``.
    ``seed`` feeds every source of randomness (restart jitter, retry
    jitter), so a resilient run is as reproducible as a plain one.
    """

    # --- supervision ---------------------------------------------------
    supervise: bool = True
    heartbeat_interval: float = 0.05
    heartbeat_timeout: float = 2.0
    max_restarts: int = 8
    restart_backoff: float = 0.02
    restart_backoff_max: float = 1.0
    jitter: float = 0.5

    # --- per-sample retry / quarantine ---------------------------------
    retry_attempts: int = 3
    retry_backoff: float = 0.005
    retry_backoff_max: float = 0.25
    dead_letter_capacity: int = 1024

    # --- circuit breaker + raw fallback --------------------------------
    breaker: bool = True
    breaker_window: int = 64
    breaker_min_volume: int = 16
    breaker_error_rate: float = 0.5
    breaker_cooldown: float = 0.25
    breaker_half_open_probes: int = 2
    fallback_capacity: int = 4096

    # --- durable checkpoints -------------------------------------------
    #: Directory for ``ckpt-*.dpck`` snapshots; None disables them.
    checkpoint_dir: Optional[str] = None
    #: Background checkpoint period in seconds; 0 = manual only.
    checkpoint_interval: float = 0.0
    checkpoint_retain: int = 3
    #: Write a final checkpoint during a clean ``stop()``.
    checkpoint_on_stop: bool = True

    seed: int = 0

    # -- factory helpers (the service uses these) -----------------------
    def supervisor_config(self) -> SupervisorConfig:
        return SupervisorConfig(
            heartbeat_interval=self.heartbeat_interval,
            heartbeat_timeout=self.heartbeat_timeout,
            max_restarts=self.max_restarts,
            backoff_base=self.restart_backoff,
            backoff_max=self.restart_backoff_max,
            jitter=self.jitter,
            seed=self.seed,
        )

    def retry_policy(self) -> RetryPolicy:
        return RetryPolicy(
            max_attempts=self.retry_attempts,
            backoff_base=self.retry_backoff,
            backoff_max=self.retry_backoff_max,
            jitter=self.jitter,
        )

    def make_breaker(self) -> Optional[CircuitBreaker]:
        if not self.breaker:
            return None
        return CircuitBreaker(
            window=self.breaker_window,
            min_volume=self.breaker_min_volume,
            error_rate=self.breaker_error_rate,
            cooldown=self.breaker_cooldown,
            half_open_probes=self.breaker_half_open_probes,
        )
