"""Worker supervision: heartbeat death detection and budgeted restarts.

The :class:`Supervisor` owns a :class:`~repro.service.ingest.WorkerPool`
and runs one monitor thread that, every ``heartbeat_interval`` seconds:

1. Restarts workers that *died* (thread gone without a normal exit),
   after an exponential-backoff-with-jitter delay per slot, until the
   pool-wide ``max_restarts`` budget is spent.
2. Counts — but does not kill — workers that look *stalled* (thread
   alive, heartbeat older than ``heartbeat_timeout`` while the queue is
   non-empty). Python threads cannot be preempted safely, so a stall is
   an observability event (``resilience.worker_stalls``), not a restart.

When the restart budget is exhausted and another worker dies, the
supervisor declares **degraded mode** exactly once: the ``on_degraded``
callback fires (the service uses it to shed the queue into the raw
fallback store) and the supervisor state becomes ``"degraded"`` while
the monitor keeps counting.

All backoff delays are seeded (``SupervisorConfig.seed``), so chaos runs
are reproducible, and :meth:`Supervisor.check_once` is public so tests
can drive supervision sweeps deterministically without the monitor
thread.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro import obs
from repro.errors import ResilienceError

__all__ = ["Supervisor", "SupervisorConfig"]


@dataclass(frozen=True)
class SupervisorConfig:
    """Tuning knobs for :class:`Supervisor` (all times in seconds)."""

    #: Monitor wake-up period.
    heartbeat_interval: float = 0.05
    #: A live worker whose beat is older than this (with work queued) is
    #: counted as stalled.
    heartbeat_timeout: float = 2.0
    #: Pool-wide restart budget; exhaustion declares degraded mode.
    max_restarts: int = 8
    backoff_base: float = 0.02
    backoff_max: float = 1.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self):
        if self.heartbeat_interval <= 0:
            raise ResilienceError("heartbeat_interval must be positive")
        if self.max_restarts < 0:
            raise ResilienceError("max_restarts must be non-negative")
        if not 0.0 <= self.jitter < 1.0:
            raise ResilienceError(f"jitter must be in [0, 1), got {self.jitter}")


class Supervisor:
    """Heartbeat monitor + restart driver for one worker pool.

    ``pool`` is duck-typed, not a concrete class: anything exposing
    ``worker_states() -> [WorkerState]``, ``restart_worker(slot) ->
    bool`` (truthy = a replacement was spawned; the restart budget is
    charged), and a sized ``_queue`` (``len()`` = pending samples,
    ``.dropped``) can be supervised.  The thread
    :class:`~repro.service.ingest.WorkerPool` and the process
    :class:`~repro.service.workers.ProcessWorkerPool` both satisfy it —
    process death shows up as ``WorkerState.dead`` exactly like thread
    death (pid liveness + heartbeat-file mtimes translated to parent
    monotonic time), so real process crashes ride the same budgeted
    holdoff discipline with no supervisor changes.
    """

    def __init__(
        self,
        pool,
        *,
        config: Optional[SupervisorConfig] = None,
        on_degraded: Optional[Callable[[], None]] = None,
    ):
        self._pool = pool
        self._config = config or SupervisorConfig()
        self._on_degraded = on_degraded
        self._rng = random.Random(self._config.seed)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        #: Per-slot count of restarts performed by this supervisor.
        self._slot_restarts: dict = {}
        #: monotonic() before which a dead slot must not be restarted
        #: (the per-slot backoff); absent = death not yet scheduled.
        self._slot_holdoff: dict = {}
        self.restarts = 0
        self.deaths_seen = 0
        self.stalls = 0
        self._state = "idle"
        self._degraded_fired = False

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """``idle`` | ``running`` | ``degraded`` | ``stopped``."""
        with self._lock:
            return self._state

    @property
    def degraded(self) -> bool:
        return self.state == "degraded"

    def start(self) -> None:
        with self._lock:
            if self._thread is not None:
                return
            if self._state == "idle":
                self._state = "running"
            self._thread = threading.Thread(
                target=self._monitor, name="repro-supervisor", daemon=True
            )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
        with self._lock:
            if self._state != "degraded":
                self._state = "stopped"

    # ------------------------------------------------------------------
    def _monitor(self) -> None:
        interval = self._config.heartbeat_interval
        while not self._stop.wait(interval):
            try:
                self.check_once()
            except Exception:  # noqa: BLE001 - monitor must not die
                obs.counter("resilience.supervisor_errors").inc()

    def check_once(self, now: Optional[float] = None) -> int:
        """One supervision sweep; returns how many workers were restarted."""
        if now is None:
            now = time.monotonic()
        restarted = 0
        for state in self._pool.worker_states():
            if state.dead:
                restarted += self._handle_death(state.slot, now)
            elif (
                state.alive
                and now - state.heartbeat > self._config.heartbeat_timeout
                and len(self._pool._queue) > 0
            ):
                self.stalls += 1
                obs.counter("resilience.worker_stalls").inc()
        return restarted

    def _handle_death(self, slot: int, now: float) -> int:
        config = self._config
        fire_degraded = False
        with self._lock:
            holdoff = self._slot_holdoff.get(slot)
            if holdoff is None:
                # First sweep that sees this death: account it and either
                # schedule a backed-off restart or spend the last of the
                # budget on a degraded-mode declaration.
                self.deaths_seen += 1
                obs.counter("resilience.worker_deaths").inc()
                if self.restarts >= config.max_restarts:
                    self._slot_holdoff[slot] = float("inf")
                    if not self._degraded_fired:
                        self._degraded_fired = True
                        self._state = "degraded"
                        fire_degraded = True
                else:
                    prior = self._slot_restarts.get(slot, 0)
                    delay = min(
                        config.backoff_base * (2 ** prior), config.backoff_max
                    )
                    if config.jitter:
                        delay *= self._rng.uniform(
                            1.0 - config.jitter, 1.0 + config.jitter
                        )
                    self._slot_holdoff[slot] = now + delay
                if fire_degraded:
                    obs.gauge("resilience.degraded").set(1)
            if fire_degraded:
                pass  # fall through to callback outside the lock
            elif now < self._slot_holdoff.get(slot, 0.0):
                return 0
        if fire_degraded:
            if self._on_degraded is not None:
                self._on_degraded()
            return 0
        if self._pool.restart_worker(slot):
            with self._lock:
                self._slot_holdoff.pop(slot, None)
                self._slot_restarts[slot] = (
                    self._slot_restarts.get(slot, 0) + 1
                )
                self.restarts += 1
            obs.counter("resilience.worker_restarts").inc()
            return 1
        with self._lock:
            self._slot_holdoff.pop(slot, None)
        return 0

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "restarts": self.restarts,
                "deaths_seen": self.deaths_seen,
                "stalls": self.stalls,
                "budget": self._config.max_restarts,
                "per_slot": dict(self._slot_restarts),
            }
