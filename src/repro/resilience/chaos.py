"""Chaos injection: seeded faults against the resilient service.

:class:`ChaosInjector` is the fault source the service wires into its
hot paths when constructed with ``chaos=ChaosConfig(...)``:

* ``worker_fault(slot)`` — hooked before each worker drain iteration;
  kills the worker (:class:`~repro.service.ingest.WorkerKilled`) or
  stalls it (slow consumer).
* ``decode_fault()`` — hooked before each sample decode; raises a
  retryable :class:`~repro.errors.ChaosError`, exercising the retry
  ladder and, under storms, the circuit breaker.
* ``checkpoint_fault()`` — per checkpoint write, maybe returns a hook
  that crashes the write after N records, leaving a torn temp file the
  recovery path must ignore.
* ``compaction_fault()`` — per segment-compaction swap, maybe returns
  a hook that crashes the generation swap after N durable records,
  leaving a half-done swap the intent journal must roll forward or
  back.

:func:`run_chaos` is the harness behind ``python -m repro chaos``: for
each seeded iteration it builds a fuzz case, floods a fully-resilient
service under all fault injectors at once, then asserts the two laws
this PR exists to defend:

* **conservation** — every submitted sample is aggregated,
  dead-lettered, policy-dropped, or retained in the raw fallback;
* **recovery equivalence** — a fresh service recovered from the newest
  valid checkpoint reports exactly the checkpointed contexts, which are
  a subset of the pre-crash report (no phantom contexts, no
  resurrections).

Determinism: everything derives from the iteration seed, so a failing
iteration replays exactly with ``--seed``.
"""

from __future__ import annotations

import os
import random
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.errors import (
    ChaosError,
    CheckpointError,
    EncodingOverflowError,
    ReproError,
    ResilienceError,
)
from repro.service.ingest import WorkerKilled

__all__ = [
    "ChaosConfig",
    "ChaosInjector",
    "ChaosReport",
    "kill_during_compaction_failures",
    "kill_during_flush_failures",
    "run_chaos",
]


@dataclass(frozen=True)
class ChaosConfig:
    """Fault rates for one chaos run (all probabilities per opportunity)."""

    seed: int = 0
    #: P(kill) per worker drain iteration.
    worker_kill_rate: float = 0.02
    #: P(stall) per worker drain iteration.
    slow_consumer_rate: float = 0.02
    slow_consumer_s: float = 0.005
    #: P(raise ChaosError) per sample decode attempt.
    decode_fault_rate: float = 0.05
    #: P(crash) per checkpoint write.
    checkpoint_crash_rate: float = 0.3
    #: Crash lands after 0..N records of the write.
    checkpoint_crash_after_records: int = 2
    #: P(crash) per compaction attempt.
    compaction_crash_rate: float = 0.0
    #: Compaction crash lands after 0..N records of the swap.
    compaction_crash_after_records: int = 4

    def __post_init__(self):
        for name in (
            "worker_kill_rate",
            "slow_consumer_rate",
            "decode_fault_rate",
            "checkpoint_crash_rate",
            "compaction_crash_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ResilienceError(f"{name} must be in [0, 1], got {rate}")


class ChaosInjector:
    """Seeded, thread-safe fault source for one service instance."""

    def __init__(self, config: ChaosConfig):
        self.config = config
        self._rng = random.Random(config.seed)
        self._lock = threading.Lock()
        self.worker_kills = 0
        self.slow_consumers = 0
        self.decode_faults = 0
        self.checkpoint_crashes = 0
        self.compaction_crashes = 0

    # -- WorkerPool `fault` hook ----------------------------------------
    def worker_fault(self, slot: int) -> None:
        with self._lock:
            roll = self._rng.random()
            kill = roll < self.config.worker_kill_rate
            slow = (
                not kill
                and roll
                < self.config.worker_kill_rate + self.config.slow_consumer_rate
            )
            if kill:
                self.worker_kills += 1
            elif slow:
                self.slow_consumers += 1
        if kill:
            obs.counter("resilience.chaos_worker_kills").inc()
            raise WorkerKilled(f"chaos: killed worker slot {slot}")
        if slow:
            obs.counter("resilience.chaos_slow_consumers").inc()
            time.sleep(self.config.slow_consumer_s)

    # -- per-sample decode hook -----------------------------------------
    def decode_fault(self) -> None:
        with self._lock:
            hit = self._rng.random() < self.config.decode_fault_rate
            if hit:
                self.decode_faults += 1
        if hit:
            obs.counter("resilience.chaos_decode_faults").inc()
            raise ChaosError("chaos: injected transient decode failure")

    # -- per-checkpoint-write hook --------------------------------------
    def checkpoint_fault(self) -> Optional[Callable[[int], None]]:
        """Maybe a crash hook for one checkpoint write (else None)."""
        with self._lock:
            if self._rng.random() >= self.config.checkpoint_crash_rate:
                return None
            crash_after = self._rng.randint(
                0, self.config.checkpoint_crash_after_records
            )

        def crash(records: int) -> None:
            if records > crash_after:
                with self._lock:
                    self.checkpoint_crashes += 1
                obs.counter("resilience.chaos_checkpoint_crashes").inc()
                raise ChaosError(
                    f"chaos: checkpoint crash after {records} record(s)"
                )

        return crash

    # -- per-compaction-swap hook ---------------------------------------
    def compaction_fault(self) -> Optional[Callable[[int], None]]:
        """Maybe a crash hook for one compaction swap (else None).

        The hook fires per durable record the compactor writes (retired
        sidecar lines, journal records, merged-segment lines, the
        manifest commit), so a hit simulates a SIGKILL at an arbitrary
        byte of the generation swap.
        """
        with self._lock:
            if self._rng.random() >= self.config.compaction_crash_rate:
                return None
            crash_after = self._rng.randint(
                0, self.config.compaction_crash_after_records
            )

        def crash(records: int) -> None:
            if records > crash_after:
                with self._lock:
                    self.compaction_crashes += 1
                obs.counter("resilience.chaos_compaction_crashes").inc()
                raise ChaosError(
                    f"chaos: compaction crash after {records} record(s)"
                )

        return crash

    def tallies(self) -> Dict[str, int]:
        with self._lock:
            return {
                "worker_kills": self.worker_kills,
                "slow_consumers": self.slow_consumers,
                "decode_faults": self.decode_faults,
                "checkpoint_crashes": self.checkpoint_crashes,
                "compaction_crashes": self.compaction_crashes,
            }


# ----------------------------------------------------------------------
# The chaos harness
# ----------------------------------------------------------------------
@dataclass
class ChaosReport:
    """Aggregate of one :func:`run_chaos` invocation."""

    iterations: int = 0
    skipped: int = 0
    failures: List[str] = field(default_factory=list)
    injected: Dict[str, int] = field(default_factory=dict)
    restarts: int = 0
    recoveries: int = 0
    #: Iterations whose durable query answers were byte-compared across
    #: the crash (pre-crash vs post-recover).
    query_checks: int = 0
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        verdict = "all invariants held" if self.ok else (
            f"{len(self.failures)} FAILURE(S)"
        )
        lines = [
            f"chaos: {self.iterations} iteration(s) "
            f"({self.skipped} skipped), {verdict}",
            f"  injected: {self.injected}",
            f"  worker restarts: {self.restarts}, "
            f"recoveries: {self.recoveries}, "
            f"query checks: {self.query_checks}, "
            f"elapsed: {self.elapsed_s:.2f}s",
        ]
        for failure in self.failures[:8]:
            lines.append(f"  FAIL {failure}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "iterations": self.iterations,
            "skipped": self.skipped,
            "ok": self.ok,
            "failures": list(self.failures),
            "injected": dict(self.injected),
            "restarts": self.restarts,
            "recoveries": self.recoveries,
            "query_checks": self.query_checks,
            "elapsed_s": round(self.elapsed_s, 3),
        }


def conservation_failures(service) -> List[str]:
    """The PR-5 conservation law over one service's accounting.

    ``submitted == aggregated + dead_lettered + epoch_mismatches +
    dropped + fallback_dropped + fallback_pending`` — every sample the
    producer handed over is either in the tree, quarantined with its
    error, dropped by a *declared* policy, or safely retained raw.
    """
    snap = service.accounting()
    accounted = (
        snap["aggregated"]
        + snap["dead_lettered"]
        + snap["epoch_mismatches"]
        + snap["dropped"]
        + snap["fallback_dropped"]
        + snap["fallback_pending"]
    )
    failures: List[str] = []
    if snap["submitted"] != accounted:
        failures.append(
            f"conservation leak: submitted={snap['submitted']} != "
            f"accounted={accounted} ({snap!r})"
        )
    tree_total = service.tree.total_samples
    expected_tree = snap["aggregated"] + snap["recovered"]
    if tree_total != expected_tree:
        failures.append(
            f"tree total {tree_total} != aggregated+recovered "
            f"{expected_tree} ({snap!r})"
        )
    return failures


def recovery_failures(
    recovered_counts: Dict[Tuple[str, ...], int],
    checkpoint_counts: Dict[Tuple[str, ...], int],
    pre_crash_counts: Dict[Tuple[str, ...], int],
) -> List[str]:
    """Recovery equivalence: recovered == checkpointed ⊆ pre-crash."""
    failures: List[str] = []
    if recovered_counts != checkpoint_counts:
        missing = set(checkpoint_counts) - set(recovered_counts)
        extra = set(recovered_counts) - set(checkpoint_counts)
        failures.append(
            f"recovered report != checkpointed state "
            f"(missing={sorted(missing)[:3]}, extra={sorted(extra)[:3]})"
        )
    for path, count in recovered_counts.items():
        pre = pre_crash_counts.get(path)
        if pre is None:
            failures.append(f"phantom context after recovery: {path!r}")
            break
        if count > pre:
            failures.append(
                f"context {path!r} inflated by recovery: {count} > "
                f"pre-crash {pre}"
            )
            break
    return failures


def _tree_counts(service) -> Dict[Tuple[str, ...], int]:
    # Rows are (path, count, gaps, epoch); one path may appear once per
    # epoch, so counts are summed per path.
    counts: Dict[Tuple[str, ...], int] = {}
    for row in service.tree.rows():
        path, count = row[0], row[1]
        counts[path] = counts.get(path, 0) + count
    return counts


def kill_during_flush_failures(
    seed: int = 0, observations: int = 32
) -> List[str]:
    """Chaos oracle: a worker SIGKILLed *inside* ``flush_segments()``,
    in the window after the segment file is durably renamed but before
    the writer's in-memory bookkeeping runs.

    The fsync'd segment must be neither dropped (its samples are on
    disk; recovery must serve them) nor double-counted (the recovered
    writer's reconciled baseline must know the store already holds
    them, even though the dead process's checkpoint predates the
    segment).  Asserted with the byte-equivalence query oracle: the
    durable answers readable the instant after the kill are exactly the
    answers after recovery, and stay exact after the recovered service
    flushes again.

    Returns a list of failure strings (empty = the invariants held).
    """
    from repro.check.fuzz import generate_case
    from repro.check.oracle import (
        _collect_observations,
        canonical_query_answers,
        query_equivalence_failures,
    )
    from repro.query.engine import QueryEngine
    from repro.resilience import ResilienceConfig
    from repro.runtime.plan import build_plan_from_graph
    from repro.service.service import ContextService, ServiceConfig

    case = generate_case(seed)
    try:
        plan = build_plan_from_graph(case.graph, width=case.width)
    except EncodingOverflowError:
        return []  # this seed's graph does not fit; nothing to test
    rng = random.Random(seed ^ 0xF1D5)
    obs_list = _collect_observations(plan, rng, observations)
    if len(obs_list) < 2:
        return []
    failures: List[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-killflush-") as tmp:
        segment_dir = os.path.join(tmp, "segments")
        resilience = ResilienceConfig(
            checkpoint_dir=os.path.join(tmp, "checkpoints"),
            checkpoint_on_stop=False,
        )
        service = ContextService(
            plan,
            ServiceConfig(workers=1, shards=2, segment_dir=segment_dir),
            resilience=resilience,
        ).start()
        from repro.service.batch import SampleBatch

        midpoint = len(obs_list) // 2
        service.submit_batch(
            SampleBatch.from_observations(
                obs_list[:midpoint], epoch=service.epoch
            )
        )
        service.flush(timeout=30.0)
        service.flush_segments()
        service.checkpoint()  # durable tree state: first half only
        service.submit_batch(
            SampleBatch.from_observations(
                obs_list[midpoint:], epoch=service.epoch
            )
        )
        service.flush(timeout=30.0)

        # The kill: append lands the segment durably, then the process
        # "dies" — the raise stands in for the SIGKILL, and disabling
        # salvage models that no post-append code ever ran.
        writer = service._segments
        real_append = writer.store.append

        def dying_append(state, fault=None):
            real_append(state, fault=fault)
            raise ChaosError("chaos: worker killed after segment fsync")

        writer.store.append = dying_append
        writer._salvage = lambda state: None
        try:
            service.flush_segments()
            failures.append(
                "kill-during-flush was not injected (flush succeeded)"
            )
        except (ChaosError, ReproError):
            pass
        finally:
            writer.store.append = real_append
        # What a reader could durably see the instant after the kill.
        pre_answers = canonical_query_answers(
            QueryEngine(segment_dir).refresh()
        )
        service.stop(timeout=30.0)  # the dead process's teardown

        # Recovery into a fresh process.
        fresh = ContextService(
            plan,
            ServiceConfig(workers=1, shards=2, segment_dir=segment_dir),
            resilience=resilience,
        )
        try:
            fresh.recover(resilience.checkpoint_dir)
        except CheckpointError as exc:
            fresh.start()
            fresh.stop(timeout=10.0)
            return [f"recover() found no valid checkpoint: {exc}"]
        post_answers = canonical_query_answers(fresh.query())
        failures.extend(
            f"fsync'd segment dropped across recovery: {f}"
            for f in query_equivalence_failures(pre_answers, post_answers)
        )
        # The reconciled baseline must treat the orphan segment's counts
        # as already-emitted: another flush may not re-emit them.
        fresh.start()
        fresh.flush_segments()
        fresh.stop(timeout=10.0)
        flushed_answers = canonical_query_answers(
            QueryEngine(segment_dir).refresh()
        )
        failures.extend(
            f"fsync'd segment double-counted by post-recovery flush: {f}"
            for f in query_equivalence_failures(pre_answers, flushed_answers)
        )
    return failures


def kill_during_compaction_failures(
    seed: int = 0, observations: int = 32
) -> List[str]:
    """Chaos oracle: SIGKILL at *every byte* of a generation swap.

    Builds a store of several delta segments, then sweeps the crash
    point across every durable record the compactor writes (retired
    sidecar lines, intent-journal records, merged-segment lines, the
    manifest commit), with an age-based retention cap armed so the swap
    also deletes history. After each crash a fresh compactor — the
    restarted process — recovers, and two invariants are asserted at
    every point:

    * **all-or-nothing**: the durable answers are byte-identical either
      to the pre-swap store (the journal rolled the swap back) or to a
      clean uninterrupted swap's result (it rolled forward) — never a
      mix of generations;
    * **retained-row conservation**: live samples plus the retired
      sidecar's deleted totals equal every sample ever flushed, so
      retention deletes are counted, never silent.

    Returns a list of failure strings (empty = the invariants held).
    """
    import shutil

    from repro.check.fuzz import generate_case
    from repro.check.oracle import (
        _collect_observations,
        canonical_query_answers,
        query_equivalence_failures,
    )
    from repro.query.compact import (
        CompactionPolicy,
        Compactor,
        RetentionPolicy,
    )
    from repro.query.engine import QueryEngine
    from repro.query.manifest import SegmentStore
    from repro.runtime.plan import build_plan_from_graph
    from repro.service.batch import SampleBatch
    from repro.service.service import ContextService, ServiceConfig

    case = generate_case(seed)
    try:
        plan = build_plan_from_graph(case.graph, width=case.width)
    except EncodingOverflowError:
        return []  # this seed's graph does not fit; nothing to test
    rng = random.Random(seed ^ 0xC09A)
    obs_list = _collect_observations(plan, rng, observations)
    if len(obs_list) < 4:
        return []
    failures: List[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-killcompact-") as tmp:
        segment_dir = os.path.join(tmp, "segments")
        service = ContextService(
            plan,
            ServiceConfig(workers=1, shards=2, segment_dir=segment_dir),
        ).start()
        # Four delta segments with distinct windows, so the swap has
        # real spans to merge and retention has an oldest span to drop.
        quarter = max(1, len(obs_list) // 4)
        for lo in range(0, len(obs_list), quarter):
            service.submit_batch(
                SampleBatch.from_observations(
                    obs_list[lo : lo + quarter], epoch=service.epoch
                )
            )
            service.flush(timeout=30.0)
            time.sleep(0.002)  # keep the four windows disjoint
            service.flush_segments()
        service.stop(timeout=30.0)

        def store_totals(store: SegmentStore) -> Tuple[int, int]:
            store.refresh()
            live = sum(
                count
                for seg in store.segments()
                for _path, count, _gaps, _epoch in seg.rows
            )
            retired = sum(
                count for count, _gaps in store.retired_totals().values()
            )
            return live, retired

        base = SegmentStore(segment_dir)
        live0, retired0 = store_totals(base)
        total_samples = live0 + retired0
        segs = sorted(base.segments(), key=lambda s: s.t_lo)
        if len(segs) < 2:
            return []  # degenerate seed: nothing to compact
        now = max(s.t_hi for s in segs) + 1.0
        # Age the oldest span out: cutoff lands just past the oldest
        # segment's t_hi, so the swap both merges and deletes.
        retention = RetentionPolicy(max_age_s=now - segs[0].t_hi - 1e-6)
        policy = CompactionPolicy(min_inputs=2, retention=retention)

        # A clean uninterrupted swap on a copy of the directory: the
        # roll-forward target every crashed swap must converge to.
        clean_dir = os.path.join(tmp, "clean")
        shutil.copytree(segment_dir, clean_dir)
        Compactor(SegmentStore(clean_dir), policy).compact(
            now=now, force=True
        )
        post_answers = canonical_query_answers(QueryEngine(clean_dir).refresh())
        pre_answers = canonical_query_answers(
            QueryEngine(segment_dir).refresh()
        )

        def crash_after(k: int) -> Callable[[int], None]:
            def hook(records: int) -> None:
                if records > k:
                    raise ChaosError(
                        f"chaos: compaction crash after {records} record(s)"
                    )

            return hook

        for point in range(256):  # far past any real record count
            compactor = Compactor(SegmentStore(segment_dir), policy)
            try:
                compactor.compact(now=now, fault=crash_after(point), force=True)
                crashed = False
            except ChaosError:
                crashed = True
            # The restarted process: a fresh compactor resolves any
            # half-done swap before anything reads the directory.
            recovered = Compactor(SegmentStore(segment_dir), policy)
            recovered.recover(now=now)
            live, retired = store_totals(recovered.store)
            if live + retired != total_samples:
                failures.append(
                    f"crash point {point}: retention leak — live {live} + "
                    f"retired {retired} != flushed {total_samples}"
                )
                break
            answers = canonical_query_answers(
                QueryEngine(segment_dir).refresh()
            )
            if query_equivalence_failures(
                pre_answers, answers
            ) and query_equivalence_failures(post_answers, answers):
                failures.append(
                    f"crash point {point}: recovered answers match neither "
                    f"the old generation nor the new one"
                )
                break
            if not crashed:
                break
        else:
            failures.append("compaction crash sweep never completed a swap")
        if not failures:
            final = canonical_query_answers(QueryEngine(segment_dir).refresh())
            failures.extend(
                f"completed swap diverged from the clean swap: {f}"
                for f in query_equivalence_failures(post_answers, final)
            )
    return failures


def run_chaos(
    iterations: int = 25,
    seed: int = 0,
    *,
    worker_kill_rate: float = 0.02,
    slow_consumer_rate: float = 0.02,
    decode_fault_rate: float = 0.05,
    checkpoint_crash_rate: float = 0.3,
    compaction_crash_rate: float = 0.25,
    observations: int = 40,
    log: Optional[Callable[[str], None]] = None,
) -> ChaosReport:
    """Run ``iterations`` seeded chaos scenarios; see the module docs."""
    # Imported lazily: repro.check imports the service layer, and the
    # service layer imports this package — the laziness breaks the cycle.
    from repro.check.fuzz import generate_case
    from repro.check.oracle import _collect_observations
    from repro.resilience import ResilienceConfig
    from repro.service.service import ContextService, ServiceConfig
    from repro.runtime.plan import build_plan_from_graph

    report = ChaosReport()
    start = time.perf_counter()
    with obs.span("resilience.chaos_run", iterations=iterations, seed=seed):
        for i in range(iterations):
            case_seed = seed + i
            case = generate_case(case_seed)
            try:
                plan = build_plan_from_graph(case.graph, width=case.width)
            except EncodingOverflowError:
                report.skipped += 1
                continue
            report.iterations += 1
            rng = random.Random(case_seed ^ 0xC4A05)
            obs_list = _collect_observations(plan, rng, observations)
            chaos_cfg = ChaosConfig(
                seed=case_seed,
                worker_kill_rate=worker_kill_rate,
                slow_consumer_rate=slow_consumer_rate,
                decode_fault_rate=decode_fault_rate,
                checkpoint_crash_rate=checkpoint_crash_rate,
                compaction_crash_rate=compaction_crash_rate,
            )
            with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
                resilience = ResilienceConfig(
                    heartbeat_interval=0.002,
                    max_restarts=64,
                    restart_backoff=0.001,
                    restart_backoff_max=0.01,
                    retry_backoff=0.0002,
                    retry_backoff_max=0.002,
                    breaker_cooldown=0.01,
                    breaker_min_volume=8,
                    checkpoint_dir=tmp,
                    checkpoint_on_stop=False,
                    seed=case_seed,
                )
                failures = _chaos_iteration(
                    ContextService,
                    ServiceConfig,
                    plan,
                    obs_list,
                    resilience,
                    chaos_cfg,
                    report,
                )
            if failures:
                report.failures.extend(
                    f"iteration {i} (seed={case_seed}, "
                    f"{case.label}): {f}"
                    for f in failures
                )
                if log:
                    log(f"FAIL iteration {i} seed={case_seed}: {failures[0]}")
            elif log and i % 10 == 0:
                log(f"iteration {i} ok ({case.label}, seed={case_seed})")
        # Targeted scenario: the crash window inside flush_segments().
        for i in range(min(2, max(1, iterations // 8))):
            case_seed = seed + 7919 * (i + 1)
            kill_failures = kill_during_flush_failures(
                case_seed, observations=observations
            )
            report.query_checks += 1
            if kill_failures:
                report.failures.extend(
                    f"kill-during-flush (seed={case_seed}): {f}"
                    for f in kill_failures
                )
                if log:
                    log(
                        f"FAIL kill-during-flush seed={case_seed}: "
                        f"{kill_failures[0]}"
                    )
        # Targeted scenario: SIGKILL at every byte of a generation swap.
        for i in range(min(2, max(1, iterations // 8))):
            case_seed = seed + 6959 * (i + 1)
            compact_failures = kill_during_compaction_failures(
                case_seed, observations=observations
            )
            report.query_checks += 1
            if compact_failures:
                report.failures.extend(
                    f"kill-during-compaction (seed={case_seed}): {f}"
                    for f in compact_failures
                )
                if log:
                    log(
                        f"FAIL kill-during-compaction seed={case_seed}: "
                        f"{compact_failures[0]}"
                    )
    report.elapsed_s = time.perf_counter() - start
    return report


def _chaos_iteration(
    ContextService,
    ServiceConfig,
    plan,
    obs_list,
    resilience,
    chaos_cfg: ChaosConfig,
    report: ChaosReport,
) -> List[str]:
    """One flood → flush → checkpoint → crash → recover cycle."""
    from repro.check.oracle import (
        canonical_query_answers,
        query_equivalence_failures,
    )

    failures: List[str] = []
    injector = ChaosInjector(chaos_cfg)
    segment_dir = os.path.join(resilience.checkpoint_dir, "segments")
    service = ContextService(
        plan,
        ServiceConfig(
            workers=2,
            shards=4,
            queue_capacity=64,
            batch_size=8,
            backpressure="drop-newest",
            segment_dir=segment_dir,
        ),
        resilience=resilience,
        chaos=injector,
    )
    service.start()
    checkpoint_counts: Optional[Dict[Tuple[str, ...], int]] = None
    pre_answers: Optional[bytes] = None

    def flush_segments_retried() -> None:
        # Same discipline as checkpoints below: injected write crashes
        # are retried, a refusal is a failure. The writer's baseline
        # only advances on success, so a retried flush re-covers the
        # exact same delta.
        for _ in range(12):
            try:
                service.flush_segments()
                return
            except ChaosError:
                continue
        failures.append("segment flush crashed 12 times in a row")

    try:
        midpoint = len(obs_list) // 2
        for idx, (node, snap) in enumerate(obs_list):
            if idx == midpoint and idx:
                # Mid-flood drain + flush: the store ends the iteration
                # with multiple segments, so windowed queries cross real
                # segment boundaries and the compaction below has an
                # actual multi-segment swap to crash into.
                try:
                    service.flush(timeout=30.0)
                except ReproError as exc:
                    failures.append(f"mid-flood flush failed: {exc}")
                flush_segments_retried()
            service.submit(node, snap, plan=plan)
        try:
            service.flush(timeout=30.0)
        except ReproError as exc:
            failures.append(f"flush failed under chaos: {exc}")
        flush_segments_retried()

        # Mid-life compaction: swap the delta segments for one
        # cumulative generation while the store is live. Injected
        # crashes tear the swap at a seeded record; the next attempt's
        # recover() rolls the half-done generation forward or back.
        # Retention is off in iterations, so whatever happens — clean
        # swap, torn swap, rolled-back swap — the durable answers must
        # not move by a byte.
        pre_compact = canonical_query_answers(service.query())
        compacted = False
        for _ in range(12):
            try:
                service.compact_segments(force=True)
                compacted = True
                break
            except ChaosError:
                continue
        if not compacted:
            failures.append("compaction crashed 12 times in a row")
        post_compact = canonical_query_answers(service.query())
        failures.extend(
            f"compaction moved durable answers: {f}"
            for f in query_equivalence_failures(pre_compact, post_compact)
        )
        report.query_checks += 1

        # Durable snapshot — retried past injected write crashes, like a
        # checkpoint daemon would keep trying. At least one attempt runs
        # fault-free because the injector's crash decisions are seeded
        # and independent per attempt.
        for _ in range(12):
            try:
                service.checkpoint()
                checkpoint_counts = _tree_counts(service)
                break
            except ChaosError:
                continue
            except CheckpointError as exc:
                failures.append(f"checkpoint refused: {exc}")
                break

        failures.extend(conservation_failures(service))
        pre_crash_counts = _tree_counts(service)
        # Pre-crash durable answers. stop() below deliberately does NOT
        # flush segments (it is the simulated crash); whatever the tree
        # aggregated after the last explicit flush is allowed to die
        # with the process — the *flushed* answers must survive it
        # byte-for-byte.
        pre_answers = canonical_query_answers(service.query())
    finally:
        # The "crash": no final checkpoint (checkpoint_on_stop=False),
        # just tear the process-model down.
        stopped_clean = service.stop(timeout=30.0)
    if not stopped_clean:
        failures.append("stop(drain=True) reported an un-drained shutdown")
    failures.extend(conservation_failures(service))
    snap = service.resilience_stats()
    report.restarts += snap["supervisor"]["restarts"] if snap.get(
        "supervisor"
    ) else 0
    for key, value in injector.tallies().items():
        report.injected[key] = report.injected.get(key, 0) + value

    if checkpoint_counts is None:
        return failures  # no durable snapshot: nothing to recover

    # Recovery into a fresh service (the restarted process).
    fresh = ContextService(
        plan,
        ServiceConfig(
            workers=1,
            shards=2,
            queue_capacity=16,
            batch_size=4,
            segment_dir=segment_dir,
        ),
        resilience=resilience,
    )
    try:
        try:
            fresh.recover(resilience.checkpoint_dir)
            report.recoveries += 1
        except CheckpointError as exc:
            failures.append(f"recover() found no valid checkpoint: {exc}")
            return failures
        failures.extend(
            recovery_failures(
                _tree_counts(fresh), checkpoint_counts, pre_crash_counts
            )
        )
        if pre_answers is not None:
            post_answers = canonical_query_answers(fresh.query())
            failures.extend(
                query_equivalence_failures(pre_answers, post_answers)
            )
            report.query_checks += 1
    finally:
        fresh.start()
        fresh.stop(timeout=10.0)
    return failures
