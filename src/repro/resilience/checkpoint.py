"""Durable checkpoint/restore for the calling-context tree.

A checkpoint captures everything needed to answer queries after a
process crash: the CCT shard rows (path, count, gap-weight), the decode
epoch, and a **plan fingerprint** — a SHA-256 over the canonical graph
structure, anchor set, and encoding width — so recovery refuses to marry
counts from one program version to the plan of another.

File format (``ckpt-<seq>.dpck``): line-oriented records, each line

    ``<crc32 of payload, 8 hex chars> <payload JSON>``

The first record is a header (version, epoch, fingerprint, row count),
followed by ``row`` records batching up to ``rows_per_record`` CCT rows,
and a footer carrying the totals actually written. A file is *valid*
only if every line's checksum matches, the header parses, and the footer
agrees with the observed record/row/sample totals — so a torn write
(crash mid-file, missing footer, truncated last line) or bit rot
(checksum mismatch) disqualifies the file rather than corrupting a
recovery. :meth:`CheckpointStore.load_newest` walks files newest-first
and returns the first that validates.

Durability discipline on write: serialize to ``.tmp-...`` in the same
directory, ``fsync`` the file, then ``os.replace`` onto the final name
(atomic on POSIX), then best-effort ``fsync`` the directory. A crash at
any point leaves either the complete new file or no new file — never a
half-visible one. The ``fault`` hook (chaos: crash after N records)
deliberately abandons the temp file un-renamed to model exactly that.

Metrics: ``resilience.checkpoints``, ``resilience.checkpoint_failures``,
``resilience.recoveries`` counters; ``resilience.checkpoint_us`` /
``resilience.recover_us`` latency histograms.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro import obs
from repro.errors import CheckpointError

__all__ = [
    "CheckpointState",
    "CheckpointStore",
    "CheckpointDaemon",
    "plan_fingerprint",
]

FORMAT_VERSION = 1
_PREFIX = "ckpt-"
_SUFFIX = ".dpck"
_TMP_PREFIX = ".tmp-ckpt-"


def plan_fingerprint(plan) -> str:
    """SHA-256 identity of a plan's encoding-relevant structure.

    Covers the entry node, node set, labelled edge set, anchor set, and
    integer width — the inputs that determine what a context ID means.
    Two plans with the same fingerprint decode identically, so recovered
    counts remain attributable.
    """
    graph = plan.graph
    digest = hashlib.sha256()
    digest.update(repr(graph.entry).encode())
    digest.update(b"\x00")
    for node in sorted(graph.nodes):
        digest.update(node.encode())
        digest.update(b"\x01")
    for caller, callee, label in sorted(
        (e.caller, e.callee, repr(e.label)) for e in graph.edges
    ):
        digest.update(f"{caller}\x02{callee}\x02{label}".encode())
        digest.update(b"\x03")
    for anchor in sorted(plan.encoding.anchors):
        digest.update(anchor.encode())
        digest.update(b"\x04")
    digest.update(repr(plan.encoding.width).encode())
    return digest.hexdigest()


@dataclass(frozen=True)
class CheckpointState:
    """The recovered (or about-to-be-written) durable state."""

    epoch: int
    fingerprint: str
    #: ``(path, count, gap_weight)`` per unique context.
    rows: Tuple[Tuple[Tuple[str, ...], int, int], ...]

    def __post_init__(self):
        if self.epoch < 0:
            raise CheckpointError(f"epoch must be >= 0, got {self.epoch}")

    @property
    def total_samples(self) -> int:
        return sum(count for _, count, _ in self.rows)


def _record(payload: dict) -> str:
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    return f"{zlib.crc32(body.encode()) & 0xFFFFFFFF:08x} {body}\n"


def _parse_record(line: str) -> Optional[dict]:
    """Decode one checksummed line; None when torn or corrupt."""
    if not line.endswith("\n"):
        return None  # torn final line: the write was interrupted
    if len(line) < 10 or line[8] != " ":
        return None
    try:
        want = int(line[:8], 16)
    except ValueError:
        return None
    body = line[9:-1]
    if zlib.crc32(body.encode()) & 0xFFFFFFFF != want:
        return None
    try:
        payload = json.loads(body)
    except ValueError:
        return None
    return payload if isinstance(payload, dict) else None


class CheckpointStore:
    """Atomic, checksummed snapshots in one directory."""

    def __init__(
        self,
        directory: str,
        *,
        retain: int = 3,
        rows_per_record: int = 512,
    ):
        if retain < 1:
            raise CheckpointError("must retain at least one checkpoint")
        if rows_per_record < 1:
            raise CheckpointError("rows_per_record must be at least 1")
        self.directory = directory
        self.retain = retain
        self.rows_per_record = rows_per_record
        self._lock = threading.Lock()
        os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------------
    def _sequence_of(self, name: str) -> Optional[int]:
        if not (name.startswith(_PREFIX) and name.endswith(_SUFFIX)):
            return None
        try:
            return int(name[len(_PREFIX):-len(_SUFFIX)])
        except ValueError:
            return None

    def _listing(self) -> List[Tuple[int, str]]:
        out = []
        for name in os.listdir(self.directory):
            seq = self._sequence_of(name)
            if seq is not None:
                out.append((seq, os.path.join(self.directory, name)))
        return sorted(out)

    # ------------------------------------------------------------------
    def write(
        self,
        state: CheckpointState,
        fault: Optional[Callable[[int], None]] = None,
    ) -> str:
        """Durably write ``state``; returns the final checkpoint path.

        ``fault`` (chaos) is called with the running record count after
        each record is serialized; raising from it models a crash — the
        temp file is abandoned and never renamed, so readers only ever
        see previous, complete checkpoints.
        """
        start = time.perf_counter()
        with self._lock:
            listing = self._listing()
            seq = (listing[-1][0] + 1) if listing else 1
            final = os.path.join(
                self.directory, f"{_PREFIX}{seq:08d}{_SUFFIX}"
            )
            tmp = os.path.join(
                self.directory, f"{_TMP_PREFIX}{seq:08d}-{os.getpid()}"
            )
            records = 0
            try:
                with open(tmp, "w", encoding="utf-8") as fh:
                    fh.write(_record({
                        "kind": "header",
                        "version": FORMAT_VERSION,
                        "epoch": state.epoch,
                        "fingerprint": state.fingerprint,
                        "rows": len(state.rows),
                    }))
                    records += 1
                    if fault is not None:
                        fault(records)
                    rows = list(state.rows)
                    for lo in range(0, len(rows), self.rows_per_record):
                        chunk = rows[lo:lo + self.rows_per_record]
                        fh.write(_record({
                            "kind": "rows",
                            "rows": [
                                [list(path), count, gaps]
                                for path, count, gaps in chunk
                            ],
                        }))
                        records += 1
                        if fault is not None:
                            fault(records)
                    fh.write(_record({
                        "kind": "footer",
                        "records": records + 1,
                        "rows": len(rows),
                        "samples": state.total_samples,
                    }))
                    records += 1
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, final)
            except BaseException:
                obs.counter("resilience.checkpoint_failures").inc()
                raise
            self._fsync_dir()
            self._prune(keep=self.retain)
        obs.counter("resilience.checkpoints").inc()
        obs.histogram("resilience.checkpoint_us").observe_us(
            (time.perf_counter() - start) * 1e6
        )
        return final

    def _fsync_dir(self) -> None:
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform dependent
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform dependent
            pass
        finally:
            os.close(fd)

    def _prune(self, keep: int) -> None:
        listing = self._listing()
        for _, path in listing[:-keep] if keep else listing:
            try:
                os.remove(path)
            except OSError:  # pragma: no cover - racing removals
                pass

    # ------------------------------------------------------------------
    def load_file(self, path: str) -> Optional[CheckpointState]:
        """Parse and validate one checkpoint file; None when invalid."""
        try:
            with open(path, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
        except (OSError, UnicodeDecodeError):
            # Unreadable or not even text: whatever this file is, it is
            # not a checkpoint this process can trust.
            return None
        if not lines:
            return None
        header = _parse_record(lines[0])
        if (
            header is None
            or header.get("kind") != "header"
            or header.get("version") != FORMAT_VERSION
        ):
            return None
        rows: List[Tuple[Tuple[str, ...], int, int]] = []
        footer = None
        for line in lines[1:]:
            payload = _parse_record(line)
            if payload is None:
                return None
            kind = payload.get("kind")
            if kind == "rows":
                if footer is not None:
                    return None  # records after the footer: corrupt
                try:
                    for path_list, count, gaps in payload["rows"]:
                        rows.append((tuple(path_list), int(count), int(gaps)))
                except (KeyError, TypeError, ValueError):
                    return None
            elif kind == "footer":
                footer = payload
            else:
                return None
        if footer is None:
            return None  # torn write: footer never made it to disk
        if (
            footer.get("records") != len(lines)
            or footer.get("rows") != len(rows)
            or header.get("rows") != len(rows)
        ):
            return None
        state = CheckpointState(
            epoch=int(header["epoch"]),
            fingerprint=str(header["fingerprint"]),
            rows=tuple(rows),
        )
        if footer.get("samples") != state.total_samples:
            return None
        return state

    def load_newest(self) -> Optional[Tuple[str, CheckpointState]]:
        """Newest checkpoint that validates, or None if none do."""
        for _, path in reversed(self._listing()):
            state = self.load_file(path)
            if state is not None:
                return path, state
            obs.counter("resilience.checkpoint_rejected").inc()
        return None

    def checkpoints(self) -> List[str]:
        return [path for _, path in self._listing()]


class CheckpointDaemon:
    """Periodic background checkpointing for one service.

    Calls ``service.checkpoint()`` every ``interval`` seconds. A failed
    write is counted (``resilience.checkpoint_failures`` — already
    incremented by the store) and retried next period; the daemon never
    dies of one bad write.
    """

    def __init__(self, service, interval: float):
        if interval <= 0:
            raise CheckpointError("checkpoint interval must be positive")
        self._service = service
        self._interval = interval
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.written = 0
        self.failed = 0

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-checkpointd", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self._service.checkpoint()
                self.written += 1
            except Exception:  # noqa: BLE001 - keep checkpointing
                self.failed += 1
