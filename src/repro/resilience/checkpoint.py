"""Durable checkpoint/restore for the calling-context tree.

A checkpoint captures everything needed to answer queries after a
process crash: the CCT shard rows (path, count, gap-weight), the decode
epoch, and a **plan fingerprint** — a SHA-256 over the canonical graph
structure, anchor set, and encoding width — so recovery refuses to marry
counts from one program version to the plan of another.

File format (``ckpt-<seq>.dpck``): line-oriented records, each line

    ``<crc32 of payload, 8 hex chars> <payload JSON>``

Format **version 2** (the current writer) mirrors the in-memory
:class:`~repro.service.store.ContextStore`: instead of repeating every
context path as a list of strings, the file carries

* a header (version, epoch, fingerprint, row count);
* a ``names`` section — the distinct function names, JSON-encoded,
  zlib-compressed, base64-wrapped, with an inner CRC32 over the raw
  JSON (defence in depth inside the per-line checksum);
* a ``nodes`` section — the prefix-trie topology as a flat
  ``[parent, name_id, parent, name_id, ...]`` list, compressed the same
  way (a context is the integer id of its trie leaf, so shared prefixes
  are stored once);
* ``rows`` records batching up to ``rows_per_record`` compact
  ``[pid, count, gap_weight, epoch]`` rows;
* a footer carrying the totals actually written.

Version-1 files (paths spelled out per row, no epochs) still load:
their rows are normalized with the checkpoint's own epoch. A file is
*valid* only if every line's checksum matches, the header parses, the
sections decompress and pass their inner CRCs, every pid resolves, and
the footer agrees with the observed record/row/sample totals — so a
torn write (crash mid-file, missing footer, truncated last line) or bit
rot (checksum mismatch) disqualifies the file rather than corrupting a
recovery. :meth:`CheckpointStore.load_newest` walks files newest-first
and returns the first that validates.

Durability discipline on write: serialize to ``.tmp-...`` in the same
directory, ``fsync`` the file, then ``os.replace`` onto the final name
(atomic on POSIX), then best-effort ``fsync`` the directory. A crash at
any point leaves either the complete new file or no new file — never a
half-visible one. The ``fault`` hook (chaos: crash after N records)
deliberately abandons the temp file un-renamed to model exactly that.

Metrics: ``resilience.checkpoints``, ``resilience.checkpoint_failures``,
``resilience.recoveries`` counters; ``resilience.checkpoint_us`` /
``resilience.recover_us`` latency histograms.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.errors import CheckpointError, QueryError

__all__ = [
    "CheckpointState",
    "CheckpointStore",
    "CheckpointDaemon",
    "plan_fingerprint",
    "record_line",
    "parse_record_line",
    "pack_section",
    "unpack_section",
    "delta_encode_rows",
    "delta_decode_path",
    "fsync_dir",
]

FORMAT_VERSION = 2
#: Oldest on-disk format this reader still accepts.
OLDEST_READABLE_VERSION = 1
_PREFIX = "ckpt-"
_SUFFIX = ".dpck"
_TMP_PREFIX = ".tmp-ckpt-"


def plan_fingerprint(plan) -> str:
    """SHA-256 identity of a plan's encoding-relevant structure.

    Covers the entry node, node set, labelled edge set, anchor set, and
    integer width — the inputs that determine what a context ID means.
    Two plans with the same fingerprint decode identically, so recovered
    counts remain attributable.
    """
    graph = plan.graph
    digest = hashlib.sha256()
    digest.update(repr(graph.entry).encode())
    digest.update(b"\x00")
    for node in sorted(graph.nodes):
        digest.update(node.encode())
        digest.update(b"\x01")
    for caller, callee, label in sorted(
        (e.caller, e.callee, repr(e.label)) for e in graph.edges
    ):
        digest.update(f"{caller}\x02{callee}\x02{label}".encode())
        digest.update(b"\x03")
    for anchor in sorted(plan.encoding.anchors):
        digest.update(anchor.encode())
        digest.update(b"\x04")
    digest.update(repr(plan.encoding.width).encode())
    return digest.hexdigest()


@dataclass(frozen=True)
class CheckpointState:
    """The recovered (or about-to-be-written) durable state.

    Rows normalize on construction to the canonical 4-tuple
    ``(path, count, gap_weight, epoch)``; legacy 3-tuple rows (no
    per-row epoch) are accepted and stamped with the checkpoint's own
    ``epoch``, so states built by pre-batch code — and rows loaded from
    version-1 files — compare equal to their round-tripped selves.
    """

    epoch: int
    fingerprint: str
    #: ``(path, count, gap_weight, epoch)`` per (context, epoch) pair.
    rows: Tuple[Tuple[Tuple[str, ...], int, int, int], ...]

    def __post_init__(self):
        if self.epoch < 0:
            raise CheckpointError(f"epoch must be >= 0, got {self.epoch}")
        normalized = tuple(
            (
                tuple(row[0]),
                int(row[1]),
                int(row[2]),
                int(row[3]) if len(row) > 3 else self.epoch,
            )
            for row in self.rows
        )
        object.__setattr__(self, "rows", normalized)

    @property
    def total_samples(self) -> int:
        return sum(row[1] for row in self.rows)


def _record(payload: dict) -> str:
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    return f"{zlib.crc32(body.encode()) & 0xFFFFFFFF:08x} {body}\n"


def _parse_record(line: str) -> Optional[dict]:
    """Decode one checksummed line; None when torn or corrupt."""
    if not line.endswith("\n"):
        return None  # torn final line: the write was interrupted
    if len(line) < 10 or line[8] != " ":
        return None
    try:
        want = int(line[:8], 16)
    except ValueError:
        return None
    body = line[9:-1]
    if zlib.crc32(body.encode()) & 0xFFFFFFFF != want:
        return None
    try:
        payload = json.loads(body)
    except ValueError:
        return None
    return payload if isinstance(payload, dict) else None


def _pack_section(obj) -> Dict[str, object]:
    """JSON → zlib → base64, with an inner CRC32 over the raw JSON."""
    raw = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    return {
        "crc": zlib.crc32(raw) & 0xFFFFFFFF,
        "data": base64.b64encode(zlib.compress(raw, 6)).decode("ascii"),
    }


def _unpack_section(payload: Dict[str, object]):
    """Inverse of :func:`_pack_section`; None on any corruption."""
    try:
        raw = zlib.decompress(base64.b64decode(payload["data"]))
    except (KeyError, TypeError, ValueError, zlib.error):
        return None
    if zlib.crc32(raw) & 0xFFFFFFFF != payload.get("crc"):
        return None
    try:
        return json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None


def _delta_encode_rows(rows):
    """Collapse row paths into (names, flat trie nodes, per-row pids).

    The same prefix-trie delta encoding the live
    :class:`~repro.service.store.ContextStore` uses: each trie node is a
    ``(parent, name_id)`` pair (root = -1), a path is the id of its leaf
    node, and shared prefixes are stored exactly once.
    """
    names: List[str] = []
    name_ids: Dict[str, int] = {}
    nodes_flat: List[int] = []
    children: Dict[Tuple[int, int], int] = {}
    pids: List[int] = []
    for row in rows:
        node = -1
        for name in row[0]:
            nid = name_ids.get(name)
            if nid is None:
                nid = len(names)
                names.append(name)
                name_ids[name] = nid
            child = children.get((node, nid))
            if child is None:
                child = len(nodes_flat) // 2
                nodes_flat.append(node)
                nodes_flat.append(nid)
                children[(node, nid)] = child
            node = child
        pids.append(node)
    return names, nodes_flat, pids


def _delta_decode_path(pid, nodes_flat, names):
    """Resolve one pid against the decoded sections; None when invalid."""
    count = len(nodes_flat) // 2
    out: List[str] = []
    node = pid
    while node != -1:
        if not isinstance(node, int) or not 0 <= node < count:
            return None
        parent = nodes_flat[2 * node]
        name_id = nodes_flat[2 * node + 1]
        if not isinstance(name_id, int) or not 0 <= name_id < len(names):
            return None
        if len(out) > count:  # a cycle cannot happen in a valid file
            return None
        out.append(names[name_id])
        node = parent
    out.reverse()
    return tuple(out)


def fsync_dir(directory: str) -> None:
    """Best-effort fsync of a directory (durability of a rename)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform dependent
        pass
    finally:
        os.close(fd)


# Public names for the durability building blocks. The ``repro.query``
# segment store reuses exactly this discipline (checksummed line
# records, packed sections, prefix-trie path delta encoding) for its
# ``seg-*.dpqs`` files, so the two on-disk formats cannot drift apart.
record_line = _record
parse_record_line = _parse_record
pack_section = _pack_section
unpack_section = _unpack_section
delta_encode_rows = _delta_encode_rows
delta_decode_path = _delta_decode_path


class CheckpointStore:
    """Atomic, checksummed snapshots in one directory."""

    def __init__(
        self,
        directory: str,
        *,
        retain: int = 3,
        rows_per_record: int = 512,
    ):
        if retain < 1:
            raise CheckpointError("must retain at least one checkpoint")
        if rows_per_record < 1:
            raise CheckpointError("rows_per_record must be at least 1")
        self.directory = directory
        self.retain = retain
        self.rows_per_record = rows_per_record
        self._lock = threading.Lock()
        os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------------
    def _sequence_of(self, name: str) -> Optional[int]:
        if not (name.startswith(_PREFIX) and name.endswith(_SUFFIX)):
            return None
        try:
            return int(name[len(_PREFIX):-len(_SUFFIX)])
        except ValueError:
            return None

    def _listing(self) -> List[Tuple[int, str]]:
        out = []
        for name in os.listdir(self.directory):
            seq = self._sequence_of(name)
            if seq is not None:
                out.append((seq, os.path.join(self.directory, name)))
        return sorted(out)

    # ------------------------------------------------------------------
    def write(
        self,
        state: CheckpointState,
        fault: Optional[Callable[[int], None]] = None,
    ) -> str:
        """Durably write ``state``; returns the final checkpoint path.

        ``fault`` (chaos) is called with the running record count after
        each record is serialized; raising from it models a crash — the
        temp file is abandoned and never renamed, so readers only ever
        see previous, complete checkpoints.
        """
        start = time.perf_counter()
        with self._lock:
            listing = self._listing()
            seq = (listing[-1][0] + 1) if listing else 1
            final = os.path.join(
                self.directory, f"{_PREFIX}{seq:08d}{_SUFFIX}"
            )
            tmp = os.path.join(
                self.directory, f"{_TMP_PREFIX}{seq:08d}-{os.getpid()}"
            )
            records = 0
            try:
                with open(tmp, "w", encoding="utf-8") as fh:
                    fh.write(_record({
                        "kind": "header",
                        "version": FORMAT_VERSION,
                        "epoch": state.epoch,
                        "fingerprint": state.fingerprint,
                        "rows": len(state.rows),
                    }))
                    records += 1
                    if fault is not None:
                        fault(records)
                    rows = list(state.rows)
                    names, nodes_flat, pids = _delta_encode_rows(rows)
                    for kind, section in (
                        ("names", names), ("nodes", nodes_flat)
                    ):
                        payload = {"kind": kind}
                        payload.update(_pack_section(section))
                        fh.write(_record(payload))
                        records += 1
                        if fault is not None:
                            fault(records)
                    for lo in range(0, len(rows), self.rows_per_record):
                        chunk = rows[lo:lo + self.rows_per_record]
                        fh.write(_record({
                            "kind": "rows",
                            "rows": [
                                [pids[lo + i], row[1], row[2], row[3]]
                                for i, row in enumerate(chunk)
                            ],
                        }))
                        records += 1
                        if fault is not None:
                            fault(records)
                    fh.write(_record({
                        "kind": "footer",
                        "records": records + 1,
                        "rows": len(rows),
                        "samples": state.total_samples,
                    }))
                    records += 1
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, final)
            except BaseException:
                obs.counter("resilience.checkpoint_failures").inc()
                raise
            self._fsync_dir()
            self._prune(keep=self.retain)
        obs.counter("resilience.checkpoints").inc()
        obs.histogram("resilience.checkpoint_us").observe_us(
            (time.perf_counter() - start) * 1e6
        )
        return final

    def _fsync_dir(self) -> None:
        fsync_dir(self.directory)

    def _prune(self, keep: int) -> None:
        listing = self._listing()
        for _, path in listing[:-keep] if keep else listing:
            try:
                os.remove(path)
            except OSError:  # pragma: no cover - racing removals
                pass

    # ------------------------------------------------------------------
    def load_file(self, path: str) -> Optional[CheckpointState]:
        """Parse and validate one checkpoint file; None when invalid."""
        try:
            with open(path, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
        except (OSError, UnicodeDecodeError):
            # Unreadable or not even text: whatever this file is, it is
            # not a checkpoint this process can trust.
            return None
        if not lines:
            return None
        header = _parse_record(lines[0])
        if header is None or header.get("kind") != "header":
            return None
        version = header.get("version")
        if not isinstance(version, int) or not (
            OLDEST_READABLE_VERSION <= version <= FORMAT_VERSION
        ):
            return None
        compact_rows: List[Tuple[object, int, int, int]] = []  # v2
        legacy_rows: List[Tuple[Tuple[str, ...], int, int]] = []  # v1
        names: Optional[list] = None
        nodes_flat: Optional[list] = None
        footer = None
        for line in lines[1:]:
            payload = _parse_record(line)
            if payload is None:
                return None
            if footer is not None:
                return None  # records after the footer: corrupt
            kind = payload.get("kind")
            if kind == "rows":
                try:
                    if version == 1:
                        for path_list, count, gaps in payload["rows"]:
                            legacy_rows.append(
                                (tuple(path_list), int(count), int(gaps))
                            )
                    else:
                        for pid, count, gaps, epoch in payload["rows"]:
                            compact_rows.append(
                                (pid, int(count), int(gaps), int(epoch))
                            )
                except (KeyError, TypeError, ValueError):
                    return None
            elif kind == "names" and version >= 2:
                names = _unpack_section(payload)
                if not isinstance(names, list) or not all(
                    isinstance(n, str) for n in names
                ):
                    return None
            elif kind == "nodes" and version >= 2:
                nodes_flat = _unpack_section(payload)
                if (
                    not isinstance(nodes_flat, list)
                    or len(nodes_flat) % 2
                    or not all(isinstance(v, int) for v in nodes_flat)
                ):
                    return None
            elif kind == "footer":
                footer = payload
            else:
                return None
        if footer is None:
            return None  # torn write: footer never made it to disk
        if version == 1:
            # Legacy rows carry no per-row epoch; CheckpointState stamps
            # them with the checkpoint's own epoch on normalization.
            rows: List[tuple] = list(legacy_rows)
        else:
            if names is None or nodes_flat is None:
                return None  # a section never made it to disk
            rows = []
            for pid, count, gaps, epoch in compact_rows:
                path = _delta_decode_path(pid, nodes_flat, names)
                if path is None:
                    return None  # dangling pid: corrupt sections
                rows.append((path, count, gaps, epoch))
        if (
            footer.get("records") != len(lines)
            or footer.get("rows") != len(rows)
            or header.get("rows") != len(rows)
        ):
            return None
        state = CheckpointState(
            epoch=int(header["epoch"]),
            fingerprint=str(header["fingerprint"]),
            rows=tuple(rows),
        )
        if footer.get("samples") != state.total_samples:
            return None
        return state

    def load_newest(self) -> Optional[Tuple[str, CheckpointState]]:
        """Newest checkpoint that validates, or None if none do."""
        for _, path in reversed(self._listing()):
            state = self.load_file(path)
            if state is not None:
                return path, state
            obs.counter("resilience.checkpoint_rejected").inc()
        return None

    def checkpoints(self) -> List[str]:
        return [path for _, path in self._listing()]


class CheckpointDaemon:
    """Periodic background checkpointing (and segment flushing).

    Calls ``service.checkpoint()`` every ``interval`` seconds. When the
    service also carries a segment writer (``flush_segments`` — the
    ``repro.query`` durable store), each period additionally flushes the
    aggregation delta into a query segment, so the analytics store grows
    on the same cadence that keeps recovery fresh; after a successful
    flush the service's ``maybe_compact_segments`` hook runs, which
    compacts and ages the store every ``ServiceConfig.compact_every``
    flushes so an unbounded run's directory stays bounded. A failed
    write is counted (``resilience.checkpoint_failures`` — already
    incremented by the store — or :attr:`segment_failures` /
    :attr:`compaction_failures`) and retried next period; the daemon
    never dies of one bad write.
    """

    def __init__(self, service, interval: float):
        if interval <= 0:
            raise CheckpointError("checkpoint interval must be positive")
        self._service = service
        self._interval = interval
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.written = 0
        self.failed = 0
        self.segments_written = 0
        self.segment_failures = 0
        self.compactions = 0
        self.compaction_failures = 0

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-checkpointd", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def _tick(self) -> None:
        try:
            self._service.checkpoint()
            self.written += 1
        except Exception:  # noqa: BLE001 - keep checkpointing
            self.failed += 1
        flush = getattr(self._service, "flush_segments", None)
        if flush is None:
            return
        try:
            if flush() is not None:
                self.segments_written += 1
        except QueryError:
            return  # service has no segment store configured
        except Exception:  # noqa: BLE001 - keep flushing next period
            self.segment_failures += 1
            return
        compact = getattr(self._service, "maybe_compact_segments", None)
        if compact is None:
            return
        try:
            if compact() is not None:
                self.compactions += 1
        except Exception:  # noqa: BLE001 - retried next period
            self.compaction_failures += 1

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            self._tick()
