"""Retry policy, dead-letter quarantine, and the raw-sample fallback.

A sample that raises during aggregation is not allowed to kill a worker
(that was already true) — but it is also not allowed to *vanish*.
The ladder is:

1. Deterministic failures (:class:`~repro.errors.DecodingError`,
   :class:`~repro.errors.EpochError`) go straight to the dead-letter
   queue: retrying a decode that is wrong by construction only burns
   CPU.
2. Everything else is presumed transient and retried up to
   :attr:`RetryPolicy.max_attempts` with exponential backoff + jitter,
   then dead-lettered with full context (epoch, stack snapshot,
   exception) for offline triage.
3. While the circuit breaker is open, samples skip decode entirely and
   land in the :class:`FallbackStore` — bounded raw retention that is
   replayed through the normal path once the breaker closes.

Every quarantined sample is counted (``service.dead_lettered``), so the
conservation law ``submitted == aggregated + dead_lettered +
epoch_mismatches + dropped`` stays checkable under fault injection.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.stackmodel import StackEntry
from repro.errors import ResilienceError
from repro.service.ingest import Sample

__all__ = ["RetryPolicy", "DeadLetter", "DeadLetterQueue", "FallbackStore"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for transient per-sample failures.

    Attempt ``k`` (1-based) sleeps ``backoff_base * 2**(k-1)`` seconds,
    capped at ``backoff_max``, then multiplied by a uniform factor in
    ``[1 - jitter, 1 + jitter]`` so retry storms decorrelate across
    workers.
    """

    max_attempts: int = 3
    backoff_base: float = 0.005
    backoff_max: float = 0.25
    jitter: float = 0.5

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ResilienceError("max_attempts must be at least 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ResilienceError(f"jitter must be in [0, 1), got {self.jitter}")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Seconds to sleep before retry number ``attempt`` (1-based)."""
        base = min(self.backoff_base * (2 ** max(0, attempt - 1)),
                   self.backoff_max)
        if self.jitter:
            base *= rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
        return base


@dataclass(frozen=True)
class DeadLetter:
    """One quarantined sample plus the context needed to triage it.

    ``epoch`` and ``fingerprint`` identify the exact plan generation the
    sample failed to decode under — stamped at quarantine time, so
    offline forensics (:func:`repro.query.engine.ucp_forensics`) can
    join a dead letter to the hot-swap :class:`GraphDelta` that explains
    it even after the service and its in-memory epoch table are gone.
    """

    node: str
    epoch: int
    weight: int
    stack: Tuple[StackEntry, ...]
    current_id: int
    error_type: str
    error: str
    attempts: int
    #: SHA-256 plan fingerprint of the sample's epoch ("" when the
    #: epoch's plan was already pruned at quarantine time).
    fingerprint: str = ""
    quarantined_at: float = field(default=0.0, compare=False)

    @classmethod
    def from_sample(
        cls,
        sample: Sample,
        exc: BaseException,
        attempts: int,
        *,
        fingerprint: str = "",
    ) -> "DeadLetter":
        return cls(
            node=sample.node,
            epoch=sample.epoch,
            weight=sample.weight,
            stack=sample.stack,
            current_id=sample.current_id,
            error_type=type(exc).__name__,
            error=str(exc),
            attempts=attempts,
            fingerprint=fingerprint,
            quarantined_at=time.time(),
        )


class DeadLetterQueue:
    """Bounded FIFO of :class:`DeadLetter` (oldest evicted when full)."""

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ResilienceError("dead-letter capacity must be at least 1")
        self._lock = threading.Lock()
        self._letters: "deque[DeadLetter]" = deque(maxlen=capacity)
        self.capacity = capacity
        #: Total letters ever quarantined (eviction does not decrement).
        self.total = 0
        self.evicted = 0

    def quarantine(
        self,
        sample: Sample,
        exc: BaseException,
        attempts: int,
        *,
        fingerprint: str = "",
    ) -> DeadLetter:
        letter = DeadLetter.from_sample(
            sample, exc, attempts, fingerprint=fingerprint
        )
        with self._lock:
            if len(self._letters) == self.capacity:
                self.evicted += 1
            self._letters.append(letter)
            self.total += 1
        return letter

    def letters(self) -> List[DeadLetter]:
        with self._lock:
            return list(self._letters)

    def __len__(self) -> int:
        with self._lock:
            return len(self._letters)


class FallbackStore:
    """Bounded raw-sample retention for breaker-open / degraded periods.

    Holds the *samples themselves* (stack snapshots and all), so nothing
    decoded is lost — just deferred. ``drain()`` hands everything back
    for replay through the normal ingest path. When full, new samples
    are counted in :attr:`dropped` — a declared policy drop, part of the
    conservation law.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ResilienceError("fallback capacity must be at least 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._samples: "deque[Sample]" = deque()
        self.retained = 0
        self.dropped = 0

    def retain(self, sample: Sample) -> bool:
        with self._lock:
            if len(self._samples) >= self.capacity:
                self.dropped += 1
                return False
            self._samples.append(sample)
            self.retained += 1
            return True

    def drain(self, limit: Optional[int] = None) -> List[Sample]:
        with self._lock:
            if limit is None:
                out = list(self._samples)
                self._samples.clear()
            else:
                out = []
                while self._samples and len(out) < limit:
                    out.append(self._samples.popleft())
            return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)
