"""Experiment harness: regenerates every table and figure of the paper."""

from repro.bench.collisions import collision_study, render_collision_study
from repro.bench.figure8 import (
    CONFIGURATIONS,
    figure8_row,
    figure8_summary,
    generate_figure8,
    make_probe,
    render_figure8,
)
from repro.bench.opcounts import (
    HookCounter,
    generate_opcounts,
    opcount_row,
    render_opcounts,
)
from repro.bench.paperdata import (
    INT64_MAX,
    PAPER_FIGURE8_SUMMARY,
    PAPER_TABLE1,
    PAPER_TABLE2,
)
from repro.bench.reporting import geomean, render_table, sci
from repro.bench.scaling import render_scaling, scaling_rows
from repro.bench.table1 import generate_table1, render_table1, table1_row
from repro.bench.table2 import generate_table2, render_table2, table2_row
from repro.bench.widthsweep import render_width_sweep, width_sweep

__all__ = [
    "CONFIGURATIONS",
    "INT64_MAX",
    "PAPER_FIGURE8_SUMMARY",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "collision_study",
    "figure8_row",
    "figure8_summary",
    "generate_opcounts",
    "HookCounter",
    "generate_figure8",
    "generate_table1",
    "generate_table2",
    "geomean",
    "make_probe",
    "render_collision_study",
    "render_scaling",
    "scaling_rows",
    "opcount_row",
    "render_figure8",
    "render_opcounts",
    "render_table",
    "render_table1",
    "render_table2",
    "sci",
    "table1_row",
    "table2_row",
    "render_width_sweep",
    "width_sweep",
]
