"""query-bench: segment write + windowed query throughput.

Builds a synthetic segment store (prefix-sharing contexts spread over
many segments, the shape a long-running service produces) and measures
the two costs that gate the ``repro.query`` layer:

* **segment write** — rows/s through the full durability discipline
  (CRC lines, packed sections, inverted index, fsync/rename);
* **query latency** — windowed top-K over random windows, plus the
  rollup / diff / paths-through family, all answered from re-loaded
  (validated) segments, and a flame-graph export round-trip;
* **retention plateau** — an unbounded-run study: the same flush
  stream into an uncapped store vs one compacted under retention caps,
  asserting the capped store's segment count and bytes plateau while
  ``live + retired == flushed`` holds.

``python -m repro query-bench`` renders the tables;
``--json BENCH_query.json`` records the artifact CI gates on. The full
run covers the acceptance shape: 20k contexts across 16 segments. The
matrix entry point honours the ``compact`` knob: the ``compact-on``
config merges the store into one multi-span generation before the
query study, gating the same latency metrics over compacted segments.
"""

from __future__ import annotations

import os
import random
import statistics
import tempfile
import time
from typing import Dict, List, Mapping, Optional, Tuple

from repro.bench.reporting import (
    Column,
    render_table,
    sci,
    write_bench_json,
)
from repro.query.engine import QueryEngine
from repro.query.flamegraph import from_folded
from repro.query.manifest import SegmentStore
from repro.query.segment import SegmentState

__all__ = ["query_bench", "render_query_bench", "run", "write_bench_json"]

DEFAULT_CONTEXTS = 20_000
DEFAULT_SEGMENTS = 16
SMOKE_CONTEXTS = 2_000
SMOKE_SEGMENTS = 4
_TOPK_TRIALS = 50
_K = 10


def _synthetic_contexts(
    n: int, seed: int
) -> List[Tuple[Tuple[str, ...], int, int, int]]:
    """``n`` distinct contexts with realistic prefix sharing.

    Paths fan out from a small set of entry prefixes into per-context
    leaves, so the trie delta-encoding and the inverted index both see
    the sharing they were built for.
    """
    rng = random.Random(seed)
    rows = []
    for i in range(n):
        trunk = (f"svc{i % 8}", f"handler{i % 64}", f"op{i % 512}")
        depth = rng.randint(0, 3)
        middle = tuple(f"util{rng.randint(0, 99)}" for _ in range(depth))
        path = trunk + middle + (f"ctx{i}",)
        rows.append((path, 1 + rng.randint(0, 9), 1 if i % 13 == 0 else 0, 0))
    return rows


def _build_store(
    directory: str, contexts: int, segments: int, seed: int
) -> Dict[str, object]:
    """Write the synthetic store; returns the write-side measurements."""
    rows = _synthetic_contexts(contexts, seed)
    per_segment = max(1, len(rows) // segments)
    store = SegmentStore(directory)
    write_ms: List[float] = []
    written_rows = 0
    for i in range(segments):
        lo = i * per_segment
        hi = len(rows) if i == segments - 1 else (i + 1) * per_segment
        chunk = sorted(rows[lo:hi], key=lambda r: (r[0], r[3]))
        state = SegmentState(
            t_lo=float(i),
            t_hi=float(i + 1),
            fingerprint=f"bench-{seed:04x}",
            rows=tuple(chunk),
        )
        t0 = time.perf_counter()
        store.append(state)
        write_ms.append((time.perf_counter() - t0) * 1000.0)
        written_rows += len(chunk)
    total_ms = sum(write_ms)
    size_kb = sum(
        os.path.getsize(os.path.join(directory, name))
        for name in os.listdir(directory)
    ) / 1024.0
    return {
        "segments": segments,
        "rows": written_rows,
        "write_ms_total": round(total_ms, 3),
        "write_ms_mean": round(total_ms / segments, 3),
        "rows_per_s": (
            written_rows / (total_ms / 1000.0) if total_ms else float("inf")
        ),
        "store_kb": round(size_kb, 1),
    }


def _percentile(values: List[float], q: float) -> float:
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[idx]


def _query_study(
    directory: str, contexts: int, segments: int, seed: int
) -> Dict[str, object]:
    rng = random.Random(seed ^ 0x9E3779B9)
    engine = QueryEngine(directory)
    t0 = time.perf_counter()
    engine.refresh()
    load_ms = (time.perf_counter() - t0) * 1000.0

    topk_ms: List[float] = []
    for _ in range(_TOPK_TRIALS):
        lo = rng.uniform(0, segments - 1)
        hi = lo + rng.uniform(0.5, segments / 2.0)
        t0 = time.perf_counter()
        ranked = engine.top_contexts(_K, window=(lo, hi))
        topk_ms.append((time.perf_counter() - t0) * 1000.0)
        assert len(ranked) <= _K

    t0 = time.perf_counter()
    rollup = engine.function_totals()
    rollup_ms = (time.perf_counter() - t0) * 1000.0

    t0 = time.perf_counter()
    diff = engine.diff((0.0, segments / 2.0), (segments / 2.0, float(segments)))
    diff_ms = (time.perf_counter() - t0) * 1000.0

    hot = max(rollup, key=lambda name: rollup[name])
    t0 = time.perf_counter()
    through = engine.paths_through(hot)
    through_ms = (time.perf_counter() - t0) * 1000.0

    t0 = time.perf_counter()
    folded = engine.flamegraph()
    flame_ms = (time.perf_counter() - t0) * 1000.0
    parsed = from_folded(folded)
    round_trip_ok = (
        len(parsed) == contexts
        and sum(parsed.values()) == engine.ucp_stats()["samples"]
        and parsed
        == {p: s[0] for p, s in engine._counts().items() if s[0]}
    )

    return {
        "load_ms": round(load_ms, 3),
        "topk_trials": _TOPK_TRIALS,
        "topk_ms_mean": round(statistics.mean(topk_ms), 3),
        "topk_ms_p95": round(_percentile(topk_ms, 0.95), 3),
        "topk_per_s": (
            1000.0 / statistics.mean(topk_ms)
            if statistics.mean(topk_ms)
            else float("inf")
        ),
        "rollup_ms": round(rollup_ms, 3),
        "rollup_functions": len(rollup),
        "diff_ms": round(diff_ms, 3),
        "diff_appeared": len(diff.appeared),
        "through_ms": round(through_ms, 3),
        "through_function": hot,
        "through_paths": len(through),
        "flame_ms": round(flame_ms, 3),
        "flame_lines": len(parsed),
        "round_trip_ok": round_trip_ok,
    }


def _compact_store(directory: str, segments: int) -> Dict[str, object]:
    """Merge the freshly-built store into one generation; timings."""
    from repro.query.compact import Compactor

    store = SegmentStore(directory)
    before = len(store.refresh())
    t0 = time.perf_counter()
    Compactor(store).compact(now=float(segments) + 1.0, force=True)
    merge_ms = (time.perf_counter() - t0) * 1000.0
    after = len(store.refresh())
    return {
        "segments_before": before,
        "segments_after": after,
        "merge_ms": round(merge_ms, 3),
    }


def _retention_study(smoke: bool, seed: int) -> Dict[str, object]:
    """Unbounded-run study: does a retention-capped store plateau?

    The identical flush stream goes into two stores: one never
    compacted (the unbounded baseline) and one swept by the compactor
    under segment/age caps after every flush. Tracks the segment-count
    and byte trajectories, and checks the conservation law
    ``live + retired == flushed`` on the capped store — retention may
    delete history, never lose track of it.
    """
    from repro.query.compact import (
        CompactionPolicy,
        Compactor,
        RetentionPolicy,
    )

    flushes = 24 if smoke else 64
    rows_per_flush = 60 if smoke else 150
    caps = RetentionPolicy(max_segments=6, max_age_s=16.0)
    rng = random.Random(seed ^ 0x5E7A)
    streams: List[Tuple[SegmentState, int]] = []
    for i in range(flushes):
        rows: Dict[Tuple[str, ...], Tuple[int, int, int]] = {}
        for j in range(rows_per_flush):
            path = (
                f"svc{j % 4}", f"op{j % 32}", f"ctx{rng.randint(0, 400)}"
            )
            count, gaps, epoch = rows.get(path, (0, 0, 0))
            rows[path] = (count + 1 + rng.randint(0, 5), gaps, epoch)
        state = SegmentState(
            t_lo=float(i),
            t_hi=float(i + 1),
            fingerprint=f"retain-{seed:04x}",
            rows=tuple(
                (path, count, gaps, epoch)
                for path, (count, gaps, epoch) in sorted(rows.items())
            ),
        )
        streams.append((state, sum(c for c, _g, _e in rows.values())))
    total_flushed = sum(samples for _state, samples in streams)

    def series(directory: str, compact: bool) -> Dict[str, object]:
        store = SegmentStore(directory)
        compactor = Compactor(
            store, CompactionPolicy(min_inputs=4, retention=caps)
        )
        seg_series: List[int] = []
        kb_series: List[float] = []
        for i, (state, _samples) in enumerate(streams):
            store.append(state)
            if compact:
                compactor.compact(now=float(i + 1))
            seg_series.append(len(store.refresh()))
            kb_series.append(
                sum(
                    os.path.getsize(os.path.join(directory, name))
                    for name in os.listdir(directory)
                    if name.endswith(".dpqs")
                )
                / 1024.0
            )
        live = sum(
            count
            for seg in store.segments()
            for _path, count, _gaps, _epoch in seg.rows
        )
        retired = sum(
            count for count, _gaps in store.retired_totals().values()
        )
        return {
            "final_segments": seg_series[-1],
            "max_segments": max(seg_series),
            "tail_max_segments": max(seg_series[len(seg_series) // 2 :]),
            "final_kb": round(kb_series[-1], 1),
            "max_kb": round(max(kb_series), 1),
            "live_samples": live,
            "retired_samples": retired,
            "compactions": compactor.compactions,
        }

    with tempfile.TemporaryDirectory(prefix="repro-qretain-") as tmp:
        uncapped_dir = os.path.join(tmp, "uncapped")
        capped_dir = os.path.join(tmp, "capped")
        uncapped = series(uncapped_dir, compact=False)
        capped = series(capped_dir, compact=True)
    conservation_ok = (
        capped["live_samples"] + capped["retired_samples"] == total_flushed
    )
    plateau_ok = (
        capped["tail_max_segments"] <= caps.max_segments
        and capped["final_kb"] < uncapped["final_kb"]
    )
    return {
        "flushes": flushes,
        "rows_per_flush": rows_per_flush,
        "total_flushed": total_flushed,
        "caps": {
            "max_segments": caps.max_segments,
            "max_age_s": caps.max_age_s,
        },
        "uncapped": uncapped,
        "capped": capped,
        "conservation_ok": conservation_ok,
        "plateau_ok": plateau_ok,
    }


def query_bench(
    smoke: bool = False,
    *,
    contexts: Optional[int] = None,
    segments: Optional[int] = None,
    seed: int = 1,
    compact: bool = False,
    with_retention: bool = True,
) -> Dict[str, object]:
    """Run the studies; returns the JSON-ready result dict.

    ``compact=True`` merges the store into one multi-span generation
    between the write and query studies (the ``compact-on`` matrix
    cell). ``with_retention=False`` skips the unbounded-run plateau
    study (matrix cells skip it to keep cell timings clean).
    """
    if contexts is None:
        contexts = SMOKE_CONTEXTS if smoke else DEFAULT_CONTEXTS
    if segments is None:
        segments = SMOKE_SEGMENTS if smoke else DEFAULT_SEGMENTS
    with tempfile.TemporaryDirectory(prefix="repro-qbench-") as tmp:
        write = _build_store(tmp, contexts, segments, seed)
        compaction = _compact_store(tmp, segments) if compact else None
        query = _query_study(tmp, contexts, segments, seed)
    result = {
        "benchmark": "query-bench",
        "smoke": smoke,
        "workload": {
            "contexts": contexts,
            "segments": segments,
            "seed": seed,
            "compact": compact,
        },
        "write": write,
        "query": query,
    }
    if compaction is not None:
        result["compaction"] = compaction
    if with_retention:
        result["retention"] = _retention_study(smoke, seed)
    return result


# ----------------------------------------------------------------------
# Matrix entry point
# ----------------------------------------------------------------------
def run(config: Mapping[str, object]) -> Dict[str, object]:
    """One ``bench-matrix`` cell: segment write + windowed query latency
    under ``config`` (honours ``quick`` and ``seed``; the store shape is
    fixed so latency numbers stay comparable across configurations).

    Gated metrics: windowed top-K p95 latency (the interactive-query
    budget) and segment write throughput (the flush-path budget). The
    ``compact`` knob swaps the store to one multi-span generation
    before the query study, so the ``compact-on`` cell gates the same
    latencies over compacted segments.
    """
    quick = bool(config.get("quick", True))
    seed = int(config.get("seed", 1))
    compact = bool(config.get("compact", False))
    result = query_bench(
        smoke=quick, seed=seed, compact=compact, with_retention=False
    )
    write, query = result["write"], result["query"]
    metrics = {
        "topk_ms_mean": query["topk_ms_mean"],
        "topk_ms_p95": query["topk_ms_p95"],
        "rollup_ms": query["rollup_ms"],
        "flame_ms": query["flame_ms"],
        "round_trip_ok": query["round_trip_ok"],
        "write_rows_per_s": write["rows_per_s"],
        "load_ms": query["load_ms"],
    }
    if compact:
        metrics["compact_merge_ms"] = result["compaction"]["merge_ms"]
        metrics["compact_segments_after"] = (
            result["compaction"]["segments_after"]
        )
    return {
        "target": "query",
        "metrics": metrics,
        "gated": {
            "topk_ms_p95": query["topk_ms_p95"],
            "write_rows_per_s": write["rows_per_s"],
        },
    }


_WRITE_COLUMNS: List[Column] = [
    ("segments", "segments", sci),
    ("rows", "rows", sci),
    ("write_ms_mean", "write ms/seg", sci),
    ("rows_per_s", "rows/s", sci),
    ("store_kb", "store KB", sci),
]

_QUERY_COLUMNS: List[Column] = [
    ("load_ms", "load ms", sci),
    ("topk_ms_mean", "topk ms", sci),
    ("topk_ms_p95", "topk p95", sci),
    ("rollup_ms", "rollup ms", sci),
    ("diff_ms", "diff ms", sci),
    ("through_ms", "through ms", sci),
    ("flame_ms", "flame ms", sci),
]


_RETENTION_COLUMNS: List[Column] = [
    ("store", "store", str),
    ("final_segments", "final segs", sci),
    ("tail_max_segments", "tail max segs", sci),
    ("final_kb", "final KB", sci),
    ("max_kb", "max KB", sci),
    ("retired_samples", "retired", sci),
    ("compactions", "swaps", sci),
]


def render_query_bench(result: Dict[str, object]) -> str:
    """Human-readable report of one :func:`query_bench` run."""
    workload = result["workload"]
    query = result["query"]
    verdict = "round-trips" if query["round_trip_ok"] else "FAILS round-trip"
    lines = [
        render_table(
            [result["write"]],
            _WRITE_COLUMNS,
            title=(
                f"query-bench segment writes ({workload['contexts']} "
                f"contexts over {workload['segments']} segments)"
            ),
        ),
        "",
        render_table(
            [query],
            _QUERY_COLUMNS,
            title=(
                f"windowed query latency ({query['topk_trials']} random "
                f"top-{_K} windows; flame graph {verdict} via "
                f"{query['flame_lines']} folded lines)"
            ),
        ),
    ]
    compaction = result.get("compaction")
    if compaction:
        lines.append(
            f"\ncompacted {compaction['segments_before']} -> "
            f"{compaction['segments_after']} segment(s) in "
            f"{compaction['merge_ms']} ms before the query study"
        )
    retention = result.get("retention")
    if retention:
        rows = [
            {"store": name, **retention[name]}
            for name in ("uncapped", "capped")
        ]
        conserve = "holds" if retention["conservation_ok"] else "VIOLATED"
        plateau = "plateaus" if retention["plateau_ok"] else "DOES NOT plateau"
        lines.extend([
            "",
            render_table(
                rows,
                _RETENTION_COLUMNS,
                title=(
                    f"unbounded-run retention study ({retention['flushes']} "
                    f"flushes, caps: {retention['caps']['max_segments']} "
                    f"segments / {retention['caps']['max_age_s']}s): capped "
                    f"store {plateau}, live+retired==flushed {conserve}"
                ),
            ),
        ])
    return "\n".join(lines)


