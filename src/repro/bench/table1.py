"""Table 1: static program characteristics, encoding-all vs -application.

For each synthetic benchmark this reports, for both settings, the number
of call-graph nodes and edges, instrumented call sites (CS), virtual call
sites (VCS), the static maximum encoding ID (the encoding space needed,
computed with an unbounded integer so the true requirement is visible),
and the number of anchor nodes Algorithm 2 inserts for a 64-bit integer.

The paper's numbers are attached to each row for side-by-side output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.callgraph_builder import build_callgraph
from repro.bench.paperdata import INT64_MAX, PAPER_TABLE1
from repro.bench.reporting import Column, render_table, sci
from repro.core.anchored import encode_anchored
from repro.core.selective import project_interesting, reattach_orphans
from repro.core.widths import UNBOUNDED, W64
from repro.graph.callgraph import CallGraph
from repro.workloads.specjvm import Benchmark, benchmark_names, build_benchmark

__all__ = ["table1_row", "generate_table1", "render_table1"]


def _characterize(graph: CallGraph) -> dict:
    """Static columns for one graph under one setting."""
    unbounded = encode_anchored(graph, width=UNBOUNDED)
    w64 = encode_anchored(graph, width=W64)
    return {
        "nodes": len(graph),
        "edges": graph.num_edges,
        "cs": len(graph.call_sites),
        "vcs": len(graph.virtual_sites),
        "max_id": float(unbounded.max_id),
        "overflows_64bit": unbounded.max_id > INT64_MAX,
        "anchors_64bit": len(w64.extra_anchors),
    }


def table1_row(name: str, benchmark: Optional[Benchmark] = None) -> dict:
    """One benchmark's Table 1 row (both settings + paper reference)."""
    benchmark = benchmark if benchmark is not None else build_benchmark(name)
    graph = build_callgraph(benchmark.program)
    app_selection = project_interesting(
        graph, lambda n: not graph.node_attrs(n).get("library", False)
    )
    app_graph = reattach_orphans(app_selection)

    row = {"name": name}
    for prefix, characterized in (
        ("all", _characterize(graph)),
        ("app", _characterize(app_graph)),
    ):
        for key, value in characterized.items():
            row[f"{prefix}_{key}"] = value

    paper = PAPER_TABLE1.get(name)
    if paper is not None:
        row["paper_all_nodes"] = paper.all_nodes
        row["paper_all_max_id"] = paper.all_max_id
        row["paper_app_nodes"] = paper.app_nodes
        row["paper_app_max_id"] = paper.app_max_id
        row["paper_needs_anchors"] = paper.needs_anchors
    return row


def generate_table1(names: Optional[Sequence[str]] = None) -> List[dict]:
    names = list(names) if names is not None else benchmark_names()
    return [table1_row(name) for name in names]


_COLUMNS: List[Column] = [
    ("name", "program", str),
    ("all_nodes", "nodes", sci),
    ("all_edges", "edges", sci),
    ("all_cs", "CS", sci),
    ("all_vcs", "VCS", sci),
    ("all_max_id", "max ID", sci),
    ("anchors", "anchors", str),
    ("app_nodes", "app nodes", sci),
    ("app_cs", "app CS", sci),
    ("app_max_id", "app max ID", sci),
    ("paper_all_max_id", "paper max ID", sci),
    ("paper_app_max_id", "paper app ID", sci),
]


def render_table1(rows: Sequence[dict]) -> str:
    display = []
    for row in rows:
        shown = dict(row)
        shown["anchors"] = (
            str(row["all_anchors_64bit"]) if row["all_overflows_64bit"] else "-"
        )
        display.append(shown)
    return render_table(
        display,
        _COLUMNS,
        title="Table 1: static program characteristics "
        "(encoding-all / encoding-application)",
    )
