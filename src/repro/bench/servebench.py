"""``serve-bench``: throughput study of the ``repro.service`` backend.

Two questions, answered on a synthetic hot-context workload (deep
lane-chain graphs whose contexts share long piece prefixes, sampled with
a Zipf-shaped popularity curve — the traffic shape of a real profiler
where a few contexts dominate):

1. **Decode throughput.** How fast does the memoizing
   :class:`~repro.service.DecodeEngine` decode the stream versus the
   uncached baseline (same engine, caches disabled)? The acceptance bar
   is >= 10x on the hot-context stream.
2. **Ingestion under hot swap.** Producer threads feed the full
   :class:`~repro.service.ContextService` while a plan repair
   (``apply_delta`` -> ``install_update``) lands mid-stream. The service
   must lose no samples (block backpressure) and serve no mixed-epoch
   decodes: pre-swap samples decode under the pre-swap plan even when
   drained after the swap.

``python -m repro serve-bench [--quick] [--json out.json]``.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.incremental import GraphDelta
from repro.bench.reporting import (
    Column,
    render_table,
    sci,
    write_bench_json,
)
from repro.core.widths import Width
from repro.graph.callgraph import CallGraph
from repro.runtime.agent import DeltaPathProbe
from repro.runtime.plan import DeltaPathPlan, build_plan_from_graph
from repro.service import ContextService, DecodeEngine, ServiceConfig

__all__ = [
    "lane_chain",
    "build_workload",
    "decode_study",
    "ingest_study",
    "batch_ingest_study",
    "multiproc_ingest_study",
    "store_study",
    "serve_bench",
    "render_serve_bench",
    "run",
    "write_bench_json",
]

Observation = Tuple[str, Tuple[tuple, int]]

DEFAULT_DEPTH = 40
DEFAULT_LANES = 2
DEFAULT_CONTEXTS = 400
DEFAULT_SAMPLES = 120_000
DEFAULT_WIDTH = Width(16)
QUICK_SAMPLES = 15_000
QUICK_CONTEXTS = 150
#: Zipf exponent of the popularity curve.
ZIPF_S = 1.2


def lane_chain(depth: int = DEFAULT_DEPTH, lanes: int = DEFAULT_LANES) -> CallGraph:
    """A depth-``depth`` chain with ``lanes`` parallel call sites per hop.

    Lane choices multiply the context count (``lanes**depth``), so a
    narrow width forces Algorithm 2 to anchor every few hops — contexts
    become multi-piece stacks whose outer pieces are shared, which is
    exactly what the interning cache exploits.
    """
    graph = CallGraph("main")
    prev = "main"
    for d in range(depth):
        node = f"f{d}"
        for lane in range(lanes):
            graph.add_edge(prev, node, f"d{d}l{lane}")
        prev = node
    return graph


def _walk_snapshot(
    plan: DeltaPathPlan, path: Sequence[Tuple[str, str, str]]
) -> Observation:
    """Drive a fresh probe along ``path``; return (leaf, snapshot)."""
    probe = DeltaPathProbe(plan, cpt=True)
    probe.begin_execution(plan.graph.entry)
    probe.enter_function(plan.graph.entry)
    node = plan.graph.entry
    for caller, label, callee in path:
        probe.before_call(caller, label, callee)
        probe.enter_function(callee)
        node = callee
    return node, probe.snapshot(node)


def build_workload(
    depth: int = DEFAULT_DEPTH,
    lanes: int = DEFAULT_LANES,
    contexts: int = DEFAULT_CONTEXTS,
    seed: int = 1,
    width: Width = DEFAULT_WIDTH,
) -> Tuple[CallGraph, DeltaPathPlan, List[Observation], List[float]]:
    """The synthetic hot-context population.

    Returns ``(graph, plan, observations, weights)``: ``contexts``
    distinct contexts (random lane choices, random depths) plus their
    Zipf weights, heaviest first.
    """
    rng = random.Random(seed)
    graph = lane_chain(depth, lanes)
    plan = build_plan_from_graph(graph, width=width)
    seen = set()
    observations: List[Observation] = []
    while len(observations) < contexts:
        d = rng.randrange(max(depth // 2, 1), depth)
        path = []
        prev = "main"
        choices = []
        for hop in range(d):
            lane = rng.randrange(lanes)
            choices.append(lane)
            path.append((prev, f"d{hop}l{lane}", f"f{hop}"))
            prev = f"f{hop}"
        key = (d, tuple(choices))
        if key in seen:
            continue
        seen.add(key)
        observations.append(_walk_snapshot(plan, path))
    weights = [1.0 / (rank + 1) ** ZIPF_S for rank in range(contexts)]
    return graph, plan, observations, weights


def _stream(
    observations: Sequence[Observation],
    weights: Sequence[float],
    samples: int,
    seed: int,
) -> List[Observation]:
    rng = random.Random(seed + 7)
    return rng.choices(observations, weights=weights, k=samples)


# ----------------------------------------------------------------------
# Study 1: decode throughput, cached vs uncached
# ----------------------------------------------------------------------
def decode_study(
    plan: DeltaPathPlan,
    stream: Sequence[Observation],
    *,
    piece_cache: int = 1 << 16,
    context_cache: int = 1 << 16,
) -> Dict[str, object]:
    """Decode the whole stream through one engine configuration."""
    engine = DecodeEngine(
        plan, piece_cache=piece_cache, context_cache=context_cache
    )
    start = time.perf_counter()
    for node, snapshot in stream:
        engine.decode_path(node, snapshot)
    elapsed = time.perf_counter() - start
    caches = engine.cache_stats()
    return {
        "samples": len(stream),
        "elapsed_ms": elapsed * 1000.0,
        "per_s": len(stream) / elapsed if elapsed else float("inf"),
        "piece_hit_rate": _hit_rate(caches["pieces"]),
        "context_hit_rate": _hit_rate(caches["contexts"]),
    }


def _hit_rate(stats: dict) -> float:
    total = stats["hits"] + stats["misses"]
    return stats["hits"] / total if total else 0.0


# ----------------------------------------------------------------------
# Study 2: concurrent ingestion racing a plan hot swap
# ----------------------------------------------------------------------
def _swap_delta(graph: CallGraph, depth: int) -> Tuple[GraphDelta, str, str]:
    """One loaded class hanging off the chain's midpoint."""
    mid = f"f{depth // 2}"
    g2 = graph.copy()
    edge = g2.add_edge(mid, "plugin.m", "load")
    return (
        GraphDelta(added_nodes={"plugin.m": {}}, added_edges=(edge,)),
        mid,
        edge.label,
    )


def ingest_study(
    graph: CallGraph,
    plan: DeltaPathPlan,
    stream: Sequence[Observation],
    *,
    depth: int = DEFAULT_DEPTH,
    lanes: int = DEFAULT_LANES,
    producers: int = 3,
    workers: int = 2,
    shards: int = 8,
    seed: int = 1,
    swap_at: float = 0.4,
) -> Dict[str, object]:
    """Feed the service from ``producers`` threads; swap plans mid-stream.

    The last producer waits for the swap and then submits post-swap
    traffic (walks into the newly loaded class) under the repaired plan,
    while the others keep submitting pre-swap snapshots — which the
    service must keep decoding under the *old* epoch.
    """
    delta, mid, label = _swap_delta(graph, depth)
    update = plan.apply_delta(delta)

    # Post-swap traffic: contexts that only exist under the new plan.
    rng = random.Random(seed + 13)
    new_observations = []
    for _ in range(16):
        d = depth // 2
        path = [("main", f"d0l{rng.randrange(lanes)}", "f0")]
        for hop in range(1, d + 1):
            path.append(
                (f"f{hop - 1}", f"d{hop}l{rng.randrange(lanes)}", f"f{hop}")
            )
        path.append((mid, label, "plugin.m"))
        new_observations.append(_walk_snapshot(update.plan, path))
    new_stream = rng.choices(new_observations, k=max(len(stream) // 4, 1))

    service = ContextService(
        plan,
        ServiceConfig(
            shards=shards,
            workers=workers,
            backpressure="block",
            queue_capacity=4096,
        ),
    )
    service.start()
    swap_installed = threading.Event()
    swap_trigger = threading.Event()
    old_submitted = [0] * producers
    errors: List[BaseException] = []

    slices = [stream[i::producers] for i in range(producers)]
    trigger_index = int(len(slices[0]) * swap_at)

    def produce_old(pid: int) -> None:
        try:
            for index, (node, snapshot) in enumerate(slices[pid]):
                if pid == 0 and index == trigger_index:
                    swap_trigger.set()
                service.submit(node, snapshot, plan=plan)
                old_submitted[pid] += 1
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    def produce_new() -> None:
        try:
            swap_installed.wait(timeout=60)
            for node, snapshot in new_stream:
                service.submit(node, snapshot, plan=update.plan)
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=produce_old, args=(pid,), daemon=True)
        for pid in range(producers)
    ] + [threading.Thread(target=produce_new, daemon=True)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    # The swap races live pre-swap submissions by construction: it is
    # installed while producer 0 (and the others) are still submitting.
    swap_trigger.wait(timeout=60)
    service.install_update(update)
    swap_installed.set()
    for thread in threads:
        thread.join(timeout=120)
    service.flush(timeout=120)
    elapsed = time.perf_counter() - start
    if errors:  # pragma: no cover - producer failure is a bench bug
        raise errors[0]

    # stats() = service_metrics() plus the flattened obs registry, so
    # BENCH_serve.json and BENCH_obs.json share one metric namespace
    # (dotted names like ``service.submitted``).
    metrics = service.stats()
    total_submitted = metrics["submitted"]
    plugin_count = service.function_totals().get("plugin.m", 0)
    result = {
        "samples": total_submitted,
        "elapsed_ms": elapsed * 1000.0,
        "per_s": total_submitted / elapsed if elapsed else float("inf"),
        "queue_peak": metrics["queue_peak"],
        "lost": total_submitted - metrics["aggregated"],
        "dropped": metrics["dropped"],
        "decode_errors": metrics["decode_errors"],
        "mixed_epoch": metrics["epoch_mismatches"],
        "hot_swaps": metrics["hot_swaps"],
        "pre_swap_samples": sum(old_submitted),
        "post_swap_samples": len(new_stream),
        "plugin_samples": plugin_count,
        "unique_contexts": metrics["unique_contexts"],
        "shard_imbalance": metrics["shards"]["imbalance"],
        "decode_p50_us": metrics["decode_latency"]["p50_us"],
        "decode_p99_us": metrics["decode_latency"]["p99_us"],
        "registry": metrics["registry"],
    }
    service.stop()
    return result


# ----------------------------------------------------------------------
# Study 3: scalar shim vs columnar submit_batch on the same stream
# ----------------------------------------------------------------------
def batch_ingest_study(
    plan: DeltaPathPlan,
    stream: Sequence[Observation],
    *,
    workers: int = 2,
    shards: int = 8,
    batch_max: int = 2048,
) -> Dict[str, object]:
    """One stream, two ingestion APIs; batch must win and must agree.

    The same Zipf stream is pushed through the deprecated per-sample
    ``submit`` shim and through columnar ``submit_batch`` (packed
    ``batch_max`` samples at a time). Besides the throughput ratio, the
    study asserts *observational equality*: both services must end with
    identical accounting, ``top_contexts``, and ``function_totals`` —
    the differential guarantee the ``batch`` fuzz oracle checks on
    adversarial workloads, here checked on the benchmark workload.
    """
    import warnings

    from repro.service import SampleBatch

    def run(batch_mode: bool):
        service = ContextService(
            plan,
            ServiceConfig(
                shards=shards,
                workers=workers,
                backpressure="block",
                queue_capacity=4096,
                batch_max=batch_max,
            ),
        )
        service.start()
        start = time.perf_counter()
        if batch_mode:
            for lo in range(0, len(stream), batch_max):
                service.submit_batch(
                    SampleBatch.from_observations(
                        stream[lo:lo + batch_max], epoch=0
                    )
                )
        else:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                for node, snapshot in stream:
                    service.submit(node, snapshot)
        service.flush(timeout=240)
        elapsed = time.perf_counter() - start
        acct = service.accounting()
        summary = {
            "samples": acct["submitted"],
            "elapsed_ms": elapsed * 1000.0,
            "per_s": acct["submitted"] / elapsed if elapsed else float("inf"),
            "aggregated": acct["aggregated"],
            "dropped": acct["dropped"],
        }
        top = service.top_contexts(10)
        totals = service.function_totals()
        service.stop()
        return summary, top, totals

    scalar, top_s, totals_s = run(False)
    batch, top_b, totals_b = run(True)
    return {
        "scalar": scalar,
        "batch": batch,
        "batch_max": batch_max,
        "speedup": (
            batch["per_s"] / scalar["per_s"] if scalar["per_s"] else None
        ),
        "accounting_match": (
            scalar["samples"] == batch["samples"]
            and scalar["aggregated"] == batch["aggregated"]
            and top_s == top_b
            and totals_s == totals_b
        ),
    }


# ----------------------------------------------------------------------
# Study 4: decode scale-out across worker processes
# ----------------------------------------------------------------------
def multiproc_ingest_study(
    plan: DeltaPathPlan,
    observations: Sequence[Observation],
    *,
    samples: int = 24_000,
    worker_counts: Sequence[int] = (1, 2, 4),
    batch_max: int = 1024,
) -> Dict[str, object]:
    """Batch ingest through the process fleet at increasing widths.

    The stream cycles the distinct contexts so dedup-then-decode cannot
    collapse the work, and the decode children run uncached — the cost
    being distributed across processes is real per-sample decode, not
    cache lookups. Throughput is end-to-end: submit every batch over
    the shared-memory lanes, then drain to quiescence. ``scaling_x``
    maps each fleet width to its throughput relative to one worker;
    genuine scaling needs as many cores as workers, so ``cores`` is
    recorded alongside and a single-core machine will (correctly)
    report ~1x.
    """
    import os

    from repro.service import SampleBatch

    stream = [observations[i % len(observations)] for i in range(samples)]
    batches = [
        SampleBatch.from_observations(stream[lo:lo + batch_max], epoch=0)
        for lo in range(0, len(stream), batch_max)
    ]
    counts: Dict[str, object] = {}
    for width in worker_counts:
        service = ContextService(
            plan,
            ServiceConfig(
                worker_processes=width,
                shards=max(8, 2 * width),
                piece_cache=0,
                context_cache=0,
                batch_max=batch_max,
            ),
        )
        service.start()
        start = time.perf_counter()
        for batch in batches:
            service.submit_batch(batch)
        service.flush(timeout=600)
        elapsed = time.perf_counter() - start
        acct = service.accounting()
        service.stop()
        counts[str(width)] = {
            "workers": width,
            "samples": acct["submitted"],
            "aggregated": acct["aggregated"],
            "elapsed_ms": elapsed * 1000.0,
            "per_s": (
                acct["submitted"] / elapsed if elapsed else float("inf")
            ),
        }
    base = counts[str(worker_counts[0])]["per_s"]
    return {
        "batch_max": batch_max,
        "cores": os.cpu_count() or 1,
        "counts": counts,
        "scaling_x": {
            str(width): (
                counts[str(width)]["per_s"] / base if base else None
            )
            for width in worker_counts
        },
    }


# ----------------------------------------------------------------------
# Study 5: compressed context store vs tuples-of-strings
# ----------------------------------------------------------------------
def _cct_paths(
    contexts: int, *, names: int = 512, max_depth: int = 64, seed: int = 1
) -> List[Tuple[str, ...]]:
    """Contexts forming a calling-context tree, in discovery order.

    Real collectors retain a context for *every* live frame (``on_entry``
    fires at each level), so the retained set is closed under
    prefixes — a CCT, not an arbitrary path set. Growth mimics a trace:
    most of the time the walk deepens the current context (long shared
    trunks), sometimes it jumps back to an arbitrary known context
    (branching).
    """
    rng = random.Random(seed + 31)
    pool = [f"fn{i}" for i in range(names)]
    paths: List[Tuple[str, ...]] = [("main",)]
    seen = {("main",)}
    current = ("main",)
    while len(paths) < contexts:
        if len(current) >= max_depth or rng.random() >= 0.8:
            current = paths[rng.randrange(len(paths))]
        current = current + (pool[rng.randrange(names)],)
        if current not in seen:
            seen.add(current)
            paths.append(current)
    return paths


def _tuple_baseline_bytes(paths: Sequence[Tuple[str, ...]]) -> int:
    """Bytes of the pre-batch representation: tuples of shared strings.

    The old shards kept each retained context as a tuple of interned
    function-name strings, so the honest baseline counts each tuple
    object plus every distinct string once.
    """
    import sys as _sys

    total = _sys.getsizeof({i: None for i in range(len(paths))})
    names = set()
    for path in paths:
        total += _sys.getsizeof(path)
        for name in path:
            if name not in names:
                names.add(name)
                total += _sys.getsizeof(name)
    return total


def store_study(
    contexts: int = 4000,
    *,
    seed: int = 1,
) -> Dict[str, object]:
    """Retained-context footprint: delta trie + zlib blocks vs tuples.

    Uses a calling-context-tree workload (the lane-chain stream
    collapses to a couple dozen distinct contexts; footprint only
    matters at scale) and reports bytes-per-retained-context for the
    compressed store, the uncompressed trie, and the old
    tuples-of-strings baseline, verifying the store round-trips the
    paths it interned. The ``pid_cache`` throughput memo is disabled:
    this study measures the cold retained footprint.
    """
    from repro.service import ContextStore

    paths = _cct_paths(contexts, seed=seed)
    mean_depth = sum(len(p) for p in paths) / len(paths)
    result: Dict[str, object] = {
        "contexts": len(paths),
        "mean_depth": mean_depth,
    }
    for compression in ("zlib", "none"):
        store = ContextStore(compression=compression, pid_cache=0)
        pids = [store.intern(path) for path in paths]
        stats = store.stats()
        round_trip_ok = all(
            store.path(pid) == path
            for pid, path in zip(pids[:: max(len(pids) // 64, 1)],
                                 paths[:: max(len(paths) // 64, 1)])
        )
        result[compression] = {
            "bytes": stats["bytes"],
            "bytes_per_context": stats["bytes_per_context"],
            "sealed_blocks": stats["sealed_blocks"],
            "nodes": stats["nodes"],
            "round_trip_ok": round_trip_ok,
        }
        del store
    baseline = _tuple_baseline_bytes(paths)
    result["tuple_bytes"] = baseline
    result["tuple_bytes_per_context"] = baseline / len(paths)
    zlib_bytes = result["zlib"]["bytes"]
    result["reduction_vs_tuples"] = (
        baseline / zlib_bytes if zlib_bytes else None
    )
    return result


# ----------------------------------------------------------------------
# The full benchmark
# ----------------------------------------------------------------------
def serve_bench(
    quick: bool = False,
    *,
    depth: int = DEFAULT_DEPTH,
    lanes: int = DEFAULT_LANES,
    contexts: Optional[int] = None,
    samples: Optional[int] = None,
    shards: int = 8,
    workers: int = 2,
    producers: int = 3,
    seed: int = 1,
    top: int = 5,
) -> Dict[str, object]:
    """Run both studies; returns the JSON-ready result dict."""
    if contexts is None:
        contexts = QUICK_CONTEXTS if quick else DEFAULT_CONTEXTS
    if samples is None:
        samples = QUICK_SAMPLES if quick else DEFAULT_SAMPLES
    graph, plan, observations, weights = build_workload(
        depth=depth, lanes=lanes, contexts=contexts, seed=seed
    )
    stream = _stream(observations, weights, samples, seed)

    uncached = decode_study(plan, stream, piece_cache=0, context_cache=0)
    piece_only = decode_study(plan, stream, context_cache=0)
    cached = decode_study(plan, stream)
    speedup = (
        cached["per_s"] / uncached["per_s"] if uncached["per_s"] else None
    )

    ingest = ingest_study(
        graph,
        plan,
        stream,
        depth=depth,
        lanes=lanes,
        producers=producers,
        workers=workers,
        shards=shards,
        seed=seed,
    )

    batch_ingest = batch_ingest_study(
        plan, stream, workers=workers, shards=shards
    )
    multiproc = multiproc_ingest_study(
        plan, observations, samples=min(samples, 24_000)
    )
    store = store_study(4000 if quick else 20000, seed=seed)

    engine = DecodeEngine(plan)
    counts: Dict[Tuple[str, ...], int] = {}
    for node, snapshot in stream:
        path, _gaps, _epoch = engine.decode_path(node, snapshot)
        counts[path] = counts.get(path, 0) + 1
    hottest = sorted(counts.items(), key=lambda kv: -kv[1])[:top]

    return {
        "benchmark": "serve-bench",
        "quick": quick,
        "workload": {
            "depth": depth,
            "lanes": lanes,
            "contexts": contexts,
            "samples": samples,
            "width_bits": DEFAULT_WIDTH.bits,
            "anchors": len(plan.encoding.anchors),
            "seed": seed,
        },
        "decode": {
            "uncached": uncached,
            "piece_cache": piece_only,
            "cached": cached,
            "speedup": speedup,
        },
        "ingest": ingest,
        "batch_ingest": batch_ingest,
        "multiproc": multiproc,
        "store": store,
        # Headline numbers, surfaced flat for dashboards and the CI gate.
        "batch_ingest_per_s": batch_ingest["batch"]["per_s"],
        "multiproc_scaling_x": multiproc["scaling_x"]["4"],
        "bytes_per_context": store["zlib"]["bytes_per_context"],
        "top_contexts": [
            {"count": count, "path": list(path)} for path, count in hottest
        ],
    }


# ----------------------------------------------------------------------
# Matrix entry point
# ----------------------------------------------------------------------
def run(config: Mapping[str, object]) -> Dict[str, object]:
    """One ``bench-matrix`` cell: decode, ingest and store footprint
    under a named configuration.

    ``config`` is a plain mapping from :mod:`repro.bench.matrix` — the
    knobs this target honours are ``cached``, ``shards``, ``workers``,
    ``worker_processes``, ``resilience``, ``batch``, ``compression``,
    ``quick`` and ``seed``.
    Returns flat scalar ``metrics`` plus the ``gated`` subset the
    regression gate diffs against the committed baseline. Gated keys are
    config-independent (every cell reports the same names), so each
    configuration gates against its *own* history.
    """
    import warnings

    from repro.service import ContextStore, SampleBatch

    quick = bool(config.get("quick", True))
    seed = int(config.get("seed", 1))
    cached = bool(config.get("cached", True))
    shards = int(config.get("shards", 8))
    workers = int(config.get("workers", 2))
    worker_processes = int(config.get("worker_processes", 0))
    batch_mode = bool(config.get("batch", True))
    compression = str(config.get("compression", "zlib"))
    batch_max = 2048

    contexts = QUICK_CONTEXTS if quick else DEFAULT_CONTEXTS
    samples = QUICK_SAMPLES if quick else DEFAULT_SAMPLES
    _graph, plan, observations, weights = build_workload(
        contexts=contexts, seed=seed
    )
    stream = _stream(observations, weights, samples, seed)

    # Decode: the configured engine vs the always-uncached floor.
    uncached = decode_study(plan, stream, piece_cache=0, context_cache=0)
    if cached:
        decode = decode_study(plan, stream)
    else:
        decode = decode_study(plan, stream, piece_cache=0, context_cache=0)
    decode_speedup = (
        decode["per_s"] / uncached["per_s"] if uncached["per_s"] else 0.0
    )

    # Ingest: the configured service, batch or scalar path.
    resilience = None
    if config.get("resilience"):
        from repro.resilience import ResilienceConfig

        resilience = ResilienceConfig(seed=seed)
    cache_size = (1 << 16) if cached else 0
    service = ContextService(
        plan,
        ServiceConfig(
            shards=shards,
            workers=workers,
            backpressure="block",
            queue_capacity=4096,
            batch_max=batch_max,
            store_compression=compression,
            piece_cache=cache_size,
            context_cache=cache_size,
            worker_processes=worker_processes,
        ),
        resilience=resilience,
    )
    service.start()
    start = time.perf_counter()
    if batch_mode:
        for lo in range(0, len(stream), batch_max):
            service.submit_batch(
                SampleBatch.from_observations(
                    stream[lo:lo + batch_max], epoch=0
                )
            )
    else:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            for node, snapshot in stream:
                service.submit(node, snapshot)
    service.flush(timeout=240)
    ingest_elapsed = time.perf_counter() - start
    acct = service.accounting()
    service.stop()
    ingest_per_s = (
        acct["submitted"] / ingest_elapsed if ingest_elapsed else 0.0
    )

    # Retained footprint of the configured store compression. The
    # block size is shrunk so the workload actually seals blocks —
    # compression only applies at sealing, and an all-open-tail store
    # would report the same bytes for every compression setting.
    paths = _cct_paths(2000 if quick else 8000, seed=seed)
    store = ContextStore(compression=compression, pid_cache=0, block_size=512)
    for path in paths:
        store.intern(path)
    bytes_per_context = store.stats()["bytes_per_context"]
    del store

    metrics = {
        "decode_per_s": decode["per_s"],
        "decode_uncached_per_s": uncached["per_s"],
        "decode_speedup_x": decode_speedup,
        "ingest_per_s": ingest_per_s,
        "ingest_samples": acct["submitted"],
        "ingest_aggregated": acct["aggregated"],
        "ingest_lost": acct["submitted"] - (
            acct["aggregated"] + acct["dead_lettered"]
            + acct["epoch_mismatches"] + acct["dropped"]
            + acct["fallback_dropped"] + acct["fallback_pending"]
        ),
        "store_bytes_per_context": bytes_per_context,
    }
    return {
        "target": "serve",
        "metrics": metrics,
        "gated": {
            "ingest_per_s": ingest_per_s,
            "decode_speedup_x": decode_speedup,
            "store_bytes_per_context": bytes_per_context,
        },
    }


_DECODE_COLUMNS: List[Column] = [
    ("config", "config", str),
    ("samples", "samples", sci),
    ("elapsed_ms", "elapsed ms", sci),
    ("per_s", "decodes/s", sci),
    ("piece_hit_rate", "piece hit", sci),
    ("context_hit_rate", "ctx hit", sci),
]


def render_serve_bench(result: Dict[str, object]) -> str:
    """Human-readable report of one :func:`serve_bench` run."""
    decode = result["decode"]
    rows = [
        dict(config=name, **decode[name])
        for name in ("uncached", "piece_cache", "cached")
    ]
    lines = [
        render_table(
            rows,
            _DECODE_COLUMNS,
            title=(
                "serve-bench decode throughput (hot-context stream, "
                f"speedup cached/uncached: {sci(decode['speedup'])}x)"
            ),
        ),
        "",
    ]
    ingest = result["ingest"]
    lines.append(
        "ingestion under hot swap: "
        f"{sci(ingest['samples'])} samples at {sci(ingest['per_s'])}/s, "
        f"queue peak {ingest['queue_peak']}, "
        f"lost {ingest['lost']}, mixed-epoch {ingest['mixed_epoch']}, "
        f"decode errors {ingest['decode_errors']}, "
        f"plugin contexts {sci(ingest['plugin_samples'])}"
    )
    batch = result["batch_ingest"]
    lines.append(
        "batch vs scalar ingestion: "
        f"scalar {sci(batch['scalar']['per_s'])}/s, "
        f"batch {sci(batch['batch']['per_s'])}/s "
        f"(speedup {sci(batch['speedup'])}x, "
        f"accounting {'match' if batch['accounting_match'] else 'DIVERGED'})"
    )
    multiproc = result["multiproc"]
    lines.append(
        "process-fleet batch ingest ({} core(s)): ".format(
            multiproc["cores"]
        )
        + ", ".join(
            f"{row['workers']}w {sci(row['per_s'])}/s "
            f"({sci(multiproc['scaling_x'][key])}x)"
            for key, row in sorted(
                multiproc["counts"].items(), key=lambda kv: int(kv[0])
            )
        )
    )
    store = result["store"]
    lines.append(
        "context store footprint: "
        f"{sci(store['zlib']['bytes_per_context'])} B/ctx compressed vs "
        f"{sci(store['tuple_bytes_per_context'])} B/ctx tuples "
        f"({sci(store['reduction_vs_tuples'])}x smaller, "
        f"{store['contexts']} contexts)"
    )
    lines.append("")
    lines.append("hottest contexts:")
    for entry in result["top_contexts"]:
        path = entry["path"]
        shown = " -> ".join(path if len(path) <= 6 else
                            path[:3] + ["..."] + path[-2:])
        lines.append(f"  {entry['count']:>8}  {shown}")
    return "\n".join(lines)


