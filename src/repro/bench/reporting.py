"""Plain-text table rendering and stamped BENCH_*.json writing.

Every benchmark artifact goes through :func:`write_bench_json`, which
stamps the result with ``schema_version``, ``commit`` and ``timestamp``
so a BENCH file (and every history entry the matrix harness copies out
of one) is self-describing: you can always answer "which code produced
this number, and when".
"""

from __future__ import annotations

import json
import subprocess
import time
from typing import Callable, Dict, List, Sequence, Tuple, Union

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "Column",
    "bench_stamp",
    "geomean",
    "render_table",
    "sci",
    "write_bench_json",
]

Column = Tuple[str, str, Callable[[object], str]]


def sci(value: Union[int, float, None]) -> str:
    """Compact numeric formatting: integers plain, big numbers 1.2e17."""
    if value is None:
        return "-"
    value = float(value)
    if value == 0:
        return "0"
    if abs(value) >= 1e6 or abs(value) < 1e-3:
        return f"{value:.1e}"
    if value == int(value):
        return str(int(value))
    return f"{value:.2f}"


def render_table(
    rows: Sequence[dict], columns: Sequence[Column], title: str = ""
) -> str:
    """Render dict rows into an aligned text table.

    ``columns`` is a sequence of (key, header, formatter).
    """
    headers = [header for _, header, _ in columns]
    rendered: List[List[str]] = [headers]
    for row in rows:
        rendered.append(
            [fmt(row.get(key)) for key, _, fmt in columns]
        )
    widths = [
        max(len(line[i]) for line in rendered) for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    for index, line in enumerate(rendered):
        lines.append(
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(line))
        )
        if index == 0:
            lines.append(sep)
    return "\n".join(lines)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's averaging for Figure 8)."""
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


#: Version of the stamped BENCH_*.json envelope. 2 added the
#: ``schema_version``/``commit``/``timestamp`` stamp itself.
BENCH_SCHEMA_VERSION = 2


def _git_commit() -> str:
    """The current commit (short), or "unknown" outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
        return "unknown"
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else "unknown"


def bench_stamp() -> Dict[str, object]:
    """The self-description stamp shared by every BENCH artifact."""
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "commit": _git_commit(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def write_bench_json(result: Dict[str, object], path: str) -> None:
    """Write ``result`` as a stamped, sorted, indented JSON artifact.

    The stamp never overwrites fields the benchmark set itself (the
    matrix harness stamps once and fans the same identity out to its
    history entries).
    """
    stamped = dict(bench_stamp())
    stamped.update(result)
    with open(path, "w") as fh:
        json.dump(stamped, fh, indent=2, sort_keys=True)
        fh.write("\n")
