"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple, Union

__all__ = ["Column", "render_table", "sci", "geomean"]

Column = Tuple[str, str, Callable[[object], str]]


def sci(value: Union[int, float, None]) -> str:
    """Compact numeric formatting: integers plain, big numbers 1.2e17."""
    if value is None:
        return "-"
    value = float(value)
    if value == 0:
        return "0"
    if abs(value) >= 1e6 or abs(value) < 1e-3:
        return f"{value:.1e}"
    if value == int(value):
        return str(int(value))
    return f"{value:.2f}"


def render_table(
    rows: Sequence[dict], columns: Sequence[Column], title: str = ""
) -> str:
    """Render dict rows into an aligned text table.

    ``columns`` is a sequence of (key, header, formatter).
    """
    headers = [header for _, header, _ in columns]
    rendered: List[List[str]] = [headers]
    for row in rows:
        rendered.append(
            [fmt(row.get(key)) for key, _, fmt in columns]
        )
    widths = [
        max(len(line[i]) for line in rendered) for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    for index, line in enumerate(rendered):
        lines.append(
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(line))
        )
        if index == 0:
            lines.append(sep)
    return "\n".join(lines)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's averaging for Figure 8)."""
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))
